"""Engine.run's finally block must survive a zero-worker cluster.

A degenerate spec can leave ``cluster.num_workers == 0``; the peak-memory
aggregation in the ``finally`` block used to call ``max()`` over an empty
generator and raise ValueError, masking the run's real outcome."""

import numpy as np

import repro.engines.base as base_mod
from repro.cluster import Cluster, ClusterSpec
from repro.workloads.base import Workload, SuperstepStats, WorkloadState


class _NullWorkload(Workload):
    name = "null"

    def init_state(self, graph):
        return WorkloadState(values=np.zeros(1), active=np.zeros(1, dtype=bool))

    def superstep(self, graph, state):
        state.done = True
        return SuperstepStats(
            iteration=1, active_vertices=0, messages=0, updates=0, converged=True
        )


class _NullEngine(base_mod.Engine):
    key = "NULL"
    display_name = "Null"
    language = "Python"

    def _load(self, dataset, workload, cluster, result):
        pass

    def _execute(self, dataset, workload, cluster, result, scale):
        return workload.init_state(None)

    def _save(self, dataset, workload, cluster, result, state):
        pass


class _FakeDataset:
    name = "fake"


def test_run_finishes_with_zero_workers(monkeypatch):
    spec = ClusterSpec(num_machines=2)

    def degenerate_cluster(spec, num_workers=None, obs=None):
        cluster = Cluster(spec, num_workers=1, obs=obs)
        cluster.num_workers = 0
        return cluster

    monkeypatch.setattr(base_mod, "Cluster", degenerate_cluster)
    result = _NullEngine().run(_FakeDataset(), _NullWorkload(), spec)
    assert result.ok
    assert result.peak_memory_bytes == 0.0
