"""Unit tests for graph statistics (Table 3's characteristics)."""

import numpy as np
import pytest

from repro.graph import (
    bfs_levels,
    compute_stats,
    degree_histogram,
    effective_diameter,
    estimate_diameter,
    from_edges,
    largest_wcc_fraction,
    powerlaw_exponent_estimate,
)


@pytest.fixture
def path_graph():
    return from_edges([(i, i + 1) for i in range(9)], name="path10")


class TestBfsLevels:
    def test_path_levels(self, path_graph):
        levels = bfs_levels(path_graph, 0)
        assert list(levels) == list(range(10))

    def test_directed_only(self, path_graph):
        levels = bfs_levels(path_graph, 9, undirected=False)
        assert levels[9] == 0
        assert (levels[:9] == -1).all()

    def test_undirected_reaches_backwards(self, path_graph):
        levels = bfs_levels(path_graph, 9, undirected=True)
        assert levels[0] == 9

    def test_unreachable_marked(self, two_components):
        levels = bfs_levels(two_components, 0)
        assert levels[3] == -1 and levels[4] == -1


class TestDiameter:
    def test_path_diameter(self, path_graph):
        assert estimate_diameter(path_graph) == 9

    def test_cycle_diameter(self, cycle_graph):
        assert estimate_diameter(cycle_graph) == 2   # undirected 5-cycle

    def test_effective_diameter_bounded_by_true(self, path_graph):
        eff = effective_diameter(path_graph, quantile=0.9)
        assert 0 < eff <= 9

    def test_effective_diameter_quantile_monotone(self, path_graph):
        lo = effective_diameter(path_graph, quantile=0.5)
        hi = effective_diameter(path_graph, quantile=1.0)
        assert lo <= hi

    def test_effective_diameter_invalid_quantile(self, path_graph):
        with pytest.raises(ValueError):
            effective_diameter(path_graph, quantile=0.0)

    def test_empty_graph(self):
        from repro.graph import Graph

        assert effective_diameter(Graph(0, [])) == 0.0
        assert estimate_diameter(Graph(0, [])) == 0


class TestDegreeHistogram:
    def test_counts(self, diamond_graph):
        hist = degree_histogram(diamond_graph)
        assert hist == {0: 1, 1: 2, 2: 1}

    def test_total_vertices(self, small_twitter):
        hist = degree_histogram(small_twitter.graph)
        assert sum(hist.values()) == small_twitter.graph.num_vertices


class TestPowerlaw:
    def test_social_graph_has_powerlaw_tail(self, small_twitter):
        alpha = powerlaw_exponent_estimate(small_twitter.graph, d_min=2)
        assert alpha is not None
        assert 1.2 < alpha < 4.0

    def test_none_for_empty_tail(self):
        g = from_edges([], num_vertices=3)
        assert powerlaw_exponent_estimate(g, d_min=1) is None


class TestWccFraction:
    def test_connected_graph(self, cycle_graph):
        assert largest_wcc_fraction(cycle_graph) == 1.0

    def test_two_components(self, two_components):
        assert largest_wcc_fraction(two_components) == pytest.approx(3 / 5)

    def test_empty(self):
        from repro.graph import Graph

        assert largest_wcc_fraction(Graph(0, [])) == 0.0


class TestComputeStats:
    def test_fields(self, diamond_graph):
        stats = compute_stats(diamond_graph)
        assert stats.num_vertices == 4
        assert stats.num_edges == 4
        assert stats.avg_degree == pytest.approx(1.0)
        assert stats.max_degree == 2

    def test_as_row_keys(self, diamond_graph):
        row = compute_stats(diamond_graph).as_row()
        assert set(row) == {"Dataset", "|V|", "|E|", "Avg Degree",
                            "Max Degree", "Diameter"}

    def test_exact_diameter_mode(self, path_graph):
        stats = compute_stats(path_graph, effective=False)
        assert stats.diameter == 9.0
