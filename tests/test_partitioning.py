"""Tests for edge-cut, vertex-cut, and Voronoi partitioning."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.partitioning import (
    auto_method_for,
    auto_partition,
    grid_dimensions,
    grid_partition,
    oblivious_partition,
    pds_partition,
    pds_prime_for,
    perfect_difference_set,
    random_edge_partition,
    random_vertex_partition,
    voronoi_partition,
)


class TestRandomVertexPartition:
    def test_every_vertex_assigned(self, small_twitter):
        p = random_vertex_partition(small_twitter.graph, 8)
        assert (p.part_of >= 0).all() and (p.part_of < 8).all()

    def test_deterministic(self, small_twitter):
        a = random_vertex_partition(small_twitter.graph, 8)
        b = random_vertex_partition(small_twitter.graph, 8)
        assert np.array_equal(a.part_of, b.part_of)

    def test_vertex_counts_sum(self, small_twitter):
        p = random_vertex_partition(small_twitter.graph, 8)
        assert p.vertex_counts().sum() == small_twitter.graph.num_vertices

    def test_edge_counts_sum(self, small_twitter):
        p = random_vertex_partition(small_twitter.graph, 8)
        assert p.edge_counts().sum() == small_twitter.graph.num_edges

    def test_cut_fraction_bounds(self, small_twitter):
        p = random_vertex_partition(small_twitter.graph, 8)
        assert 0.0 <= p.cut_fraction() <= 1.0

    def test_cut_grows_with_parts(self, small_twitter):
        cut4 = random_vertex_partition(small_twitter.graph, 4).cut_fraction()
        cut64 = random_vertex_partition(small_twitter.graph, 64).cut_fraction()
        assert cut64 > cut4

    def test_single_part_no_cut(self, small_twitter):
        p = random_vertex_partition(small_twitter.graph, 1)
        assert p.cut_fraction() == 0.0

    def test_balance_reasonable(self, small_twitter):
        p = random_vertex_partition(small_twitter.graph, 8)
        assert p.balance_skew() < 1.0

    def test_vertices_of(self, small_twitter):
        p = random_vertex_partition(small_twitter.graph, 4)
        all_vertices = np.concatenate([p.vertices_of(i) for i in range(4)])
        assert len(all_vertices) == small_twitter.graph.num_vertices

    def test_invalid_parts(self, small_twitter):
        with pytest.raises(ValueError):
            random_vertex_partition(small_twitter.graph, 0)


class TestVertexCutCommon:
    @pytest.mark.parametrize("maker", [
        lambda g, m: random_edge_partition(g, m),
        lambda g, m: grid_partition(g, m),
        lambda g, m: oblivious_partition(g, m),
    ])
    def test_every_edge_assigned(self, small_twitter, maker):
        p = maker(small_twitter.graph, 16)
        assert p.edge_counts().sum() == small_twitter.graph.num_edges
        assert (p.part_of_edge >= 0).all() and (p.part_of_edge < 16).all()

    def test_replication_at_least_one(self, small_twitter):
        p = random_edge_partition(small_twitter.graph, 16)
        counts = p.replica_counts()
        # every vertex that appears on any edge has >= 1 replica
        deg = small_twitter.graph.out_degrees() + small_twitter.graph.in_degrees()
        assert (counts[deg > 0] >= 1).all()

    def test_replication_bounded_by_parts(self, small_twitter):
        p = random_edge_partition(small_twitter.graph, 8)
        assert p.replica_counts().max() <= 8

    def test_vertex_master_in_range(self, small_twitter):
        p = random_edge_partition(small_twitter.graph, 8)
        masters = p.vertex_master()
        assert (masters >= 0).all() and (masters < 8).all()


class TestGrid:
    def test_dimensions_square(self):
        assert grid_dimensions(16) == (4, 4)
        assert grid_dimensions(64) == (8, 8)

    def test_dimensions_nearly_square(self):
        assert grid_dimensions(12) == (3, 4)

    def test_dimensions_none_when_oblong(self):
        assert grid_dimensions(32) is None
        assert grid_dimensions(128) is None

    def test_grid_rejects_bad_count(self, small_twitter):
        with pytest.raises(ValueError):
            grid_partition(small_twitter.graph, 32)

    def test_grid_replication_bound(self, small_twitter):
        # replicas confined to a row+column cross: at most 2*sqrt(M)
        p = grid_partition(small_twitter.graph, 16)
        assert p.replica_counts().max() <= 2 * 4

    def test_grid_beats_random_replication(self, small_twitter):
        rand = random_edge_partition(small_twitter.graph, 16)
        grid = grid_partition(small_twitter.graph, 16)
        assert grid.replication_factor() < rand.replication_factor()


class TestPds:
    def test_prime_detection(self):
        assert pds_prime_for(7) == 2
        assert pds_prime_for(13) == 3
        assert pds_prime_for(21) is None   # p=4 is not prime
        assert pds_prime_for(31) == 5
        assert pds_prime_for(16) is None

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_perfect_difference_property(self, p):
        modulus = p * p + p + 1
        pds = perfect_difference_set(p)
        assert len(pds) == p + 1
        diffs = sorted(
            (a - b) % modulus for a in pds for b in pds if a != b
        )
        # every non-zero residue appears exactly once
        assert diffs == list(range(1, modulus))

    def test_pds_partition_replication_bound(self, small_twitter):
        p = pds_partition(small_twitter.graph, 13)
        assert p.replica_counts().max() <= 2 * 4   # ~ p+1 = 4 plus slack

    def test_pds_rejects_bad_count(self, small_twitter):
        with pytest.raises(ValueError):
            pds_partition(small_twitter.graph, 16)


class TestOblivious:
    def test_balance_guard(self, small_twitter):
        p = oblivious_partition(small_twitter.graph, 16)
        assert p.balance_skew() <= 0.25

    def test_exploits_locality(self, small_uk, small_twitter):
        # host-local web graph partitions with lower replication than the
        # social graph at the same machine count (Table 4's pattern)
        uk = oblivious_partition(small_uk.graph, 32).replication_factor()
        tw = oblivious_partition(small_twitter.graph, 32).replication_factor()
        assert uk < tw

    def test_beats_random(self, small_uk):
        rand = random_edge_partition(small_uk.graph, 32).replication_factor()
        obl = oblivious_partition(small_uk.graph, 32).replication_factor()
        assert obl < rand


class TestAuto:
    def test_method_selection_matches_paper(self):
        # §5.4: Grid at 16 and 64, Oblivious at 32 and 128
        assert auto_method_for(16) == "grid"
        assert auto_method_for(32) == "oblivious"
        assert auto_method_for(64) == "grid"
        assert auto_method_for(128) == "oblivious"

    def test_pds_priority(self):
        assert auto_method_for(13) == "pds"
        assert auto_method_for(31) == "pds"

    def test_auto_partition_runs(self, small_twitter):
        p = auto_partition(small_twitter.graph, 16)
        assert p.method == "grid"
        p = auto_partition(small_twitter.graph, 32)
        assert p.method == "oblivious"

    @pytest.mark.parametrize("m", [16, 32, 64, 128])
    def test_auto_never_worse_than_random(self, small_uk, m):
        auto = auto_partition(small_uk.graph, m).replication_factor()
        rand = random_edge_partition(small_uk.graph, m).replication_factor()
        assert auto < rand


class TestVoronoi:
    def test_every_vertex_in_block(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        assert (bp.block_of >= 0).all()

    def test_blocks_fewer_than_vertices(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        assert 0 < bp.num_blocks < small_wrn.graph.num_vertices

    def test_machine_assignment_complete(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        machines = bp.machine_of_vertex()
        assert (machines >= 0).all() and (machines < 16).all()

    def test_block_sizes_sum(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        assert bp.block_sizes().sum() == small_wrn.graph.num_vertices

    def test_machine_loads_sum(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        assert bp.machine_loads().sum() == small_wrn.graph.num_vertices

    def test_road_network_cut_is_small(self, small_wrn):
        # spatial blocks keep most road edges internal
        bp = voronoi_partition(small_wrn.graph, 16)
        assert bp.block_cut_fraction() < 0.25

    def test_machine_cut_below_block_cut(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        assert bp.cut_fraction() <= bp.block_cut_fraction() + 1e-9

    def test_block_graph_edges(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        pairs, weights = bp.block_graph_edges()
        assert len(pairs) == len(weights)
        assert (weights > 0).all()
        # block-graph endpoints are valid block ids
        assert pairs.max() < bp.num_blocks

    def test_aggregate_items(self, small_wrn):
        bp = voronoi_partition(small_wrn.graph, 16)
        assert bp.aggregate_items_per_round == small_wrn.graph.num_vertices

    def test_deterministic(self, small_wrn):
        a = voronoi_partition(small_wrn.graph, 16)
        b = voronoi_partition(small_wrn.graph, 16)
        assert np.array_equal(a.block_of, b.block_of)

    def test_invalid_parts(self, small_wrn):
        with pytest.raises(ValueError):
            voronoi_partition(small_wrn.graph, 0)
