"""Per-engine behaviour tests: quirks, failure cells, cost structure.

Each test pins a specific, paper-documented behaviour of one system
model — the mechanisms behind the result grids, not the grid values
themselves (those live in test_findings_paper.py).
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, FailureKind
from repro.datasets import load_dataset
from repro.engines import (
    ENGINE_KEYS,
    GRID_SYSTEMS,
    PAGERANK_SYSTEMS,
    GraphXEngine,
    make_engine,
    systems_for_workload,
    workload_for,
)
from repro.engines.base import iteration_scale, make_workload
from repro.engines.spark import default_partitions, partition_placement, tuned_partitions


def run(key, workload_name, dataset, machines=16, **spec_kw):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines, **spec_kw))


class TestRegistry:
    def test_all_keys_buildable(self):
        for key in ENGINE_KEYS:
            engine = make_engine(key)
            assert engine.key == key

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            make_engine("NEO4J")

    def test_lineups(self):
        assert systems_for_workload("pagerank") == PAGERANK_SYSTEMS
        assert systems_for_workload("wcc") == GRID_SYSTEMS
        assert "GL-A-R-T" in PAGERANK_SYSTEMS
        assert "GL-A-R-T" not in GRID_SYSTEMS

    def test_features_table_rows(self):
        for key in ("BV", "G", "HD", "S", "V", "FG"):
            features = make_engine(key).features
            assert "partitioning" in features and "synchronization" in features

    def test_mpi_engines_use_all_machines(self):
        spec = ClusterSpec(16)
        assert make_engine("BV").workers_for(spec) == 16
        assert make_engine("GL-S-R-I").workers_for(spec) == 16
        assert make_engine("G").workers_for(spec) == 15
        assert make_engine("HD").workers_for(spec) == 15


class TestIterationScale:
    def test_analytic_unscaled(self, small_twitter):
        wl = make_workload("pagerank", small_twitter)
        assert iteration_scale(small_twitter, wl) == 1.0

    def test_khop_unscaled(self, small_wrn):
        wl = make_workload("khop", small_wrn)
        assert iteration_scale(small_wrn, wl) == 1.0

    def test_traversals_scaled_by_diameter_ratio(self, small_wrn):
        wl = make_workload("wcc", small_wrn)
        scale = iteration_scale(small_wrn, wl)
        assert scale > 100   # 48 000 / ~240

    def test_small_diameter_scales_mildly(self, small_twitter):
        wl = make_workload("sssp", small_twitter)
        assert 1.0 <= iteration_scale(small_twitter, wl) < 5.0


class TestGiraph:
    def test_memory_grows_with_cluster_size(self, small_twitter):
        """Table 8's signature: total memory grows with machines."""
        totals = [
            run("G", "pagerank", small_twitter, m).total_memory_bytes
            for m in (16, 32, 64, 128)
        ]
        assert totals == sorted(totals)
        assert totals[-1] > 3 * totals[0]

    def test_wcc_doubles_edge_memory(self, small_twitter):
        pr = run("G", "pagerank", small_twitter, 64)
        wcc = run("G", "wcc", small_twitter, 64)
        assert wcc.total_memory_bytes > 1.3 * pr.total_memory_bytes

    def test_overhead_grows_with_cluster(self, small_twitter):
        small = run("G", "khop", small_twitter, 16).overhead_time
        large = run("G", "khop", small_twitter, 128).overhead_time
        assert large > 2 * small

    def test_fixed_iteration_pagerank(self, small_twitter):
        result = run("G", "pagerank", small_twitter)
        assert result.iterations == 30

    def test_uk_wcc_oom_on_small_clusters(self, small_uk):
        """§5.8: Giraph failed to load UK0705 at 16 and 32 for WCC."""
        assert run("G", "wcc", small_uk, 16).failure is FailureKind.OOM
        assert run("G", "wcc", small_uk, 32).failure is FailureKind.OOM
        assert run("G", "wcc", small_uk, 64).ok

    def test_wrn_wcc_narrative(self, small_wrn):
        """§5.8: OOM at 16, unfinished at 32, 'almost 24 hours' at 64."""
        assert run("G", "wcc", small_wrn, 16).failure is FailureKind.OOM
        assert run("G", "wcc", small_wrn, 32).failure is FailureKind.TIMEOUT
        at64 = run("G", "wcc", small_wrn, 64)
        assert at64.ok
        assert at64.total_time > 0.8 * 86400   # almost 24 hours

    def test_wrn_sssp_per_iteration_matches_table6(self, small_wrn):
        """Table 6: ~6 s/iteration at 16 machines, ~3 s at 32."""
        r16 = run("G", "sssp", small_wrn, 16, timeout_seconds=1e15)
        r32 = run("G", "sssp", small_wrn, 32, timeout_seconds=1e15)
        assert 4.0 < r16.per_iteration_time < 9.0
        assert 2.0 < r32.per_iteration_time < 4.5
        # and hence SSSP cannot finish inside 24 hours (Table 6's point)
        assert run("G", "sssp", small_wrn, 16).failure is FailureKind.TIMEOUT


class TestGraphLab:
    def test_replication_factor_recorded(self, small_twitter):
        result = run("GL-S-R-I", "pagerank", small_twitter)
        assert result.extras["replication_factor"] > 1.0

    def test_auto_lowers_replication(self, small_uk):
        rand = run("GL-S-R-I", "pagerank", small_uk, 64)
        auto = run("GL-S-A-I", "pagerank", small_uk, 64)
        assert auto.extras["replication_factor"] < rand.extras["replication_factor"]

    def test_oblivious_load_slower_than_grid(self, small_twitter):
        """§5.4: Auto load time zig-zags — Grid at 16/64, Oblivious at 32/128."""
        load16 = run("GL-S-A-I", "pagerank", small_twitter, 16).load_time
        load32 = run("GL-S-A-I", "pagerank", small_twitter, 32).load_time
        assert load32 > load16

    def test_wrn_fails_at_16_any_partitioning(self, small_wrn):
        """§5.2: GraphLab cannot load WRN on 16 machines at all."""
        assert run("GL-S-R-I", "pagerank", small_wrn, 16).failure is FailureKind.OOM
        assert run("GL-S-A-I", "pagerank", small_wrn, 16).failure is FailureKind.OOM

    def test_wrn_loads_at_32(self, small_wrn):
        assert run("GL-S-R-I", "pagerank", small_wrn, 32).ok

    def test_uk_random_oom_at_16(self, small_uk):
        """§5.2: random partitioning OOMs UK0705 at 16; auto survives."""
        assert run("GL-S-R-T", "pagerank", small_uk, 16).failure is FailureKind.OOM
        assert run("GL-S-A-T", "pagerank", small_uk, 16).ok

    def test_async_slower_than_sync(self, small_twitter):
        sync = run("GL-S-R-T", "pagerank", small_twitter)
        async_ = run("GL-A-R-T", "pagerank", small_twitter)
        assert async_.execute_time > sync.execute_time

    def test_async_wrn_oom_at_128_only(self, small_wrn):
        """Figure 10: async PageRank OOMs WRN at 128, not at 32/64."""
        assert run("GL-A-R-T", "pagerank", small_wrn, 32).ok
        assert run("GL-A-R-T", "pagerank", small_wrn, 64).ok
        assert run("GL-A-R-T", "pagerank", small_wrn, 128).failure is FailureKind.OOM

    def test_sync_wrn_fine_at_128(self, small_wrn):
        assert run("GL-S-R-T", "pagerank", small_wrn, 128).ok

    def test_tolerance_mode_is_approximate(self, small_twitter):
        """§5.2: tolerance-mode GraphLab deactivates converged vertices."""
        engine = make_engine("GL-S-R-T")
        workload = workload_for(engine, "pagerank", small_twitter)
        assert workload.approximate
        engine = make_engine("GL-S-R-I")
        workload = workload_for(engine, "pagerank", small_twitter)
        assert not workload.approximate

    def test_bad_configs_rejected(self):
        from repro.engines.graphlab import GraphLabEngine

        with pytest.raises(ValueError):
            GraphLabEngine(mode="turbo")
        with pytest.raises(ValueError):
            GraphLabEngine(partitioning="metis")
        with pytest.raises(ValueError):
            GraphLabEngine(stop="sometimes")
        with pytest.raises(ValueError):
            GraphLabEngine(compute_cores=5)


class TestBlogel:
    def test_bv_low_memory(self, small_twitter):
        bv = run("BV", "pagerank", small_twitter)
        giraph = run("G", "pagerank", small_twitter)
        assert bv.total_memory_bytes < 0.5 * giraph.total_memory_bytes

    def test_bb_mpi_overflow_on_wrn_and_clueweb(self, small_wrn, small_clueweb):
        """§5.1: Voronoi aggregation overflows MPI int32 on WRN/ClueWeb."""
        assert run("BB", "wcc", small_wrn, 16).failure is FailureKind.MPI
        assert run("BB", "wcc", small_clueweb, 128).failure is FailureKind.MPI

    def test_bb_fine_on_twitter_and_uk(self, small_twitter, small_uk):
        assert run("BB", "wcc", small_twitter, 16).ok
        assert run("BB", "wcc", small_uk, 16).ok

    def test_bb_execution_beats_bv_on_reachability(self, small_uk):
        """§5.1: block-centric wins *execution* on WCC/SSSP..."""
        bb = run("BB", "wcc", small_uk, 16)
        bv = run("BV", "wcc", small_uk, 16)
        assert bb.execute_time < bv.execute_time

    def test_bv_beats_bb_end_to_end(self, small_uk):
        """...but BV wins end-to-end: the GVD phase + HDFS round-trip."""
        bb = run("BB", "wcc", small_uk, 16)
        bv = run("BV", "wcc", small_uk, 16)
        assert bv.total_time < bb.total_time

    def test_modified_bb_skips_hdfs_roundtrip(self, small_uk):
        """Figure 3: removing the HDFS round-trip cuts the load time."""
        stock = run("BB", "wcc", small_uk, 16)
        modified = run("BB*", "wcc", small_uk, 16)
        assert modified.load_time < 0.7 * stock.load_time
        assert modified.total_time < stock.total_time

    def test_bb_pagerank_two_step_slower_than_bv(self, small_twitter):
        """§3.1.2/§5.1: the block-PageRank initialization does not pay off."""
        bb = run("BB", "pagerank", small_twitter, 16)
        bv = run("BV", "pagerank", small_twitter, 16)
        assert bb.execute_time > bv.execute_time

    def test_bb_records_blocks(self, small_twitter):
        result = run("BB", "khop", small_twitter, 16)
        assert result.extras["num_blocks"] > 16


class TestHadoopFamily:
    def test_hadoop_never_ooms(self, small_uk):
        for m in (16, 128):
            result = run("HD", "wcc", small_uk, m)
            assert result.failure is not FailureKind.OOM

    def test_hadoop_slowest_per_iteration(self, small_twitter):
        hd = run("HD", "pagerank", small_twitter)
        bv = run("BV", "pagerank", small_twitter)
        assert hd.per_iteration_time > 10 * bv.per_iteration_time

    def test_hadoop_iowait_dominates(self, small_twitter):
        """§5.10: Hadoop CPUs wait on I/O (vs GraphLab's compute profile)."""
        hd = run("HD", "pagerank", small_twitter)
        gl = run("GL-S-R-I", "pagerank", small_twitter)
        hd_ratio = hd.extras["cpu_iowait_seconds"] / hd.extras["cpu_user_seconds"]
        gl_ratio = gl.extras["cpu_iowait_seconds"] / max(
            gl.extras["cpu_user_seconds"], 1e-9
        )
        assert hd_ratio > 0.3
        assert hd_ratio > 5 * gl_ratio

    def test_haloop_faster_than_hadoop_but_below_2x(self, small_twitter):
        """§5.10: HaLoop speedup exists but is less than the claimed 2x."""
        hd = run("HD", "pagerank", small_twitter)
        hl = run("HL", "pagerank", small_twitter)
        assert hl.total_time < hd.total_time
        assert hd.total_time < 2.0 * hl.total_time

    def test_haloop_shuffle_bug_on_large_clusters(self, small_twitter):
        """§5.10: SHFL after a few iterations on 64/128 machines."""
        assert run("HL", "pagerank", small_twitter, 64).failure is FailureKind.SHUFFLE
        assert run("HL", "pagerank", small_twitter, 128).failure is FailureKind.SHUFFLE
        assert run("HL", "pagerank", small_twitter, 32).ok

    def test_haloop_khop_survives_bug(self, small_twitter):
        """K-hop's 3 iterations stay under the bug's trigger."""
        assert run("HL", "khop", small_twitter, 128).ok

    def test_wrn_traversals_timeout(self, small_wrn):
        assert run("HD", "sssp", small_wrn, 16).failure is FailureKind.TIMEOUT
        assert run("HD", "wcc", small_wrn, 64).failure is FailureKind.TIMEOUT


class TestGraphX:
    def test_partition_policies(self, small_twitter):
        cores = 60
        assert default_partitions(small_twitter) >= 1
        tuned = tuned_partitions(small_twitter, cores)
        assert tuned <= 2 * cores

    def test_fixed_policy_requires_count(self):
        with pytest.raises(ValueError):
            GraphXEngine(partition_policy="fixed")
        with pytest.raises(ValueError):
            GraphXEngine(partition_policy="whatever")

    def test_placement_skewed(self, small_uk):
        """Figure 11: partitions land unevenly on machines."""
        counts = partition_placement("uk0705", 1200, 127)
        assert counts.sum() == 1200
        assert counts.max() > 2.5 * counts.mean()

    def test_placement_deterministic(self):
        a = partition_placement("twitter", 440, 63)
        b = partition_placement("twitter", 440, 63)
        assert np.array_equal(a, b)

    def test_partition_count_changes_time(self, small_twitter):
        """Figure 2: partition count materially changes PageRank time."""
        times = {}
        for count in (30, 120, 1200):
            engine = GraphXEngine(num_partitions=count, partition_policy="fixed")
            workload = workload_for(engine, "pagerank", small_twitter)
            times[count] = engine.run(
                small_twitter, workload, ClusterSpec(32)
            ).total_time
        assert max(times.values()) > 1.4 * min(times.values())

    def test_lineage_kills_wrn_wcc_everywhere(self, small_wrn):
        """§5.6: WCC on WRN fails on all cluster sizes (memory or timeout)."""
        for m in (16, 32, 64, 128):
            failure = run("S", "wcc", small_wrn, m).failure
            assert failure in (FailureKind.OOM, FailureKind.TIMEOUT)

    def test_wrn_khop_survives(self, small_wrn):
        """3 iterations keep lineage short."""
        assert run("S", "khop", small_wrn, 32).ok

    def test_graphx_slowest_system_on_twitter(self, small_twitter):
        """§5.6: GraphX is slower than all other systems."""
        s = run("S", "pagerank", small_twitter)
        others = [run(k, "pagerank", small_twitter)
                  for k in ("BV", "G", "GL-S-R-I", "HD", "FG")]
        assert all(s.total_time > o.total_time for o in others if o.ok)

    def test_overhead_significant(self, small_twitter):
        """§5.7: Spark app start/stop overhead."""
        assert run("S", "khop", small_twitter).overhead_time > 15


class TestVertica:
    def test_small_memory_footprint(self, small_uk):
        """Figure 13b: tiny memory compared to in-memory systems."""
        v = run("V", "pagerank", small_uk, 64)
        gl = run("GL-S-R-I", "pagerank", small_uk, 64)
        assert v.peak_memory_bytes < 0.2 * gl.peak_memory_bytes

    def test_slower_than_graph_systems(self, small_uk):
        """§5.11: not competitive with native graph systems."""
        v = run("V", "pagerank", small_uk, 32)
        bv = run("BV", "pagerank", small_uk, 32)
        gl = run("GL-S-R-I", "pagerank", small_uk, 32)
        assert v.total_time > bv.total_time
        assert v.total_time > gl.total_time

    def test_gap_grows_with_cluster(self, small_uk):
        """§5.11: the gap to graph systems widens as the cluster grows."""
        gap32 = (run("V", "pagerank", small_uk, 32).execute_time
                 / run("BV", "pagerank", small_uk, 32).execute_time)
        gap128 = (run("V", "pagerank", small_uk, 128).execute_time
                  / run("BV", "pagerank", small_uk, 128).execute_time)
        assert gap128 > gap32

    def test_network_heavy(self, small_uk):
        """Figure 13c: Vertica moves more bytes than GraphLab."""
        v = run("V", "pagerank", small_uk, 64)
        gl = run("GL-S-R-I", "pagerank", small_uk, 64)
        assert v.network_bytes > gl.network_bytes


class TestGelly:
    def test_low_overhead_but_restart(self, small_twitter):
        """§5.7: small job overhead; restart charged between workloads."""
        result = run("FG", "khop", small_twitter)
        assert 30 < result.overhead_time < 60

    def test_uk_wcc_succeeds_everywhere(self, small_uk):
        """§5.8: Gelly finished WCC for UK0705 in all clusters."""
        for m in (16, 32, 64, 128):
            assert run("FG", "wcc", small_uk, m).ok

    def test_wrn_wcc_only_at_128(self, small_wrn):
        """§5.8: TO at 16/32/64; slightly under 24 hours at 128."""
        for m in (16, 32, 64):
            assert run("FG", "wcc", small_wrn, m).failure is FailureKind.TIMEOUT
        at128 = run("FG", "wcc", small_wrn, 128)
        assert at128.ok
        assert at128.total_time > 0.85 * 86400

    def test_clueweb_fails(self, small_clueweb):
        """§5.9: Gelly could not finish ClueWeb."""
        assert run("FG", "pagerank", small_clueweb, 128).failure is FailureKind.OOM


class TestSingleThread:
    def test_ignores_cluster_size(self, small_twitter):
        a = run("ST", "pagerank", small_twitter, 16)
        b = run("ST", "pagerank", small_twitter, 128)
        assert a.total_time == pytest.approx(b.total_time)

    def test_wcc_on_wrn_uses_about_112gb_memory_shape(self, small_wrn):
        """§5.13: the single-thread WRN run needs a big machine."""
        result = run("ST", "wcc", small_wrn)
        assert result.peak_memory_bytes > 30.5 * 1024**3   # exceeds r3.xlarge

    def test_load_dominates_traversals(self, small_twitter):
        result = run("ST", "sssp", small_twitter)
        assert result.load_time > result.execute_time
