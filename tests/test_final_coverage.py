"""Final coverage round: CLI findings, report internals, API surface."""

import pytest

from repro import __version__
from repro.cli import main
from repro.cluster import ClusterSpec
from repro.datasets import load_dataset, register_dataset
from repro.engines import ENGINE_KEYS, make_engine, workload_for


class TestFindingsCli:
    def test_findings_command_all_supported(self, capsys):
        assert main(["findings"]) == 0
        out = capsys.readouterr().out
        assert out.count("SUPPORTED") >= 8
        assert "NOT SUPPORTED" not in out
        # evidence is printed per finding
        assert "execution_winner" in out


class TestPublicApiSurface:
    def test_version(self):
        assert __version__ == "1.0.0"

    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.cluster
        import repro.core
        import repro.datasets
        import repro.engines
        import repro.graph
        import repro.partitioning
        import repro.workloads

        for module in (
            repro.analysis, repro.cluster, repro.core, repro.datasets,
            repro.engines, repro.graph, repro.partitioning, repro.workloads,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module.__name__, name)

    def test_every_engine_has_metadata(self):
        for key in ENGINE_KEYS:
            engine = make_engine(key)
            assert engine.display_name
            assert engine.language
            assert engine.input_format in ("adj", "adj-long", "edge")
            assert engine.fault_tolerance in ("checkpoint", "reexecution", "none")

    def test_every_public_callable_documented(self):
        """Every exported class/function carries a docstring."""
        import repro.cluster
        import repro.core
        import repro.graph
        import repro.partitioning
        import repro.workloads

        for module in (repro.graph, repro.partitioning, repro.cluster,
                       repro.workloads, repro.core):
            for name in module.__all__:
                obj = getattr(module, name)
                if callable(obj):
                    assert obj.__doc__, f"{module.__name__}.{name} undocumented"


class TestRegisterDataset:
    def test_cannot_shadow_builtin(self, tiny_twitter):
        from dataclasses import replace

        clone = replace(tiny_twitter, size="weird")
        with pytest.raises(ValueError):
            register_dataset(clone)

    def test_custom_dataset_runs_everywhere(self, tiny_twitter):
        from dataclasses import replace

        custom = register_dataset(replace(tiny_twitter, name="my-graph"))
        engine = make_engine("BV")
        result = engine.run(
            custom, workload_for(engine, "khop", custom), ClusterSpec(16)
        )
        assert result.ok
        assert result.dataset == "my-graph"


class TestRunResultApi:
    def test_cell_rounding(self, tiny_twitter):
        engine = make_engine("BV")
        result = engine.run(
            tiny_twitter, workload_for(engine, "khop", tiny_twitter),
            ClusterSpec(16),
        )
        assert result.cell() == f"{result.total_time:.0f}"
        assert "ok" in repr(result)

    def test_extras_cpu_accounting_present(self, tiny_twitter):
        engine = make_engine("HD")
        result = engine.run(
            tiny_twitter, workload_for(engine, "khop", tiny_twitter),
            ClusterSpec(16),
        )
        for key in ("cpu_user_seconds", "cpu_iowait_seconds",
                    "max_user_utilization", "max_iowait_utilization"):
            assert key in result.extras
