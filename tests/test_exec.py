"""repro.exec: the parallel, cached, resumable grid executor.

The two guarantees everything else leans on — a parallel execution is
bit-equivalent to the sequential loop, and a warm cache replays instead
of recomputing — plus the planner, cache keys, resume-after-kill, the
retry drill, and the rule that simulated failure cells are results and
are never retried.
"""

import dataclasses
import json

import pytest

from repro.core.runner import ExperimentSpec, ResultGrid, run_grid
from repro.datasets.registry import load_dataset, register_dataset
from repro.exec import (
    CellTask,
    ExecutorError,
    ResultCache,
    RetryPolicy,
    cell_key,
    dataset_fingerprint,
    execute_grid,
    plan_grid,
)
from repro.exec.serialize import PAYLOAD_VERSION
from repro.exec.workers import FAULT_ENV
from repro.obs import Journal


def tiny_spec(systems=("G", "BV"), datasets=("twitter",), sizes=(16, 32)):
    """A fast grid: tiny datasets, a couple of cheap systems."""
    return ExperimentSpec(
        systems=tuple(systems),
        workloads=("pagerank",),
        datasets=tuple(datasets),
        cluster_sizes=tuple(sizes),
        dataset_size="tiny",
    )


def journal_bytes(grid: ResultGrid) -> dict:
    """Canonical per-cell journal text, keyed by cell coordinates."""
    return {
        key: result.observation.journal().dumps()
        for key, result in grid.cells.items()
        if result.observation is not None
    }


# -- planning ----------------------------------------------------------------

def test_plan_grid_expands_in_sequential_loop_order():
    spec = tiny_spec(datasets=("twitter", "wrn"))
    tasks = plan_grid(spec)
    assert len(tasks) == 8
    assert [t.index for t in tasks] == list(range(8))
    # outermost datasets, innermost systems — the classic loop nesting
    assert [t.dataset for t in tasks[:4]] == ["twitter"] * 4
    assert [t.system for t in tasks[:2]] == ["G", "BV"]
    first = tasks[0]
    assert first.cell_id == "G:pagerank:twitter/tiny@16"
    assert first.portable


def test_adhoc_dataset_cells_are_not_portable():
    task = dataclasses.replace(plan_grid(tiny_spec())[0], dataset="nonesuch")
    assert not task.portable


# -- bit-equivalence: parallel == sequential ---------------------------------

def test_parallel_grid_matches_sequential_bit_for_bit():
    spec = tiny_spec()
    seq = execute_grid(spec, jobs=1)
    par = execute_grid(spec, jobs=2)
    assert par.report.jobs == 2
    assert par.report.executed == 4 and par.report.cache_hits == 0
    assert seq.grid.same_results(par.grid)
    # the stronger claim: per-cell journals byte-match across modes
    assert journal_bytes(seq.grid) == journal_bytes(par.grid)


def test_run_grid_wires_jobs_and_cache_through(tmp_path):
    spec = tiny_spec(sizes=(16,))
    cold = run_grid(spec, jobs=2, cache_dir=tmp_path / "cache")
    warm = run_grid(spec, jobs=2, cache_dir=tmp_path / "cache")
    assert isinstance(cold, ResultGrid) and len(cold) == 2
    assert cold.same_results(warm)
    assert journal_bytes(cold) == journal_bytes(warm)


# -- caching -----------------------------------------------------------------

def test_warm_cache_rerun_executes_zero_cells(tmp_path):
    spec = tiny_spec()
    cold = execute_grid(spec, jobs=1, cache=tmp_path / "cache")
    assert cold.report.executed == 4 and cold.report.cache_hits == 0
    warm = execute_grid(spec, jobs=1, cache=tmp_path / "cache")
    assert warm.report.executed == 0 and warm.report.cache_hits == 4
    assert warm.report.cache_hit_rate == 1.0
    assert cold.grid.same_results(warm.grid)
    assert journal_bytes(cold.grid) == journal_bytes(warm.grid)


def test_cache_corrupt_or_alien_entries_degrade_to_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = "ab" * 32
    assert cache.get(key) is None and key not in cache
    path = cache.put(key, {"version": PAYLOAD_VERSION, "record": {}})
    assert key in cache and len(cache) == 1
    assert cache.get(key) == {"version": PAYLOAD_VERSION, "record": {}}
    path.write_text("{ truncated", encoding="ascii")
    assert cache.get(key) is None
    path.write_text(json.dumps({"version": 999}), encoding="ascii")
    assert cache.get(key) is None


def payload(tag):
    return {"version": PAYLOAD_VERSION, "record": {"tag": tag}}


def test_cache_budget_evicts_least_recently_used(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path / "cache", max_cells=0)
    cache = ResultCache(tmp_path / "cache", max_cells=2)
    keys = [c * 64 for c in "abc"]
    cache.put(keys[0], payload(0))
    cache.put(keys[1], payload(1))
    assert cache.evictions == 0 and len(cache) == 2
    # touching "a" makes "b" the LRU victim of the third put
    assert cache.get(keys[0]) == payload(0)
    cache.put(keys[2], payload(2))
    assert cache.evictions == 1 and len(cache) == 2
    assert cache.get(keys[1]) is None  # evicted from disk, not just memory
    assert not cache.path_for(keys[1]).exists()
    assert cache.get(keys[0]) == payload(0)
    assert cache.get(keys[2]) == payload(2)


def test_cache_budget_adopts_preexisting_entries(tmp_path):
    unbounded = ResultCache(tmp_path / "cache")
    keys = [c * 64 for c in "ab"]
    for index, key in enumerate(keys):
        unbounded.put(key, payload(index))
    # a bounded reopen inherits the entries; the next put evicts the
    # deterministic oldest (key order: no access order survives restart)
    bounded = ResultCache(tmp_path / "cache", max_cells=2)
    assert len(bounded) == 2
    bounded.put("c" * 64, payload(2))
    assert bounded.evictions == 1
    assert bounded.get(keys[0]) is None
    assert bounded.get(keys[1]) == payload(1)


def test_cell_keys_invalidate_on_code_dataset_or_coordinates():
    task = plan_grid(tiny_spec(sizes=(16,)))[0]
    twitter = load_dataset("twitter", "tiny")
    assert cell_key(task, twitter) == cell_key(task, twitter)
    # a new simulation-code version busts the key
    assert cell_key(task, twitter) != cell_key(task, twitter, code_version="v2")
    # so does any change in cell coordinates
    moved = dataclasses.replace(task, cluster_size=32)
    assert cell_key(task, twitter) != cell_key(moved, twitter)
    # and dataset *content*: other graph bytes → other fingerprint
    assert dataset_fingerprint(twitter) != dataset_fingerprint(
        load_dataset("wrn", "tiny")
    )
    assert dataset_fingerprint(twitter) != dataset_fingerprint(
        load_dataset("twitter", "small")
    )


# -- resume ------------------------------------------------------------------

def test_resume_after_mid_grid_kill_runs_only_missing_cells(tmp_path):
    spec = tiny_spec()
    cache_dir = tmp_path / "cache"

    def die_after_two(event):
        if event.done == 2:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        execute_grid(spec, jobs=1, cache=cache_dir, progress=die_after_two)
    assert len(ResultCache(cache_dir)) == 2

    resumed = execute_grid(spec, jobs=1, cache=cache_dir, resume=True)
    assert resumed.report.resumed
    assert resumed.report.cache_hits == 2 and resumed.report.executed == 2
    assert len(resumed.grid) == 4
    assert resumed.grid.same_results(execute_grid(spec, jobs=1).grid)


def test_resume_demands_an_existing_cache(tmp_path):
    spec = tiny_spec(sizes=(16,))
    with pytest.raises(ExecutorError, match="requires a result cache"):
        execute_grid(spec, resume=True)
    with pytest.raises(ExecutorError, match="nothing to resume"):
        execute_grid(spec, resume=True, cache=tmp_path / "never-created")


# -- retry -------------------------------------------------------------------

def test_retry_policy_backs_off_exponentially():
    policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0)
    assert [policy.delay(n) for n in (1, 2, 3)] == [0.1, 0.2, 0.4]
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


def test_worker_crashes_are_retried_inline(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "G:2")
    execution = execute_grid(
        tiny_spec(systems=("G",), sizes=(16,)),
        jobs=1,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0),
    )
    assert execution.report.retries == 2
    assert execution.report.executed == 1
    assert all(r.ok for r in execution.grid.cells.values())


def test_worker_crashes_are_retried_in_the_pool(monkeypatch):
    spec = tiny_spec(sizes=(16,))
    clean = execute_grid(spec, jobs=1)
    monkeypatch.setenv(FAULT_ENV, "G:1")
    execution = execute_grid(
        spec, jobs=2, retry=RetryPolicy(max_attempts=3, base_delay=0.0)
    )
    assert execution.report.retries == 1
    # the re-attempt reproduces the run the crash interrupted, exactly
    assert execution.grid.same_results(clean.grid)
    assert journal_bytes(execution.grid) == journal_bytes(clean.grid)


def test_retry_exhaustion_raises_with_the_cell_address(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "G:5")
    with pytest.raises(
        ExecutorError, match=r"G:pagerank:twitter/tiny@16 failed after 2"
    ):
        execute_grid(
            tiny_spec(systems=("G",), sizes=(16,)),
            jobs=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        )


# -- simulated failures are results ------------------------------------------

def test_failure_cells_are_cached_results_never_retried(tmp_path):
    # Blogel-B cannot run PageRank on the road network at 16 (MPI, §5.2)
    spec = tiny_spec(systems=("BB",), datasets=("wrn",), sizes=(16,))
    first = execute_grid(spec, jobs=1, cache=tmp_path / "cache")
    (result,) = first.grid.cells.values()
    assert not result.ok and result.cell() == "MPI"
    assert first.report.retries == 0 and first.report.executed == 1
    second = execute_grid(spec, jobs=1, cache=tmp_path / "cache")
    assert second.report.cache_hits == 1 and second.report.executed == 0
    (replayed,) = second.grid.cells.values()
    assert not replayed.ok and replayed.cell() == "MPI"


# -- non-portable datasets run inline ----------------------------------------

def test_adhoc_registered_datasets_still_run_under_jobs_n():
    adhoc = dataclasses.replace(
        load_dataset("twitter", "tiny"), name="exec-adhoc"
    )
    register_dataset(adhoc)
    spec = tiny_spec(datasets=("exec-adhoc",), sizes=(16,))
    assert not any(t.portable for t in plan_grid(spec))
    execution = execute_grid(spec, jobs=2)  # falls back to inline cells
    assert execution.report.executed == 2
    assert all(r.ok for r in execution.grid.cells.values())


# -- the scheduler observes itself -------------------------------------------

def test_scheduler_journal_records_spans_and_counters(tmp_path):
    spec = tiny_spec(sizes=(16,))
    execute_grid(spec, jobs=1, cache=tmp_path / "cache")
    execution = execute_grid(spec, jobs=1, cache=tmp_path / "cache")
    assert execution.observation.meta["kind"] == "scheduler"
    text = execution.scheduler_journal().dumps()
    assert '"grid"' in text and '"plan"' in text and '"cell"' in text
    assert "exec.cache_hits" in text
    assert execution.report.summary() == (
        "exec: 2 cells · 2 cached · 0 executed · 0 retries · jobs=1 · "
        f"{execution.report.host_seconds:.2f}s host"
    )


def test_journal_text_roundtrips_canonically():
    execution = execute_grid(tiny_spec(systems=("G",), sizes=(16,)), jobs=1)
    (result,) = execution.grid.cells.values()
    text = result.observation.journal().dumps()
    assert Journal.loads(text).dumps() == text
