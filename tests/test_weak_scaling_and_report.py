"""Tests for the weak-scaling extension and the report generator."""

import pytest

from repro.analysis.report import grid_report
from repro.cluster import FailureKind
from repro.core import (
    ResultGrid,
    weak_efficiency,
    weak_scaling_dataset,
    weak_scaling_experiment,
)
from repro.engines.base import RunResult


class TestWeakScalingDatasets:
    def test_profile_scales_with_machines(self):
        d16 = weak_scaling_dataset("twitter", 16)
        d128 = weak_scaling_dataset("twitter", 128)
        assert d128.profile.num_edges == pytest.approx(
            8 * d16.profile.num_edges, rel=0.01
        )

    def test_full_scale_matches_paper(self):
        from repro.datasets import PAPER_PROFILES

        d = weak_scaling_dataset("uk0705", 128)
        assert d.profile.num_edges == PAPER_PROFILES["uk0705"].num_edges

    def test_synthetic_graph_grows_too(self):
        small = weak_scaling_dataset("twitter", 16).graph.num_vertices
        large = weak_scaling_dataset("twitter", 128).graph.num_vertices
        assert large > 3 * small

    def test_road_diameter_scales(self):
        d16 = weak_scaling_dataset("wrn", 16)
        d128 = weak_scaling_dataset("wrn", 128)
        assert d128.profile.diameter > d16.profile.diameter

    def test_registered_and_resolvable(self):
        from repro.datasets import load_dataset

        d = weak_scaling_dataset("twitter", 32)
        assert load_dataset(d.name, "weak") is d

    def test_memoized(self):
        assert weak_scaling_dataset("twitter", 16) is weak_scaling_dataset(
            "twitter", 16
        )

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            weak_scaling_dataset("facebook", 16)

    def test_too_few_machines(self):
        with pytest.raises(ValueError):
            weak_scaling_dataset("twitter", 1)


class TestWeakScalingExperiment:
    def test_points_cover_sizes(self):
        points = weak_scaling_experiment("BV", "khop", "twitter",
                                         cluster_sizes=(16, 32))
        assert [p.machines for p in points] == [16, 32]
        assert all(p.result.ok for p in points)

    def test_efficiency_baseline_is_one(self):
        points = weak_scaling_experiment("BV", "pagerank", "twitter",
                                         cluster_sizes=(16, 32, 64))
        eff = dict(weak_efficiency(points))
        assert eff[16] == pytest.approx(1.0)
        # weak efficiency degrades, but not to nothing
        assert 0.15 < eff[64] <= 1.2

    def test_diameter_bound_workload_degrades_hardest(self):
        """Growing a road network grows its diameter: WCC's weak scaling
        is far worse than PageRank's — the paper's §5.8 theme, extended."""
        wcc = dict(weak_efficiency(
            weak_scaling_experiment("BV", "wcc", "wrn", cluster_sizes=(16, 64))
        ))
        pr = dict(weak_efficiency(
            weak_scaling_experiment("BV", "pagerank", "wrn",
                                    cluster_sizes=(16, 64))
        ))
        assert wcc[64] < 0.6 * pr[64]

    def test_failed_points_excluded_from_efficiency(self):
        points = weak_scaling_experiment("GL-S-R-I", "pagerank", "wrn",
                                         cluster_sizes=(16, 32))
        eff = dict(weak_efficiency(points))
        assert all(m in (16, 32) for m in eff)


def _result(**kw):
    base = dict(system="BV", workload="pagerank", dataset="twitter",
                cluster_size=16, execute_time=10.0, load_time=1.0)
    base.update(kw)
    return RunResult(**base)


class TestGridReport:
    def make_grid(self):
        grid = ResultGrid()
        grid.put(_result())
        grid.put(_result(cluster_size=32, execute_time=6.0))
        grid.put(_result(system="HD", execute_time=100.0))
        grid.put(_result(system="HD", cluster_size=32,
                         failure=FailureKind.TIMEOUT))
        return grid

    def test_report_sections(self):
        text = grid_report(self.make_grid(), title="demo")
        assert text.startswith("# demo")
        assert "### pagerank" in text
        assert "### Failures" in text
        assert "**TO**: 1" in text
        assert "Best system per column" in text
        assert "Strong-scaling classification" in text

    def test_winner_identified(self):
        text = grid_report(self.make_grid())
        # BV beats HD at 16 machines
        assert "BV" in text.split("Best system per column")[1]

    def test_scaling_labels(self):
        text = grid_report(self.make_grid())
        assert "BV: steady" in text

    def test_empty_grid(self):
        assert "(no runs)" in grid_report(ResultGrid())

    def test_cell_codes_render(self):
        text = grid_report(self.make_grid())
        assert "TO" in text
