"""Tests for the dataset generators and registry.

These pin the *performance-determining characteristics* of Table 3:
power-law max degrees and tiny diameters for the social/web graphs,
bounded degree and a huge relative diameter for the road network, and
one giant weakly connected component everywhere.
"""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    PAPER_PROFILES,
    SIZE_NAMES,
    dataset_names,
    load_dataset,
    powerlaw_social_graph,
    road_network_graph,
    web_host_graph,
)
from repro.graph import estimate_diameter, largest_wcc_fraction


class TestGenerators:
    def test_social_is_deterministic(self):
        a = powerlaw_social_graph(200, seed=3)
        b = powerlaw_social_graph(200, seed=3)
        assert a == b

    def test_social_seed_changes_graph(self):
        assert powerlaw_social_graph(200, seed=3) != powerlaw_social_graph(200, seed=4)

    def test_social_hub_degree(self):
        g = powerlaw_social_graph(500, max_degree_fraction=0.1, seed=1)
        assert g.in_degrees().max() >= 0.08 * g.num_vertices

    def test_social_has_self_edges(self):
        g = powerlaw_social_graph(400, seed=1)
        assert g.count_self_edges() > 0   # the GraphLab quirk needs these

    def test_social_connected(self):
        g = powerlaw_social_graph(300, seed=5)
        assert largest_wcc_fraction(g) == 1.0

    def test_social_too_small_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_social_graph(1)

    def test_road_degree_bounded(self):
        g = road_network_graph(50, 10, seed=2)
        total_degree = g.out_degrees() + g.in_degrees()
        assert total_degree.max() <= 18   # <= 9 per direction

    def test_road_large_diameter(self):
        g = road_network_graph(80, 8, seed=2)
        assert estimate_diameter(g) >= 60

    def test_road_connected(self):
        g = road_network_graph(40, 8, seed=2)
        assert largest_wcc_fraction(g) == 1.0

    def test_road_no_self_edges(self):
        g = road_network_graph(30, 6, seed=2)
        assert g.count_self_edges() == 0

    def test_road_symmetric_edges(self):
        g = road_network_graph(10, 4, seed=2)
        edges = set(g.edges())
        assert all((d, s) in edges for s, d in edges)

    def test_road_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            road_network_graph(1, 1)

    def test_web_locality(self):
        g = web_host_graph(20, 40, seed=3)
        pages = 40
        src = g.edge_sources() // pages
        dst = g.edge_targets() // pages
        intra = (src == dst).mean()
        assert intra > 0.5   # most links stay within a host

    def test_web_connected(self):
        g = web_host_graph(10, 20, seed=3)
        assert largest_wcc_fraction(g) == 1.0

    def test_web_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            web_host_graph(0, 5)


class TestRegistry:
    def test_dataset_names(self):
        assert DATASET_NAMES == ("twitter", "wrn", "uk0705", "clueweb")

    def test_exclude_clueweb(self):
        assert "clueweb" not in dataset_names(include_clueweb=False)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("facebook")

    def test_unknown_size(self):
        with pytest.raises(KeyError):
            load_dataset("twitter", "huge")

    def test_memoized(self):
        assert load_dataset("twitter", "tiny") is load_dataset("twitter", "tiny")

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_profiles_match_paper_table3(self, name):
        profile = PAPER_PROFILES[name]
        assert profile.num_edges == pytest.approx(
            profile.num_vertices * profile.avg_degree, rel=0.05
        )

    @pytest.mark.parametrize("name", DATASET_NAMES)
    @pytest.mark.parametrize("size", SIZE_NAMES)
    def test_every_dataset_builds(self, name, size):
        d = load_dataset(name, size)
        assert d.graph.num_vertices > 0
        assert d.graph.num_edges > 0

    def test_scale_factors(self):
        d = load_dataset("twitter", "tiny")
        assert d.vertex_scale == pytest.approx(
            d.profile.num_vertices / d.graph.num_vertices
        )
        assert d.scaled_edges(1.0) == pytest.approx(d.edge_scale)
        assert d.scaled_vertices(2.0) == pytest.approx(2 * d.vertex_scale)

    def test_sssp_source_in_range(self):
        for name in DATASET_NAMES:
            d = load_dataset(name, "tiny")
            assert 0 <= d.sssp_source < d.graph.num_vertices

    def test_sizes_are_ordered(self):
        for name in DATASET_NAMES:
            tiny = load_dataset(name, "tiny").graph.num_edges
            small = load_dataset(name, "small").graph.num_edges
            assert tiny < small


class TestDatasetShapes:
    """The Table-3 shape properties the engines' behaviour depends on."""

    def test_wrn_diameter_dominates(self, small_wrn, small_twitter):
        d_wrn = estimate_diameter(small_wrn.graph)
        d_tw = estimate_diameter(small_twitter.graph)
        assert d_wrn > 20 * d_tw

    def test_wrn_max_degree_at_most_9(self, small_wrn):
        assert small_wrn.graph.out_degrees().max() <= 9

    def test_social_max_degree_dominates_average(self, small_twitter):
        g = small_twitter.graph
        in_deg = g.in_degrees()
        assert in_deg.max() > 20 * in_deg.mean()

    def test_all_have_giant_component(self):
        for name in DATASET_NAMES:
            d = load_dataset(name, "tiny")
            assert largest_wcc_fraction(d.graph) > 0.99

    def test_web_graphs_have_self_edges(self, small_uk, small_clueweb):
        assert small_uk.graph.count_self_edges() > 0
        assert small_clueweb.graph.count_self_edges() > 0

    def test_clueweb_is_biggest(self):
        sizes = {n: load_dataset(n, "small").graph.num_edges for n in DATASET_NAMES}
        assert sizes["clueweb"] == max(sizes.values())

    def test_relative_order_matches_paper(self):
        # |E|: twitter < uk < clueweb at paper scale; wrn smallest avg degree
        profiles = PAPER_PROFILES
        assert profiles["twitter"].num_edges < profiles["uk0705"].num_edges
        assert profiles["uk0705"].num_edges < profiles["clueweb"].num_edges
        assert profiles["wrn"].avg_degree < 2.0
