"""The paper's major findings (§1), asserted end-to-end.

Each test reproduces one bullet of the paper's findings list by running
the relevant experiment cells and checking the *relationship* the paper
reports — who wins, what fails, what grows.
"""

import pytest

from repro.cluster import ClusterSpec, FailureKind
from repro.core import cost_experiment
from repro.datasets import load_dataset
from repro.engines import GRID_SYSTEMS, make_engine, workload_for


def run(key, workload_name, dataset, machines=16):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines))


@pytest.fixture(scope="module")
def twitter():
    return load_dataset("twitter", "small")


@pytest.fixture(scope="module")
def uk():
    return load_dataset("uk0705", "small")


@pytest.fixture(scope="module")
def wrn():
    return load_dataset("wrn", "small")


@pytest.fixture(scope="module")
def clueweb():
    return load_dataset("clueweb", "small")


class TestBlogelOverallWinner:
    """Finding 1 (§5.1): Blogel wins; BB fastest execution, BV end-to-end."""

    @pytest.mark.parametrize("workload", ["wcc", "sssp", "khop"])
    def test_bv_best_end_to_end_on_twitter(self, twitter, workload):
        results = {k: run(k, workload, twitter) for k in GRID_SYSTEMS}
        ok = {k: r for k, r in results.items() if r.ok}
        winner = min(ok, key=lambda k: ok[k].total_time)
        assert winner in ("BV", "BB"), f"winner was {winner}"

    def test_bb_shortest_execution_for_reachability(self, uk):
        results = {k: run(k, "sssp", uk) for k in GRID_SYSTEMS}
        ok = {k: r for k, r in results.items() if r.ok}
        winner = min(ok, key=lambda k: ok[k].execute_time)
        assert winner == "BB"

    def test_bv_only_system_finishing_wrn_wcc_at_16(self, wrn):
        outcomes = {k: run(k, "wcc", wrn, 16).ok for k in GRID_SYSTEMS}
        assert outcomes["BV"]
        assert not any(ok for k, ok in outcomes.items() if k != "BV")

    def test_bv_only_system_finishing_clueweb(self, clueweb):
        for workload in ("pagerank", "wcc", "sssp", "khop"):
            outcomes = {
                k: run(k, workload, clueweb, 128).ok
                for k in ("BB", "BV", "G", "GL-S-R-I", "S", "FG")
            }
            assert outcomes["BV"], workload
            assert not any(v for k, v in outcomes.items() if k != "BV"), workload


class TestLargeDiameterFinding:
    """Finding 2 (§5.3/5.6/5.8): systems are inefficient on large diameters."""

    def test_most_systems_fail_wrn_traversals_at_16(self, wrn):
        failures = sum(
            0 if run(k, "sssp", wrn, 16).ok else 1 for k in GRID_SYSTEMS
        )
        assert failures >= 6

    def test_wrn_khop_fine_everywhere_it_loads(self, wrn):
        """K = 3 sidesteps the diameter: most systems complete it."""
        successes = sum(1 for k in GRID_SYSTEMS if run(k, "khop", wrn, 32).ok)
        assert successes >= 6


class TestGraphLabClusterSensitivity:
    """Finding 3 (§5.4): GraphLab is sensitive to the cluster size."""

    def test_auto_load_time_zigzags(self, uk):
        loads = {
            m: run("GL-S-A-I", "pagerank", uk, m).load_time
            for m in (16, 32, 64, 128)
        }
        # Grid at 16/64 loads fast; Oblivious at 32/128 loads slow —
        # so bigger clusters can load *slower* (the paper's point).
        assert loads[32] > loads[16]
        assert loads[32] > loads[64]
        assert loads[128] > loads[64]


class TestGiraphVsGraphLab:
    """Finding 4 (§5.5): similar under random partitioning; crossover."""

    def test_giraph_wins_small_clusters(self, twitter):
        assert (
            run("G", "pagerank", twitter, 16).total_time
            < run("GL-S-R-I", "pagerank", twitter, 16).total_time
        )

    def test_graphlab_wins_at_128(self, twitter):
        assert (
            run("GL-S-R-I", "pagerank", twitter, 128).total_time
            < run("G", "pagerank", twitter, 128).total_time
        )

    def test_similar_at_64(self, twitter):
        g = run("G", "pagerank", twitter, 64).total_time
        gl = run("GL-S-R-I", "pagerank", twitter, 64).total_time
        assert max(g, gl) < 1.6 * min(g, gl)


class TestGraphXIterations:
    """Finding 5 (§5.6): GraphX unsuitable for many-iteration workloads."""

    def test_wcc_wrn_fails_all_sizes(self, wrn):
        for m in (16, 32, 64, 128):
            assert run("S", "wcc", wrn, m).failure in (
                FailureKind.OOM, FailureKind.TIMEOUT
            )

    def test_slowest_on_twitter_pagerank(self, twitter):
        s_time = run("S", "pagerank", twitter).total_time
        for k in ("BV", "BB", "G", "GL-S-R-I", "HD", "HL", "FG"):
            other = run(k, "pagerank", twitter)
            if other.ok:
                assert s_time > other.total_time, k


class TestFrameworkOverhead:
    """Finding 6 (§5.7): Hadoop/Spark overheads carry into Giraph/GraphX."""

    def test_giraph_graphx_overhead_dominates_mpi_systems(self, twitter):
        for heavy in ("G", "S"):
            for light in ("BV", "GL-S-R-I"):
                assert (
                    run(heavy, "khop", twitter).overhead_time
                    > 5 * run(light, "khop", twitter).overhead_time
                )

    def test_hadoop_useful_when_memory_constrained(self, clueweb):
        """§5.9/5.10: out-of-core Hadoop finishes ClueWeb workloads that
        in-memory JVM systems cannot."""
        assert run("HD", "khop", clueweb, 128).ok
        assert not run("G", "khop", clueweb, 128).ok


class TestVerticaFinding:
    """Finding 7 (§5.11): Vertica is significantly slower; small memory,
    heavy I/O wait and network."""

    def test_slower_than_native_systems(self, uk):
        v = run("V", "pagerank", uk, 64)
        for k in ("BV", "GL-S-R-I", "G"):
            assert v.total_time > run(k, "pagerank", uk, 64).total_time

    def test_resource_profile(self, uk):
        v = run("V", "pagerank", uk, 64)
        gl = run("GL-S-R-I", "pagerank", uk, 64)
        assert v.peak_memory_bytes < gl.peak_memory_bytes
        assert v.extras["max_iowait_utilization"] > gl.extras["max_iowait_utilization"]
        assert v.network_bytes > gl.network_bytes


class TestApproximatePagerank:
    """§5.2: GraphLab's approximate PageRank is the only implementation
    that beats Blogel's exact one."""

    def test_approx_graphlab_beats_bv(self, twitter):
        approx = run("GL-S-R-T", "pagerank", twitter)
        bv = run("BV", "pagerank", twitter)
        assert approx.ok
        assert approx.total_time < bv.total_time

    def test_exact_graphlab_does_not(self, twitter):
        exact = run("GL-S-R-I", "pagerank", twitter)
        bv = run("BV", "pagerank", twitter)
        assert exact.total_time > bv.total_time


class TestCostFinding:
    """Finding (§5.13): PR COST 2-3; WRN reachability two orders worse."""

    @pytest.fixture(scope="class")
    def cost_rows(self):
        rows = cost_experiment(
            datasets=("twitter", "wrn"),
            workloads=("pagerank", "sssp", "wcc"),
            systems=("BV", "BB", "G", "GL-S-R-I", "GL-S-A-I"),
        )
        return {(r.dataset, r.workload): r for r in rows}

    def test_pagerank_cost_two_to_three(self, cost_rows):
        for dataset in ("twitter", "wrn"):
            cost = cost_rows[(dataset, "pagerank")].cost
            assert 1.5 < cost < 4.5

    def test_wrn_reachability_cost_two_orders_down(self, cost_rows):
        assert cost_rows[("wrn", "sssp")].cost < 0.1
        assert cost_rows[("wrn", "wcc")].cost < 0.1

    def test_best_parallel_recorded(self, cost_rows):
        assert cost_rows[("twitter", "pagerank")].best_parallel_system is not None
