"""repro.elastic: mid-run rescaling, priced per Table 1 mechanism.

Covers the two rescale events and their plans, hand-checked rescale
accounting for one system per recovery mechanism (checkpoint replay,
migrate-only re-execution, restart-from-zero), the high-water-mark
billing rule, the rescale-tolerance grid (every completed rescaled run
bit-equal to its fixed-size reference), and the elasticity benchmark
record.
"""

import json

import numpy as np
import pytest

from repro.chaos import ChaosPlan, event_from_dict
from repro.chaos.events import ScaleIn, ScaleOut
from repro.cluster import ClusterSpec
from repro.cluster.tracker import ResourceTracker
from repro.datasets import load_dataset
from repro.elastic import (
    DIRECTIONS,
    ElasticReport,
    elasticity_experiment,
    rescale_plan,
)
from repro.engines import make_engine, workload_for


def run(key, workload_name, dataset, machines=16, plan=None):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines, fault_plan=plan))


@pytest.fixture(scope="module")
def twitter():
    return load_dataset("twitter", "tiny")


@pytest.fixture(scope="module")
def clean(twitter):
    return {key: run(key, "pagerank", twitter) for key in ("BV", "HD", "V")}


# -- events and plans --------------------------------------------------------


class TestRescaleEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleOut(n_machines=0)
        with pytest.raises(ValueError):
            ScaleOut(at_superstep=0)
        with pytest.raises(ValueError):
            ScaleIn(machines=0)
        with pytest.raises(ValueError):
            ScaleIn(at_superstep=0)

    def test_round_trip_and_superstep_trigger(self):
        for event in (ScaleOut(n_machines=4, at_superstep=3),
                      ScaleIn(machines=2, at_superstep=5)):
            clone = event_from_dict(event.to_dict())
            assert clone == event
            # rescales fire on superstep boundaries, not at clock times
            assert clone.trigger == "superstep"

    def test_rescale_plan_builds_one_event(self):
        plan = rescale_plan("out", 4, 3, seed=7, checkpoint_interval=2)
        assert plan.events == (ScaleOut(n_machines=4, at_superstep=3),)
        assert plan.seed == 7 and plan.checkpoint_interval == 2
        plan = rescale_plan("in", 2, 5)
        assert plan.events == (ScaleIn(machines=2, at_superstep=5),)
        with pytest.raises(KeyError):
            rescale_plan("sideways", 1, 1)

    def test_plan_round_trips_through_the_cache_key_form(self):
        plan = rescale_plan("in", 2, 4, seed=3)
        assert ChaosPlan.from_dict(plan.to_dict()) == plan


# -- billing -----------------------------------------------------------------


def test_tracker_record_rescale_is_a_high_water_mark():
    tracker = ResourceTracker(16)
    tracker.record_rescale(20)
    assert tracker.num_machines == 20
    tracker.record_rescale(4)   # scale-in never refunds billed capacity
    assert tracker.num_machines == 20
    with pytest.raises(ValueError):
        tracker.record_rescale(0)


# -- one system per Table 1 mechanism ----------------------------------------


class TestRescaleAccounting:
    def rescaled(self, key, twitter, clean, direction="out", magnitude=4):
        reference = clean[key]
        at = max(1, reference.iterations // 2)
        plan = rescale_plan(direction, magnitude, at, checkpoint_interval=10)
        return run(key, "pagerank", twitter, plan=plan)

    def test_answers_survive_every_mechanism(self, twitter, clean):
        for key in ("BV", "HD", "V"):
            result = self.rescaled(key, twitter, clean)
            assert result.ok
            assert result.extras.get("rescales") == 1
            assert np.array_equal(result.answer, clean[key].answer)

    def test_checkpoint_replays_onto_the_new_topology(self, twitter, clean):
        # land off the checkpoint boundary so there is progress to replay
        at = max(1, clean["BV"].iterations // 2 - 1)
        assert at % 10 != 0
        result = run("BV", "pagerank", twitter,
                     plan=rescale_plan("out", 4, at, checkpoint_interval=10))
        # reload from HDFS + replay since the checkpoint: real time billed
        assert result.extras.get("recovery_seconds", 0.0) > 0.0
        assert result.extras.get("supersteps_replayed", 0.0) >= 1.0

    def test_reexecution_migrates_only_the_moved_shards(self, twitter, clean):
        result = self.rescaled("HD", twitter, clean)
        # one iteration redone, shards shipped — far below a full replay
        assert result.extras.get("supersteps_replayed") == 1.0
        assert 0.0 < result.extras.get("recovery_seconds", 0.0)

    def test_restart_bills_all_completed_progress(self, twitter, clean):
        early = run("V", "pagerank", twitter,
                    plan=rescale_plan("out", 4, 1))
        late = run("V", "pagerank", twitter,
                   plan=rescale_plan("out", 4, clean["V"].iterations - 1))
        assert early.ok and late.ok
        # restart-from-zero repeats everything done so far, so the later
        # the rescale, the bigger the bill
        assert (late.extras["recovery_seconds"]
                > early.extras["recovery_seconds"] > 0.0)

    def test_scale_out_bills_the_widest_fleet(self, twitter, clean):
        result = self.rescaled("HD", twitter, clean, magnitude=8)
        cost = result.observation.journal().cost()
        ref_cost = clean["HD"].observation.journal().cost()
        assert cost["machines"] == 24  # 16 provisioned + 8 joined
        assert cost["dollars"] > ref_cost["dollars"]

    def test_scale_in_clamps_at_one_worker(self, twitter):
        # removing more machines than exist clamps at one worker; the
        # whole graph then lands on that machine, so the memory model —
        # not a crash — ends the run (§5's OOM cell, elasticized)
        result = run("BV", "pagerank", twitter,
                     plan=rescale_plan("in", 100, 1))
        assert not result.ok
        assert str(result.failure) == "OOM"
        assert result.extras.get("rescales") == 1


# -- the rescale-tolerance grid ----------------------------------------------


class TestElasticityExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return elasticity_experiment(
            systems=("BV", "HD", "V"), dataset_size="tiny",
            timings=(0.5,), magnitudes=(2,),
        )

    def test_grid_shape_and_mechanisms(self, report):
        assert isinstance(report, ElasticReport)
        # 3 systems x 2 directions x 1 timing x 1 magnitude
        assert len(report.cells) == 6
        mechanisms = {c.system: c.mechanism for c in report.cells}
        assert mechanisms == {
            "BV": "checkpoint", "HD": "reexecution", "V": "none",
        }
        for cell in report.cells:
            assert cell.direction in DIRECTIONS
            assert 1 <= cell.at_superstep < report.clean[cell.system].iterations

    def test_every_completed_cell_is_bit_equal(self, report):
        assert report.all_exact
        assert report.mismatches() == []
        for cell in report.cells:
            assert cell.tolerated
            assert cell.rescales == 1

    def test_tolerance_and_dollars_by_mechanism(self, report):
        tolerance = report.tolerance_by_mechanism()
        assert tolerance == {
            "checkpoint": (2, 2), "reexecution": (2, 2), "none": (2, 2),
        }
        dollars = report.dollars_by_mechanism()
        assert set(dollars) == {"checkpoint", "reexecution", "none"}

    def test_restart_dominates_the_rescale_bill(self, report):
        by_mechanism = {}
        for cell in report.cells:
            by_mechanism.setdefault(cell.mechanism, []).append(
                cell.rescale_seconds)
        mean = {m: sum(v) / len(v) for m, v in by_mechanism.items()}
        assert mean["reexecution"] < mean["checkpoint"] < mean["none"]

    def test_cell_text_shows_cost_and_overhead(self, report):
        for cell in report.cells:
            text = cell.cell_text()
            assert "(" in text and text.endswith(")")

    def test_validation(self):
        with pytest.raises(KeyError):
            elasticity_experiment(systems=("BV",), directions=("sideways",))
        with pytest.raises(ValueError):
            elasticity_experiment(systems=("BV",), timings=(0.0,))
        with pytest.raises(ValueError):
            elasticity_experiment(systems=("BV",), timings=(1.0,))
        with pytest.raises(ValueError):
            elasticity_experiment(systems=("BV",), magnitudes=(0,))

    def test_deterministic_across_jobs_and_cache(self, report, tmp_path):
        again = elasticity_experiment(
            systems=("BV", "HD", "V"), dataset_size="tiny",
            timings=(0.5,), magnitudes=(2,),
            jobs=2, cache_dir=tmp_path / "cache",
        )
        assert [c.cell_text() for c in again.cells] \
            == [c.cell_text() for c in report.cells]
        assert again.all_exact


def test_extension_finding_elastic_rescale_tolerance():
    from repro.core import EXTENSION_FINDINGS

    (check,) = [c for c in EXTENSION_FINDINGS
                if c.__name__ == "_elastic_rescale_tolerance"]
    finding = check()
    assert finding.supported, finding.evidence
    assert finding.evidence["rescaled_answers_exact"] is True
    bill = finding.evidence["rescale_seconds_by_mechanism"]
    assert bill["reexecution"] < bill["checkpoint"] < bill["none"]


# -- the benchmark record ----------------------------------------------------


def test_bench_elastic_record_is_gated_and_deterministic(tmp_path):
    from repro.elastic.bench import run_bench

    output = tmp_path / "BENCH_elastic.json"
    history = tmp_path / "history.jsonl"
    record = run_bench(output=str(output), history=str(history))
    assert record["bit_equal"] is True
    assert record["completed"] == record["cells"] == 16
    written = json.loads(output.read_text())
    assert written["bench"] == "elastic"
    assert len(history.read_text().splitlines()) == 1

    seconds = record["rescale_seconds_by_mechanism"]
    assert set(seconds) == {"checkpoint", "reexecution", "none"}
    assert seconds["reexecution"] < seconds["checkpoint"] < seconds["none"]
    for counts in record["tolerance"].values():
        assert counts["tolerated"] == counts["total"]

    # simulated quantities are pure functions of the seed; only
    # host_seconds may differ between runs
    again = run_bench(output=str(tmp_path / "again.json"), history="")
    for field in ("cells", "completed", "bit_equal",
                  "rescale_seconds_by_mechanism", "dollars_per_rescale",
                  "mean_overhead_seconds", "tolerance"):
        assert again[field] == record[field]
