"""Integration: every engine computes the *correct* answers.

The simulation charges different costs per system, but the numbers each
system produces must be the true PageRank / components / distances —
checked against the plain reference implementations. The two documented
exceptions are quirks from the paper itself:

* GraphLab drops self-edges, so its PageRank differs on graphs that
  have them (§3.1.1);
* Blogel-B's two-step PageRank converges from a different
  initialization (§3.1.2).
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engines import make_engine, workload_for
from repro.workloads import reference_pagerank, reference_sssp, reference_wcc

ALL_ENGINES = (
    "BV", "BB", "G", "GL-S-R-I", "GL-S-A-I", "GL-S-R-T", "GL-A-R-T",
    "HD", "HL", "S", "FG", "V", "ST",
)
EXACT_PR_ENGINES = tuple(
    k for k in ALL_ENGINES if not k.startswith("GL") and k != "BB"
)


def run(key, workload_name, dataset, machines=16, no_timeout=False):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    spec = (
        ClusterSpec(machines, timeout_seconds=1e15)
        if no_timeout else ClusterSpec(machines)
    )
    result = engine.run(dataset, workload, spec)
    assert result.ok, f"{key} failed: {result.failure_detail}"
    return result, workload


class TestWccAnswers:
    @pytest.mark.parametrize("key", ALL_ENGINES)
    def test_components_exact(self, tiny_twitter, key):
        result, _ = run(key, "wcc", tiny_twitter)
        expected = reference_wcc(tiny_twitter.graph)
        assert np.array_equal(result.answer.astype(np.int64), expected)

    @pytest.mark.parametrize("key", ("BV", "G", "HD", "ST", "GL-S-R-I"))
    def test_components_on_road_network(self, tiny_wrn, key):
        # Paper-scale timeouts are lifted: this checks answers, not cells.
        # (Blogel-B is excluded: its Voronoi phase MPI-overflows on WRN
        # by design, §5.1 — covered in test_engines_behaviour.)
        result, _ = run(key, "wcc", tiny_wrn, machines=32, no_timeout=True)
        expected = reference_wcc(tiny_wrn.graph)
        assert np.array_equal(result.answer.astype(np.int64), expected)


class TestSsspAnswers:
    @pytest.mark.parametrize("key", ALL_ENGINES)
    def test_distances_exact(self, tiny_twitter, key):
        result, _ = run(key, "sssp", tiny_twitter)
        expected = reference_sssp(tiny_twitter.graph, tiny_twitter.sssp_source)
        assert np.array_equal(
            np.nan_to_num(result.answer, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )

    @pytest.mark.parametrize("key", ("BV", "BB", "GL-S-A-I", "S", "ST"))
    def test_distances_on_web(self, tiny_uk, key):
        # GL uses auto partitioning here: random legitimately OOMs UK on
        # 16 machines (§5.2), which is covered in test_engines_behaviour.
        result, _ = run(key, "sssp", tiny_uk)
        expected = reference_sssp(tiny_uk.graph, tiny_uk.sssp_source)
        assert np.array_equal(
            np.nan_to_num(result.answer, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )


class TestKhopAnswers:
    @pytest.mark.parametrize("key", ALL_ENGINES)
    def test_khop_exact(self, tiny_twitter, key):
        result, _ = run(key, "khop", tiny_twitter)
        expected = reference_sssp(tiny_twitter.graph, tiny_twitter.sssp_source)
        expected = expected.copy()
        expected[expected > 3] = np.inf
        assert np.array_equal(
            np.nan_to_num(result.answer, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )


class TestPagerankAnswers:
    @pytest.mark.parametrize("key", ("BV", "HD", "HL", "S", "FG", "V"))
    def test_tolerance_engines_match_reference(self, tiny_twitter, key):
        result, workload = run(key, "pagerank", tiny_twitter)
        expected = reference_pagerank(
            tiny_twitter.graph, tolerance=workload.tolerance
        )
        assert np.allclose(result.answer, expected)

    def test_giraph_fixed_iterations_match_reference(self, tiny_twitter):
        result, workload = run("G", "pagerank", tiny_twitter)
        expected = reference_pagerank(
            tiny_twitter.graph, iterations=workload.max_iterations
        )
        assert np.allclose(result.answer, expected)

    def test_single_thread_gap_20_iterations(self, tiny_twitter):
        result, _ = run("ST", "pagerank", tiny_twitter)
        expected = reference_pagerank(tiny_twitter.graph, iterations=20)
        assert np.allclose(result.answer, expected)

    def test_graphlab_self_edge_quirk(self, tiny_twitter):
        """GraphLab's ranks are wrong on graphs with self-edges (§3.1.1)."""
        assert tiny_twitter.graph.count_self_edges() > 0
        result, workload = run("GL-S-R-I", "pagerank", tiny_twitter)
        with_self = reference_pagerank(
            tiny_twitter.graph, iterations=workload.max_iterations
        )
        without_self = reference_pagerank(
            tiny_twitter.graph.without_self_edges(),
            iterations=workload.max_iterations,
        )
        assert np.allclose(result.answer, without_self)
        assert not np.allclose(result.answer, with_self)

    def test_graphlab_correct_when_no_self_edges(self, tiny_wrn):
        """On the road network (no self-edges) GraphLab is exact."""
        assert tiny_wrn.graph.count_self_edges() == 0
        result, workload = run("GL-S-R-I", "pagerank", tiny_wrn, machines=64)
        expected = reference_pagerank(
            tiny_wrn.graph, iterations=workload.max_iterations
        )
        assert np.allclose(result.answer, expected)

    def test_blogel_b_two_step_converges_near_fixpoint(self, tiny_twitter):
        """BB's two-step PageRank lands near (not exactly at) the fixpoint."""
        result, workload = run("BB", "pagerank", tiny_twitter)
        expected = reference_pagerank(tiny_twitter.graph, tolerance=workload.tolerance)
        rel = np.abs(result.answer - expected) / np.maximum(expected, 1e-9)
        assert np.median(rel) < 0.05


class TestResultMetadata:
    @pytest.mark.parametrize("key", ("BV", "G", "HD", "S"))
    def test_phases_accounted(self, tiny_twitter, key):
        result, _ = run(key, "khop", tiny_twitter)
        assert result.load_time >= 0
        assert result.execute_time > 0
        assert result.total_time >= result.execute_time
        assert result.iterations == 3

    def test_network_and_memory_recorded(self, tiny_twitter):
        result, _ = run("G", "pagerank", tiny_twitter)
        assert result.network_bytes > 0
        assert result.peak_memory_bytes > 0
        assert result.total_memory_bytes >= result.peak_memory_bytes

    def test_cell_text(self, tiny_twitter):
        result, _ = run("BV", "khop", tiny_twitter)
        assert result.cell() == f"{result.total_time:.0f}"
