"""Tests for the cluster simulator: specs, memory, network, HDFS, tracker."""

import math

import pytest

from repro.cluster import (
    CLUSTER_SIZES,
    COST_MACHINE,
    GB,
    MB,
    Cluster,
    ClusterSpec,
    FailureKind,
    HdfsModel,
    MemoryAccountant,
    NetworkModel,
    R3_XLARGE,
    ResourceTracker,
    SimClock,
    SimulatedOOM,
    SimulatedTimeout,
)


class TestSpecs:
    def test_r3_xlarge_matches_paper(self):
        assert R3_XLARGE.cores == 4
        assert R3_XLARGE.memory_gb == pytest.approx(30.5)

    def test_cost_machine(self):
        assert COST_MACHINE.memory_bytes == 512 * GB
        assert COST_MACHINE.cores == 1

    def test_cluster_sizes(self):
        assert CLUSTER_SIZES == (16, 32, 64, 128)

    def test_workers_exclude_master(self):
        assert ClusterSpec(16).num_workers == 15

    def test_totals(self):
        spec = ClusterSpec(16)
        assert spec.total_cores == 60
        assert spec.total_memory_bytes == 15 * R3_XLARGE.memory_bytes

    def test_timeout_default_24h(self):
        assert ClusterSpec(16).timeout_seconds == 24 * 3600

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(1)

    def test_repr(self):
        assert "16x" in repr(ClusterSpec(16))


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        clock.advance(1.0)
        assert clock.now == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)


class TestMemoryAccountant:
    def make(self, machines=4):
        return MemoryAccountant(machines, R3_XLARGE)

    def test_allocate_and_free(self):
        mem = self.make()
        mem.allocate(0, 10 * GB, "graph")
        assert mem.used_bytes(0) == 10 * GB
        mem.free(0, 10 * GB, "graph")
        assert mem.used_bytes(0) == 0

    def test_oom_over_capacity(self):
        mem = self.make()
        with pytest.raises(SimulatedOOM) as exc:
            mem.allocate(1, 31 * GB, "graph")
        assert exc.value.machine == 1
        assert exc.value.kind is FailureKind.OOM

    def test_peak_tracks_maximum(self):
        mem = self.make()
        mem.allocate(0, 10 * GB, "a")
        mem.free(0, 10 * GB, "a")
        mem.allocate(0, 4 * GB, "b")
        assert mem.peak_bytes(0) == 10 * GB

    def test_total_peak_sums_machines(self):
        mem = self.make(2)
        mem.allocate(0, 1 * GB, "x")
        mem.allocate(1, 2 * GB, "x")
        assert mem.total_peak_bytes() == 3 * GB

    def test_allocate_even_skew(self):
        mem = self.make(4)
        mem.allocate_even(8 * GB, "x", skew=0.5)
        assert mem.used_bytes(0) == pytest.approx(3 * GB)
        assert sum(mem.used_bytes(i) for i in range(4)) == pytest.approx(8 * GB)

    def test_allocate_even_oom_on_heavy_machine(self):
        mem = self.make(4)
        with pytest.raises(SimulatedOOM):
            mem.allocate_even(110 * GB, "x", skew=0.2)

    def test_free_label(self):
        mem = self.make(2)
        mem.allocate_even(4 * GB, "msgs")
        mem.free_label("msgs")
        assert mem.used_bytes(0) == 0
        assert mem.used_bytes(1) == 0

    def test_free_never_negative(self):
        mem = self.make()
        mem.allocate(0, GB, "x")
        mem.free(0, 5 * GB, "x")
        assert mem.used_bytes(0) == 0

    def test_free_all(self):
        mem = self.make(3)
        mem.allocate_even(6 * GB, "a")
        mem.free_all()
        assert all(mem.used_bytes(i) == 0 for i in range(3))

    def test_label_bytes(self):
        mem = self.make()
        mem.allocate(0, GB, "graph")
        mem.allocate(0, GB, "graph")
        assert mem.label_bytes(0, "graph") == 2 * GB

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            self.make().allocate(0, -5, "x")


class TestNetworkModel:
    def make(self, machines=16):
        return NetworkModel(machines, R3_XLARGE)

    def test_point_to_point(self):
        net = self.make()
        t = net.point_to_point_time(300 * MB)
        assert t == pytest.approx(net.base_latency + 1.0)

    def test_shuffle_bottleneck(self):
        net = self.make(16)
        t = net.shuffle_time(16 * 300 * MB, local_fraction=0.0)
        assert t == pytest.approx(net.base_latency + 1.0)

    def test_shuffle_skew_slows(self):
        net = self.make()
        assert net.shuffle_time(GB, skew=1.0) > net.shuffle_time(GB, skew=0.0)

    def test_shuffle_counts_wire_bytes(self):
        net = self.make(4)
        net.shuffle_time(100.0, local_fraction=0.25)
        assert net.total_bytes == pytest.approx(75.0)

    def test_single_machine_shuffle_free(self):
        net = self.make(1)
        assert net.shuffle_time(GB) == 0.0

    def test_gather_master_bottleneck(self):
        net = self.make(16)
        t = net.gather_time(300 * MB)
        assert t == pytest.approx(net.base_latency + 15.0)

    def test_broadcast_log_rounds(self):
        net = self.make(16)
        t = net.broadcast_time(300 * MB)
        assert t == pytest.approx(4 * (net.base_latency + 1.0))

    def test_barrier_latency_only(self):
        net = self.make(16)
        assert net.barrier_time() == pytest.approx(4 * net.base_latency)

    def test_barrier_grows_with_machines(self):
        assert self.make(128).barrier_time() > self.make(4).barrier_time()


class TestHdfsModel:
    def make(self, machines=15):
        return HdfsModel(machines, R3_XLARGE)

    def test_num_blocks(self):
        hdfs = self.make()
        assert hdfs.num_blocks(64 * MB) == 1
        assert hdfs.num_blocks(65 * MB) == 2
        assert hdfs.num_blocks(0) == 1

    def test_read_counts_bytes(self):
        hdfs = self.make()
        hdfs.read_time(GB, reader_threads=8)
        assert hdfs.bytes_read == GB

    def test_write_pays_replication(self):
        hdfs = self.make()
        hdfs.write_time(GB, writer_threads=8)
        assert hdfs.bytes_written == 3 * GB

    def test_more_threads_faster(self):
        hdfs = self.make()
        slow = hdfs.read_time(GB, reader_threads=1)
        fast = hdfs.read_time(GB, reader_threads=32)
        assert fast < slow

    def test_thread_cap_at_cluster_cores(self):
        hdfs = self.make(2)
        capped = hdfs.read_time(GB, reader_threads=10_000)
        assert capped == pytest.approx(hdfs.read_time(GB, reader_threads=8))

    def test_zero_bytes_free(self):
        hdfs = self.make()
        assert hdfs.read_time(0, 4) == 0.0
        assert hdfs.write_time(0, 4) == 0.0


class TestResourceTracker:
    def test_memory_series_per_machine(self):
        t = ResourceTracker(2)
        t.record_memory(0.0, 0, 100)
        t.record_memory(1.0, 0, 200)
        t.record_memory(0.5, 1, 50)
        assert t.memory_series(0) == [(0.0, 100), (1.0, 200)]
        assert t.peak_memory_bytes() == 200

    def test_total_memory_sums_peaks(self):
        t = ResourceTracker(2)
        t.record_memory(0.0, 0, 100)
        t.record_memory(1.0, 0, 80)
        t.record_memory(0.0, 1, 40)
        assert t.total_memory_bytes() == 140

    def test_cpu_totals(self):
        t = ResourceTracker(1)
        t.record_cpu(1.0, 0, user=2.0, system=1.0, iowait=0.5, idle=0.5)
        totals = t.cpu_totals()
        assert totals["user"] == 2.0
        assert totals["iowait"] == 0.5

    def test_max_cpu_utilization(self):
        t = ResourceTracker(1)
        t.record_cpu(1.0, 0, user=3.0, system=0.0, iowait=1.0, idle=0.0)
        util = t.max_cpu_utilization()
        assert util["user"] == pytest.approx(0.75)
        assert util["iowait"] == pytest.approx(0.25)

    def test_network_totals(self):
        t = ResourceTracker(1)
        t.record_network(sent=10, received=5)
        assert t.network_total_bytes() == 15

    def test_empty_tracker(self):
        t = ResourceTracker(1)
        assert t.peak_memory_bytes() == 0
        assert t.max_cpu_utilization() == {"user": 0.0, "iowait": 0.0}


class TestCluster:
    def test_default_workers(self):
        assert Cluster(ClusterSpec(16)).num_workers == 15

    def test_mpi_workers_override(self):
        assert Cluster(ClusterSpec(16), num_workers=16).num_workers == 16

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            Cluster(ClusterSpec(16), num_workers=17)

    def test_timeout_enforced(self):
        cluster = Cluster(ClusterSpec(16, timeout_seconds=10.0))
        with pytest.raises(SimulatedTimeout):
            cluster.advance(11.0)

    def test_parallel_compute_slowest_machine(self):
        cluster = Cluster(ClusterSpec(4))
        dt = cluster.parallel_compute([1.0, 3.0, 2.0])
        assert dt == 3.0
        assert cluster.now == 3.0

    def test_uniform_compute_divides_by_cores(self):
        cluster = Cluster(ClusterSpec(16))
        cluster.uniform_compute(60.0)   # 60 core-seconds over 60 cores
        assert cluster.now == pytest.approx(1.0)

    def test_uniform_compute_core_limit(self):
        c_all = Cluster(ClusterSpec(16))
        c_half = Cluster(ClusterSpec(16))
        c_all.uniform_compute(60.0)
        c_half.uniform_compute(60.0, cores_per_machine=2)
        assert c_half.now == pytest.approx(2 * c_all.now)

    def test_shuffle_advances_and_records(self):
        cluster = Cluster(ClusterSpec(16))
        cluster.shuffle(GB)
        assert cluster.now > 0
        assert cluster.tracker.network_total_bytes() > 0

    def test_hdfs_read_records_disk(self):
        cluster = Cluster(ClusterSpec(16))
        cluster.hdfs_read(GB)
        assert cluster.tracker.disk_bytes_read == GB

    def test_local_disk_write(self):
        cluster = Cluster(ClusterSpec(16))
        cluster.local_disk_io(GB, write=True)
        assert cluster.tracker.disk_bytes_written == GB

    def test_sample_memory(self):
        cluster = Cluster(ClusterSpec(4))
        cluster.memory.allocate(0, GB, "x")
        cluster.sample_memory()
        assert cluster.tracker.peak_memory_bytes() == GB

    def test_compute_skew_slows_step(self):
        fast = Cluster(ClusterSpec(16))
        slow = Cluster(ClusterSpec(16))
        fast.uniform_compute(60.0, skew=0.0)
        slow.uniform_compute(60.0, skew=0.5)
        assert slow.now == pytest.approx(1.5 * fast.now)
