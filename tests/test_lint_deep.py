"""repro.lint.deep: the whole-program pass builds a faithful model of the
tree (modules, MROs, call graph), each deep rule fires on a seeded
mutation of the real engines, the pass is fast and byte-deterministic,
and — the contract the subpackage exists for — src/repro itself is
deep-clean."""

import json
import os
import re
import shutil
import subprocess
import sys
import textwrap
import time

from repro.lint.deep import (
    DEEP_RULES,
    DEEP_RULES_BY_CODE,
    build_program,
    deep_lint_paths,
)
from repro.lint.deep.baseline import (
    filter_baselined,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.deep.program import module_name_for
from repro.lint.rules.base import Violation
from repro.lint.source import SourceModule

SRC_REPRO = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
REPO_SRC = os.path.abspath(os.path.join(SRC_REPRO, ".."))


def rules(code):
    return [DEEP_RULES_BY_CODE[code]]


def codes(violations):
    return [v.code for v in violations]


# -- registry ---------------------------------------------------------------

def test_deep_registry_covers_rpl011_through_rpl014():
    assert sorted(DEEP_RULES_BY_CODE) == [
        f"RPL{i:03d}" for i in range(11, 15)
    ]
    assert len(DEEP_RULES) == 4
    for rule in DEEP_RULES:
        assert rule.name and rule.rationale


# -- program model ----------------------------------------------------------

def test_module_name_for_walks_packages():
    assert module_name_for(
        os.path.join(SRC_REPRO, "engines", "bsp.py")
    ) == "repro.engines.bsp"
    assert module_name_for(
        os.path.join(SRC_REPRO, "lint", "__init__.py")
    ) == "repro.lint"


def _program_from(tmp_path, files):
    sources = {}
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        sources[str(path)] = SourceModule.parse(
            textwrap.dedent(text), path=str(path)
        )
    return build_program(sources)


def test_mro_linearizes_mixin_diamonds(tmp_path):
    program = _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/base.py": """
            class Engine:
                def run(self):
                    return self.step()

                def step(self):
                    return "base"
            """,
        "pkg/mix.py": """
            class LoopMixin:
                def step(self):
                    return "mixin"
            """,
        "pkg/impl.py": """
            from .base import Engine
            from .mix import LoopMixin

            class FastEngine(LoopMixin, Engine):
                pass
            """,
    })
    fast = program.classes["pkg.impl.FastEngine"]
    names = [c.name for c in program.mro(fast)]
    assert names == ["FastEngine", "LoopMixin", "Engine"]
    # step resolves through the mixin, run through the root
    assert program.resolve_method(fast, "step").qualname == (
        "pkg.mix.LoopMixin.step"
    )
    assert program.resolve_method(fast, "run").qualname == (
        "pkg.base.Engine.run"
    )


def test_super_resolution_skips_past_the_defining_class(tmp_path):
    program = _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/base.py": """
            class Engine:
                def _load(self):
                    return "root"
            """,
        "pkg/mid.py": """
            from .base import Engine

            class MidEngine(Engine):
                def _load(self):
                    return super()._load()
            """,
        "pkg/leaf.py": """
            from .mid import MidEngine

            class LeafEngine(MidEngine):
                pass
            """,
    })
    leaf = program.classes["pkg.leaf.LeafEngine"]
    mid = program.classes["pkg.mid.MidEngine"]
    resolved = program.resolve_super_method(leaf, mid, "_load")
    assert resolved.qualname == "pkg.base.Engine._load"


# -- RPL011 on a fixture package (builtin model table fallback) -------------

def test_rpl011_flags_undeclared_and_disallowed_primitives(tmp_path):
    program_dir = tmp_path / "eng"
    (program_dir / "__init__.py").parent.mkdir()
    (program_dir / "__init__.py").write_text("")
    (program_dir / "base.py").write_text(textwrap.dedent("""
        class Engine:
            trace_model = "bsp"

            def run(self, cluster):
                self._load(cluster)
                self._execute(cluster)
        """))
    (program_dir / "toy.py").write_text(textwrap.dedent("""
        from .base import Engine

        class ToyEngine(Engine):
            trace_model = "single-thread"
            model_primitives = frozenset({"advance"})

            def _load(self, cluster):
                cluster.advance(1.0)

            def _execute(self, cluster):
                self._charge(cluster)

            def _charge(self, cluster):
                cluster.shuffle(10.0)

        class BareEngine(Engine):
            def _load(self, cluster):
                pass

            def _execute(self, cluster):
                pass

        class GreedyEngine(Engine):
            trace_model = "single-thread"
            model_primitives = frozenset({"advance", "shuffle"})

            def _load(self, cluster):
                pass

            def _execute(self, cluster):
                pass
        """))
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL011"))
    messages = {v.message for v in found}
    assert codes(found) == ["RPL011"] * 3
    # ToyEngine: shuffle reached two hops from run but not declared
    assert any(
        "cluster.shuffle()" in m and "ToyEngine" in m for m in messages
    )
    # BareEngine: no declaration at all
    assert any(
        "BareEngine" in m and "model_primitives" in m for m in messages
    )
    # GreedyEngine: declares a primitive its model forbids
    assert any(
        "GreedyEngine" in m and "shuffle" in m and "does not allow" in m
        for m in messages
    )


# -- seeded mutations of the real tree: each rule fires ---------------------

def _mutated_tree(tmp_path, relpath, mutate):
    """Copy src/repro and apply ``mutate`` to one file's text."""
    root = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, root)
    target = root / relpath
    target.write_text(mutate(target.read_text()))
    return str(tmp_path)


def test_rpl011_mutation_forbidden_primitive(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("engines", "giraph.py"),
        lambda s: s.replace(
            "cluster.sample_memory()",
            "cluster.broadcast(1.0)\n        cluster.sample_memory()",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL011"))
    assert codes(found) == ["RPL011"]
    assert "cluster.broadcast()" in found[0].message
    assert "GiraphEngine" in found[0].message


def test_rpl012_mutation_unordered_iteration_leak(tmp_path):
    def mutate(s):
        s = s.replace(
            "def _load(",
            "def _leak(self):\n"
            "        out = []\n"
            "        for v in {1, 2}:\n"
            "            out.append(v)\n"
            "        return out\n\n"
            "    def _load(",
            1,
        )
        return s.replace(
            "cluster.hdfs_read(",
            "self._leak()\n        cluster.hdfs_read(",
            1,
        )

    tree = _mutated_tree(
        tmp_path, os.path.join("engines", "gelly.py"), mutate
    )
    found = deep_lint_paths([tree], rules=rules("RPL012"))
    assert codes(found) == ["RPL012"]
    assert "set literal" in found[0].message


def test_rpl013_mutation_unwrapped_tracker_record(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("engines", "graphlab.py"),
        lambda s: s.replace(
            "cluster.sample_memory()",
            "cluster.tracker.record_disk(read=1.0)\n"
            "        cluster.sample_memory()",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL013"))
    assert codes(found) == ["RPL013"]
    assert "record_disk" in found[0].message
    assert "span" in found[0].message


def test_rpl014_mutation_stray_broad_except(tmp_path):
    def mutate(s):
        match = re.search(r"( +)(cluster\.shuffle\([^\n]+\))", s)
        indent, call = match.group(1), match.group(2)
        wrapped = (
            f"{indent}try:\n"
            f"{indent}    {call}\n"
            f"{indent}except Exception:\n"
            f"{indent}    pass"
        )
        return s[: match.start()] + wrapped + s[match.end():]

    tree = _mutated_tree(
        tmp_path, os.path.join("engines", "spark.py"), mutate
    )
    found = deep_lint_paths([tree], rules=rules("RPL014"))
    assert codes(found) == ["RPL014"]
    assert "broad except" in found[0].message
    assert "fault" in found[0].message


# -- the meta-test: the tree honours its own deep contracts -----------------

def test_src_repro_is_deep_clean_and_fast():
    start = time.perf_counter()
    violations = deep_lint_paths([SRC_REPRO])
    elapsed = time.perf_counter() - start
    assert violations == [], "\n".join(v.format() for v in violations)
    assert elapsed < 10.0, f"deep pass took {elapsed:.1f}s (budget: 10s)"


def test_committed_baseline_is_empty():
    path = os.path.join(os.path.dirname(__file__), "..", "lint-baseline.json")
    assert load_baseline(path) == []


def test_deep_report_is_byte_identical_across_hash_seeds(tmp_path):
    outputs = []
    for seed in ("1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--deep",
             "--format", "json", SRC_REPRO],
            capture_output=True,
            env=env,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert json.loads(outputs[0])["count"] == 0


# -- baseline ---------------------------------------------------------------

def test_baseline_roundtrip_ignores_line_numbers(tmp_path):
    path = str(tmp_path / "baseline.json")
    vold = Violation(
        code="RPL013", message="m", path="src\\repro\\x.py", line=10, col=0
    )
    assert write_baseline(path, [vold]) == 1
    baseline = load_baseline(path)
    # same finding on a different line, posix separators: still filtered
    vnew = Violation(
        code="RPL013", message="m", path="src/repro/x.py", line=99, col=4
    )
    assert filter_baselined([vnew], baseline) == []
    other = Violation(
        code="RPL013", message="other", path="src/repro/x.py", line=99, col=4
    )
    assert filter_baselined([other], baseline) == [other]
    assert fingerprint(vold) == fingerprint(vnew)


def test_baseline_loader_tolerates_garbage(tmp_path):
    missing = str(tmp_path / "nope.json")
    assert load_baseline(missing) == []
    corrupt = tmp_path / "bad.json"
    corrupt.write_text("{not json")
    assert load_baseline(str(corrupt)) == []
    wrong_version = tmp_path / "v0.json"
    wrong_version.write_text('{"version": 0, "fingerprints": [["a","b","c"]]}')
    assert load_baseline(str(wrong_version)) == []


# -- noqa across passes -----------------------------------------------------

def test_noqa_line_covered_by_shallow_and_deep_rule(tmp_path):
    obs_dir = tmp_path / "obs"
    obs_dir.mkdir()
    (obs_dir / "__init__.py").write_text("")
    body = textwrap.dedent("""
        def total(values, out):
            for v in {1, 2}:<NOQA>
                out.append(v)
            return out
        """)
    target = obs_dir / "helpers.py"

    from repro.lint.cli import main as lint_main

    target.write_text(body.replace("<NOQA>", ""))
    args = [str(tmp_path), "--deep", "--select", "RPL008,RPL012",
            "--format", "json"]
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        assert lint_main(args) == 1
    payload = json.loads(buf.getvalue())
    hit_codes = {v["code"] for v in payload["violations"]}
    assert hit_codes == {"RPL008", "RPL012"}
    lines = {v["line"] for v in payload["violations"]}
    assert len(lines) == 1  # both passes anchored on the same loop line

    target.write_text(body.replace("<NOQA>", "  # noqa: RPL008, RPL012"))
    buf = io.StringIO()
    with redirect_stdout(buf):
        assert lint_main(args) == 0

    # suppressing only the shallow code leaves the deep finding alive
    target.write_text(body.replace("<NOQA>", "  # noqa: RPL008"))
    buf = io.StringIO()
    with redirect_stdout(buf):
        assert lint_main(args) == 1
    payload = json.loads(buf.getvalue())
    assert {v["code"] for v in payload["violations"]} == {"RPL012"}
