"""repro.lint.deep: the whole-program pass builds a faithful model of the
tree (modules, MROs, call graph), each deep rule fires on a seeded
mutation of the real engines, the pass is fast and byte-deterministic,
and — the contract the subpackage exists for — src/repro itself is
deep-clean."""

import json
import os
import re
import shutil
import subprocess
import sys
import textwrap
import time

from repro.lint import lint_paths
from repro.lint.deep import (
    DEEP_RULES,
    DEEP_RULES_BY_CODE,
    build_program,
    deep_lint_paths,
)
from repro.lint.deep.baseline import (
    filter_baselined,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.deep.program import module_name_for
from repro.lint.rules.base import Violation
from repro.lint.source import SourceModule

SRC_REPRO = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
REPO_SRC = os.path.abspath(os.path.join(SRC_REPRO, ".."))


def rules(code):
    return [DEEP_RULES_BY_CODE[code]]


def codes(violations):
    return [v.code for v in violations]


# -- registry ---------------------------------------------------------------

def test_deep_registry_covers_rpl011_through_rpl024():
    assert sorted(DEEP_RULES_BY_CODE) == [
        f"RPL{i:03d}" for i in range(11, 25)
    ]
    assert len(DEEP_RULES) == 14
    for rule in DEEP_RULES:
        assert rule.name and rule.rationale


# -- program model ----------------------------------------------------------

def test_module_name_for_walks_packages():
    assert module_name_for(
        os.path.join(SRC_REPRO, "engines", "bsp.py")
    ) == "repro.engines.bsp"
    assert module_name_for(
        os.path.join(SRC_REPRO, "lint", "__init__.py")
    ) == "repro.lint"


def _program_from(tmp_path, files):
    sources = {}
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        sources[str(path)] = SourceModule.parse(
            textwrap.dedent(text), path=str(path)
        )
    return build_program(sources)


def test_mro_linearizes_mixin_diamonds(tmp_path):
    program = _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/base.py": """
            class Engine:
                def run(self):
                    return self.step()

                def step(self):
                    return "base"
            """,
        "pkg/mix.py": """
            class LoopMixin:
                def step(self):
                    return "mixin"
            """,
        "pkg/impl.py": """
            from .base import Engine
            from .mix import LoopMixin

            class FastEngine(LoopMixin, Engine):
                pass
            """,
    })
    fast = program.classes["pkg.impl.FastEngine"]
    names = [c.name for c in program.mro(fast)]
    assert names == ["FastEngine", "LoopMixin", "Engine"]
    # step resolves through the mixin, run through the root
    assert program.resolve_method(fast, "step").qualname == (
        "pkg.mix.LoopMixin.step"
    )
    assert program.resolve_method(fast, "run").qualname == (
        "pkg.base.Engine.run"
    )


def test_super_resolution_skips_past_the_defining_class(tmp_path):
    program = _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/base.py": """
            class Engine:
                def _load(self):
                    return "root"
            """,
        "pkg/mid.py": """
            from .base import Engine

            class MidEngine(Engine):
                def _load(self):
                    return super()._load()
            """,
        "pkg/leaf.py": """
            from .mid import MidEngine

            class LeafEngine(MidEngine):
                pass
            """,
    })
    leaf = program.classes["pkg.leaf.LeafEngine"]
    mid = program.classes["pkg.mid.MidEngine"]
    resolved = program.resolve_super_method(leaf, mid, "_load")
    assert resolved.qualname == "pkg.base.Engine._load"


# -- RPL011 on a fixture package (builtin model table fallback) -------------

def test_rpl011_flags_undeclared_and_disallowed_primitives(tmp_path):
    program_dir = tmp_path / "eng"
    (program_dir / "__init__.py").parent.mkdir()
    (program_dir / "__init__.py").write_text("")
    (program_dir / "base.py").write_text(textwrap.dedent("""
        class Engine:
            trace_model = "bsp"

            def run(self, cluster):
                self._load(cluster)
                self._execute(cluster)
        """))
    (program_dir / "toy.py").write_text(textwrap.dedent("""
        from .base import Engine

        class ToyEngine(Engine):
            trace_model = "single-thread"
            model_primitives = frozenset({"advance"})

            def _load(self, cluster):
                cluster.advance(1.0)

            def _execute(self, cluster):
                self._charge(cluster)

            def _charge(self, cluster):
                cluster.shuffle(10.0)

        class BareEngine(Engine):
            def _load(self, cluster):
                pass

            def _execute(self, cluster):
                pass

        class GreedyEngine(Engine):
            trace_model = "single-thread"
            model_primitives = frozenset({"advance", "shuffle"})

            def _load(self, cluster):
                pass

            def _execute(self, cluster):
                pass
        """))
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL011"))
    messages = {v.message for v in found}
    assert codes(found) == ["RPL011"] * 3
    # ToyEngine: shuffle reached two hops from run but not declared
    assert any(
        "cluster.shuffle()" in m and "ToyEngine" in m for m in messages
    )
    # BareEngine: no declaration at all
    assert any(
        "BareEngine" in m and "model_primitives" in m for m in messages
    )
    # GreedyEngine: declares a primitive its model forbids
    assert any(
        "GreedyEngine" in m and "shuffle" in m and "does not allow" in m
        for m in messages
    )


# -- RPL015-RPL020 on fixture packages: one positive + one negative each ----

def test_rpl015_flags_large_pool_arguments(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/exec/__init__.py": "",
        "pkg/exec/runner.py": """
            def run_one(dataset, t):
                return t

            def fan_out(pool, dataset, tasks):
                for t in tasks:
                    pool.submit(run_one, dataset, t)

            def fan_out_by_name(pool, tasks):
                for t in tasks:
                    pool.submit(run_one, t.payload())
            """,
    })
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL015"))
    assert codes(found) == ["RPL015"]
    assert "'dataset' names a large object" in found[0].message
    # the by-name dispatch two lines down stays clean
    assert "payload" not in found[0].message


def test_rpl015_sees_through_partial_and_lambda(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/exec/__init__.py": "",
        "pkg/exec/wrap.py": """
            from functools import partial

            def fan_out(pool, graph, tasks):
                for t in tasks:
                    pool.submit(partial(run_one, graph), t)

            def fan_out_closure(pool, spec):
                pool.map(lambda t: run_one(spec, t), range(4))

            def run_one(g, t):
                return t
            """,
    })
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL015"))
    assert codes(found) == ["RPL015", "RPL015"]
    assert any("'graph'" in v.message for v in found)
    assert any("'spec'" in v.message for v in found)


def test_rpl015_ignores_pools_outside_exec(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/tools.py": """
            def fan_out(pool, dataset, tasks):
                for t in tasks:
                    pool.submit(t, dataset)
            """,
    })
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL015")) == []


def test_rpl016_flags_unmemoized_digest_in_loop(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/digests.py": """
            import hashlib

            def fingerprint(blob):
                d = hashlib.sha256()
                d.update(blob.tobytes())
                return d.hexdigest()

            def plan(blobs):
                keys = []
                for b in blobs:
                    keys.append(fingerprint(b))
                return keys

            def one_key(blob):
                return fingerprint(blob)
            """,
    })
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL016"))
    assert codes(found) == ["RPL016"]
    assert "fingerprint" in found[0].message
    assert "lru_cache" in found[0].message


def test_rpl016_memoized_digest_is_clean(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/digests.py": """
            import hashlib
            from functools import lru_cache

            @lru_cache(maxsize=None)
            def fingerprint(blob):
                d = hashlib.sha256()
                d.update(blob.tobytes())
                return d.hexdigest()

            def plan(blobs):
                return [fingerprint(b) for b in blobs]

            def stream(paths):
                d = hashlib.sha256()
                for p in paths:
                    d.update(p.read_bytes())
                return d.hexdigest()
            """,
    })
    # memoized call sites and the streaming idiom (constructor outside
    # the loop, incremental update inside) are both sanctioned
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL016")) == []


def test_rpl016_flags_direct_bulk_hash_in_loop(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/inline.py": """
            import hashlib

            def retry_keys(blob, attempts):
                out = []
                for attempt in range(attempts):
                    out.append(hashlib.sha256(blob.tobytes()).hexdigest())
                return out

            def per_item_keys(blobs):
                # hashing the loop variable is per-item work, not waste
                out = []
                for b in blobs:
                    out.append(hashlib.sha256(b.tobytes()).hexdigest())
                return out
            """,
    })
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL016"))
    assert codes(found) == ["RPL016"]
    assert found[0].line == 7
    assert "hoist or memoize" in found[0].message


_RPL017_BASE = {
    "pkg/__init__.py": "",
    "pkg/base.py": """
        class Engine:
            def run(self):
                return self.run_superstep_loop()
        """,
}


def test_rpl017_flags_hot_loop_waste(tmp_path):
    files = dict(_RPL017_BASE)
    files["pkg/toy.py"] = """
        from .base import Engine

        class ToyEngine(Engine):
            def run_superstep_loop(self):
                log = ""
                while self.step():
                    opts = {"mode": "sync"}
                    log += "tick"
                    lat = self.cluster.network.latency
                    model = getattr(self, "trace_model", "bsp")
                return log, opts, lat, model
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL017"))
    assert codes(found) == ["RPL017"] * 4
    messages = " ".join(v.message for v in found)
    assert "string +=" in messages
    assert "constant container" in messages
    assert "self.cluster.network.latency" in messages
    assert "getattr" in messages


def test_rpl017_loop_dependent_work_is_clean(tmp_path):
    files = dict(_RPL017_BASE)
    files["pkg/toy.py"] = """
        from .base import Engine

        class ToyEngine(Engine):
            def run_superstep_loop(self):
                rows = []
                for it in self.items():
                    row = {"value": it.value}
                    rows.append(row)
                    name = it.stats.timing.total
                    flag = getattr(it, "converged", False)
                return rows, name, flag
        """
    _program_from(tmp_path, files)
    # per-iteration values, loop-variable-rooted chains, and a fresh
    # accumulator are all legitimate — nothing is hoistable
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL017")) == []


def test_rpl017_ignores_loops_outside_the_superstep_cone(tmp_path):
    files = dict(_RPL017_BASE)
    files["pkg/toy.py"] = """
        from .base import Engine

        class ToyEngine(Engine):
            def run_superstep_loop(self):
                return 0

        def report(lines):
            out = ""
            for line in lines:
                out += "x"
            return out
        """
    _program_from(tmp_path, files)
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL017")) == []


_RPL018_COMMON = {
    "pkg/__init__.py": "",
    "pkg/core/__init__.py": "",
    "pkg/engines/__init__.py": "",
    "pkg/workloads/__init__.py": "",
    "pkg/exec/__init__.py": "",
    "pkg/engines/base.py": """
        class Engine:
            def run(self):
                return None
        """,
    "pkg/engines/toy.py": """
        from .base import Engine
        from ..workloads.foo import step

        class ToyEngine(Engine):
            def run(self):
                return step()
        """,
    "pkg/workloads/foo.py": """
        def step():
            return 1
        """,
    "pkg/core/runner.py": """
        from ..engines.toy import ToyEngine

        def run_cell(system, workload, dataset, cluster_size, chaos=None):
            return ToyEngine().run()
        """,
}


def _rpl018_cache_module(packages, keys):
    entries = "\n".join(f'        "{k}": {v},' for k, v in keys.items())
    listed = ", ".join(f'"{p}"' for p in packages)
    return (
        "import hashlib\n"
        "\n"
        f"_RESULT_PACKAGES = ({listed},)\n"
        "\n"
        "def cell_key(task, dataset):\n"
        "    payload = {\n"
        f"{entries}\n"
        "    }\n"
        "    return hashlib.sha256(repr(payload).encode()).hexdigest()\n"
    )


def test_rpl018_flags_missing_package_and_missing_key(tmp_path):
    files = dict(_RPL018_COMMON)
    # "workloads" is reachable from the engine but not digested, and
    # run_cell's chaos parameter never reaches the key dict
    files["pkg/exec/cache.py"] = _rpl018_cache_module(
        ["core", "engines"],
        {
            "system": "task.system", "workload": "task.workload",
            "dataset": "dataset", "cluster_size": "task.cluster_size",
        },
    )
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL018"))
    assert codes(found) == ["RPL018", "RPL018"]
    messages = " ".join(v.message for v in found)
    assert "'workloads'" in messages and "_RESULT_PACKAGES" in messages
    assert "'chaos'" in messages and "stale" in messages


def test_rpl018_complete_key_is_clean(tmp_path):
    files = dict(_RPL018_COMMON)
    files["pkg/exec/cache.py"] = _rpl018_cache_module(
        ["core", "engines", "workloads"],
        {
            "system": "task.system", "workload": "task.workload",
            "dataset": "dataset", "cluster_size": "task.cluster_size",
            "chaos": "task.chaos",
        },
    )
    _program_from(tmp_path, files)
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL018")) == []


def test_rpl019_flags_parent_written_worker_read_state(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/exec/__init__.py": "",
        "pkg/exec/workers.py": """
            __all__ = ["work"]

            _MEMO = {}

            def work(task):
                return _MEMO.get(task)

            def prime(task, value):
                _MEMO[task] = value
            """,
    })
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL019"))
    assert codes(found) == ["RPL019"]
    assert "'_MEMO'" in found[0].message
    assert "outside the worker cone" in found[0].message


def test_rpl019_per_process_memo_is_clean(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/exec/__init__.py": "",
        "pkg/exec/workers.py": """
            __all__ = ["work"]

            _LOCAL = {}
            _LIMITS = {"max": 4}

            def work(task):
                if task not in _LOCAL:
                    _LOCAL[task] = task * 2
                return _LOCAL[task]

            def parent_report(tasks):
                return len(tasks)
            """,
    })
    # _LOCAL is filled and read inside the cone (re-derived per
    # process); _LIMITS is read-only everywhere — both are sound
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL019")) == []


def test_rpl019_flags_worker_written_parent_read_state(tmp_path):
    _program_from(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/exec/__init__.py": "",
        "pkg/exec/workers.py": """
            __all__ = ["work"]

            _RESULTS = []

            def work(task):
                _RESULTS.append(task)

            def collect():
                return list(_RESULTS)
            """,
    })
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL019"))
    assert codes(found) == ["RPL019"]
    assert "inside the worker cone" in found[0].message
    assert "pool future" in found[0].message


_RPL020_CLOCK = {
    "pkg/__init__.py": "",
    "pkg/hostclock.py": """
        import time

        def host_sleep(seconds):
            time.sleep(seconds)

        def host_now():
            return time.monotonic()
        """,
}


def test_rpl020_flags_unbounded_poll_loop(tmp_path):
    files = dict(_RPL020_CLOCK)
    files["pkg/poll.py"] = """
        from .hostclock import host_sleep

        def wait_ready(conn):
            while True:
                if conn.ready():
                    return conn.take()
                host_sleep(0.1)
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL020"))
    # the data-dependent exit is the condition being waited for, not a
    # bound on the wait — the loop spins forever when ready() never comes
    assert codes(found) == ["RPL020"]
    assert "wait_ready" in found[0].message
    assert "host_sleep" in found[0].message


def test_rpl020_counter_deadline_and_condition_bounds_are_clean(tmp_path):
    files = dict(_RPL020_CLOCK)
    files["pkg/poll.py"] = """
        from .hostclock import host_now, host_sleep

        def wait_counted(conn, retries):
            attempts = 0
            while True:
                if conn.ready():
                    return conn.take()
                if attempts >= retries:
                    raise TimeoutError("gave up")
                attempts += 1
                host_sleep(0.1)

        def wait_deadline(conn, timeout):
            deadline = host_now() + timeout
            while True:
                if conn.ready():
                    return conn.take()
                if host_now() >= deadline:
                    raise TimeoutError("gave up")
                host_sleep(0.1)

        def wait_conditional(conn):
            while not conn.closed():
                host_sleep(0.1)
        """
    _program_from(tmp_path, files)
    # attempt counter, host-clock deadline, and a non-constant loop test
    # are the three sanctioned bounds
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL020")) == []


def test_rpl020_follows_same_module_calls_only(tmp_path):
    files = dict(_RPL020_CLOCK)
    files["pkg/local.py"] = """
        from .hostclock import host_sleep

        def backoff(attempt):
            host_sleep(0.1 * attempt)

        def spin(conn):
            while True:
                if conn.ready():
                    return conn.take()
                backoff(1)
        """
    files["pkg/remote.py"] = """
        from .local import backoff

        def dispatch(conn):
            while True:
                if conn.ready():
                    return conn.take()
                backoff(1)
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL020"))
    # spin sleeps through a same-module helper and is charged for it;
    # dispatch merely enters another module's machinery, which owns its
    # own bounds — one finding, on local.py
    assert codes(found) == ["RPL020"]
    assert found[0].path.endswith("local.py")
    assert "spin" in found[0].message


# -- seeded mutations of the real tree: each rule fires ---------------------

def _mutated_tree(tmp_path, relpath, mutate):
    """Copy src/repro and apply ``mutate`` to one file's text."""
    root = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, root)
    target = root / relpath
    target.write_text(mutate(target.read_text()))
    return str(tmp_path)


def test_rpl011_mutation_forbidden_primitive(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("engines", "giraph.py"),
        lambda s: s.replace(
            "cluster.sample_memory()",
            "cluster.broadcast(1.0)\n        cluster.sample_memory()",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL011"))
    assert codes(found) == ["RPL011"]
    assert "cluster.broadcast()" in found[0].message
    assert "GiraphEngine" in found[0].message


def test_rpl012_mutation_unordered_iteration_leak(tmp_path):
    def mutate(s):
        s = s.replace(
            "def _load(",
            "def _leak(self):\n"
            "        out = []\n"
            "        for v in {1, 2}:\n"
            "            out.append(v)\n"
            "        return out\n\n"
            "    def _load(",
            1,
        )
        return s.replace(
            "cluster.hdfs_read(",
            "self._leak()\n        cluster.hdfs_read(",
            1,
        )

    tree = _mutated_tree(
        tmp_path, os.path.join("engines", "gelly.py"), mutate
    )
    found = deep_lint_paths([tree], rules=rules("RPL012"))
    assert codes(found) == ["RPL012"]
    assert "set literal" in found[0].message


def test_rpl013_mutation_unwrapped_tracker_record(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("engines", "graphlab.py"),
        lambda s: s.replace(
            "cluster.sample_memory()",
            "cluster.tracker.record_disk(read=1.0)\n"
            "        cluster.sample_memory()",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL013"))
    assert codes(found) == ["RPL013"]
    assert "record_disk" in found[0].message
    assert "span" in found[0].message


def test_rpl013_mutation_unspanned_memory_integral(tmp_path):
    # the cost record bills GB-hours off record_memory_integral, so an
    # unspanned call is untraceable billed work — RPL013 must fire
    tree = _mutated_tree(
        tmp_path,
        os.path.join("engines", "graphlab.py"),
        lambda s: s.replace(
            "cluster.sample_memory()",
            "cluster.tracker.record_memory_integral(1.0)\n"
            "        cluster.sample_memory()",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL013"))
    assert codes(found) == ["RPL013"]
    assert "record_memory_integral" in found[0].message


def test_rpl013_memory_integral_inside_span_is_clean(tmp_path):
    # the same charge wrapped in a span is the sanctioned shape (how
    # the Cluster primitives themselves accrue the integral): no finding
    tree = _mutated_tree(
        tmp_path,
        os.path.join("engines", "graphlab.py"),
        lambda s: s.replace(
            "cluster.sample_memory()",
            "with cluster.tracer.span(\"extra\", cat=\"cluster\"):\n"
            "            cluster.tracker.record_memory_integral(1.0)\n"
            "        cluster.sample_memory()",
            1,
        ),
    )
    assert deep_lint_paths([tree], rules=rules("RPL013")) == []


def test_rpl014_mutation_stray_broad_except(tmp_path):
    def mutate(s):
        match = re.search(r"( +)(cluster\.shuffle\([^\n]+\))", s)
        indent, call = match.group(1), match.group(2)
        wrapped = (
            f"{indent}try:\n"
            f"{indent}    {call}\n"
            f"{indent}except Exception:\n"
            f"{indent}    pass"
        )
        return s[: match.start()] + wrapped + s[match.end():]

    tree = _mutated_tree(
        tmp_path, os.path.join("engines", "spark.py"), mutate
    )
    found = deep_lint_paths([tree], rules=rules("RPL014"))
    assert codes(found) == ["RPL014"]
    assert "broad except" in found[0].message
    assert "fault" in found[0].message


def test_rpl015_mutation_dataset_pickled_into_pool_task(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("exec", "executor.py"),
        lambda s: s.replace(
            "pool.submit(run_cell_task, task.payload(attempt))",
            "pool.submit(run_cell_task, task.payload(attempt), "
            "self.datasets[(task.dataset, task.size)])",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL015"))
    assert codes(found) == ["RPL015"]
    assert "datasets" in found[0].message
    assert "pickles" in found[0].message


def test_rpl016_mutation_unmemoized_dataset_fingerprint(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("exec", "cache.py"),
        lambda s: s.replace(
            "@lru_cache(maxsize=None)\ndef dataset_fingerprint",
            "def dataset_fingerprint",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL016"))
    assert codes(found) == ["RPL016", "RPL016"]
    # the findings land on the planner's per-cell key loop and on the
    # serve daemon's scheduler loop, which reaches the same digest
    # through each job it executes
    paths = sorted(v.path for v in found)
    assert paths[0].endswith("executor.py")
    assert paths[1].endswith(os.path.join("serve", "daemon.py"))
    assert all("dataset_fingerprint" in v.message for v in found)


def test_rpl017_mutation_getattr_back_in_superstep_loop(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("engines", "bsp.py"),
        lambda s: s.replace(
            "model=trace_model",
            'model=getattr(self, "trace_model", "bsp")',
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL017"))
    assert codes(found) == ["RPL017"]
    assert "trace_model" in found[0].message
    assert found[0].path.endswith("bsp.py")


def test_rpl018_mutation_dropped_result_package(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("exec", "cache.py"),
        lambda s: s.replace('"partitioning", "workloads",', '"partitioning",', 1),
    )
    found = deep_lint_paths([tree], rules=rules("RPL018"))
    assert codes(found) == ["RPL018"]
    assert "'workloads'" in found[0].message
    assert "_RESULT_PACKAGES" in found[0].message


def test_rpl018_mutation_dropped_chaos_key(tmp_path):
    tree = _mutated_tree(
        tmp_path,
        os.path.join("exec", "cache.py"),
        lambda s: s.replace(
            '        "chaos": None if task.chaos is None else task.chaos.to_dict(),\n',
            "",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL018"))
    assert codes(found) == ["RPL018"]
    assert "'chaos'" in found[0].message
    assert "stale" in found[0].message


def test_rpl019_mutation_parent_primed_dataset_memo(tmp_path):
    def mutate(s):
        s = s.replace(
            'dataset = load_dataset(task["dataset"], task["size"])',
            'dataset = _WARM_DATASETS.get((task["dataset"], task["size"])) '
            'or load_dataset(task["dataset"], task["size"])',
            1,
        )
        return s + (
            "\n\n_WARM_DATASETS = {}\n"
            "\n\n"
            "def prime_dataset(name, size):\n"
            "    _WARM_DATASETS[(name, size)] = load_dataset(name, size)\n"
        )

    tree = _mutated_tree(tmp_path, os.path.join("exec", "workers.py"), mutate)
    found = deep_lint_paths([tree], rules=rules("RPL019"))
    assert codes(found) == ["RPL019"]
    assert "'_WARM_DATASETS'" in found[0].message
    assert "worker processes never see" in found[0].message.lower()


def test_rpl020_mutation_unbounding_the_submit_backoff(tmp_path):
    # strip the retry bound from the serve client's submit loop: the
    # queue-full backoff then sleeps forever against a saturated daemon
    tree = _mutated_tree(
        tmp_path,
        os.path.join("serve", "client.py"),
        lambda s: s.replace("if rejections >= retries:", "if False:", 1),
    )
    found = deep_lint_paths([tree], rules=rules("RPL020"))
    assert codes(found) == ["RPL020"]
    assert found[0].path.endswith("client.py")
    assert "submit" in found[0].message


# -- RPL021: guarded-field discipline ---------------------------------------

_SERVE_PKG = {"serve/__init__.py": ""}


def test_rpl021_flags_field_guarded_on_one_root_bare_on_another(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading

        class Daemon:
            def __init__(self):
                self.cond = threading.Condition()
                self.jobs_done = 0
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                self.jobs_done += 1

            def status(self):
                with self.cond:
                    return self.jobs_done
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL021"))
    assert codes(found) == ["RPL021"]
    assert "'Daemon.jobs_done'" in found[0].message
    assert "cond" in found[0].message


def test_rpl021_sanctions_the_lock_held_everywhere(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading

        class Daemon:
            def __init__(self):
                self.cond = threading.Condition()
                self.jobs_done = 0
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                with self.cond:
                    self.jobs_done += 1

            def status(self):
                with self.cond:
                    return self.jobs_done
        """
    _program_from(tmp_path, files)
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL021")) == []


def test_rpl021_mutation_unlocking_the_payload_publisher(tmp_path):
    # drop the daemon's `with self.cond:` in _on_cell: the scheduler
    # thread then appends payloads the handler threads read under the
    # lock — exactly the race the rule exists to catch
    tree = _mutated_tree(
        tmp_path,
        os.path.join("serve", "daemon.py"),
        lambda s: s.replace(
            "with self.cond:\n            job.payloads.append(payload)",
            "if True:\n            job.payloads.append(payload)",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL021"))
    assert "RPL021" in codes(found)
    assert any("'Job.payloads'" in v.message for v in found)


# -- RPL022: blocking under a lock ------------------------------------------

def test_rpl022_flags_sleep_inside_the_critical_section(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading
        import time

        class Daemon:
            def __init__(self):
                self.cond = threading.Condition()
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                with self.cond:
                    time.sleep(0.05)
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL022"))
    assert codes(found) == ["RPL022"]
    assert ".sleep()" in found[0].message


def test_rpl022_sanctions_blocking_outside_the_lock(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading
        import time

        class Daemon:
            def __init__(self):
                self.cond = threading.Condition()
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                with self.cond:
                    self.cond.notify_all()
                time.sleep(0.05)
        """
    _program_from(tmp_path, files)
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL022")) == []


def test_rpl022_flags_opposite_lock_orders(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading

        class Pair:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                with self.a:
                    with self.b:
                        pass

            def poke(self):
                with self.b:
                    with self.a:
                        pass
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL022"))
    assert codes(found) == ["RPL022"]
    assert "lock-order cycle" in found[0].message


def test_rpl022_mutation_joining_the_scheduler_under_the_lock(tmp_path):
    # move _finish's scheduler join inside the condition block: the
    # scheduler needs that very lock to reach a terminal state, so the
    # shutdown path would deadlock
    tree = _mutated_tree(
        tmp_path,
        os.path.join("serve", "daemon.py"),
        lambda s: s.replace(
            "            self.cond.notify_all()\n"
            "        if self._scheduler is not None:\n"
            "            self._scheduler.join()",
            "            self.cond.notify_all()\n"
            "            if self._scheduler is not None:\n"
            "                self._scheduler.join()",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL022"))
    assert "RPL022" in codes(found)
    assert any(".join()" in v.message for v in found)


# -- RPL023: condition hygiene ----------------------------------------------

def test_rpl023_flags_wait_outside_while_and_bare_notify(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading

        class Daemon:
            def __init__(self):
                self.cond = threading.Condition()
                self.flag = 0
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                with self.cond:
                    if self.flag == 0:
                        self.cond.wait()

            def poke(self):
                self.cond.notify_all()
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL023"))
    assert codes(found) == ["RPL023", "RPL023"]
    messages = " ".join(v.message for v in found)
    assert "while-predicate" in messages
    assert "RuntimeError" in messages


def test_rpl023_sanctions_the_canonical_wait_loop(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading

        class Daemon:
            def __init__(self):
                self.cond = threading.Condition()
                self.flag = 0
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                with self.cond:
                    while self.flag == 0:
                        self.cond.wait()

            def poke(self):
                with self.cond:
                    self.cond.notify_all()
        """
    _program_from(tmp_path, files)
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL023")) == []


def test_rpl023_mutation_degrading_the_scheduler_wait_loop(tmp_path):
    # weaken the idle wait's `while` to `if`: one advisory wakeup then
    # the loop body runs on a possibly-false predicate
    tree = _mutated_tree(
        tmp_path,
        os.path.join("serve", "daemon.py"),
        lambda s: s.replace(
            "while not self._stopping and len(self.queue) == 0:",
            "if not self._stopping and len(self.queue) == 0:",
            1,
        ),
    )
    found = deep_lint_paths([tree], rules=rules("RPL023"))
    assert codes(found) == ["RPL023"]
    assert "while-predicate" in found[0].message


# -- RPL024: thread confinement ---------------------------------------------

def test_rpl024_flags_cross_thread_global_with_no_lock(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading

        _SEEN = {}

        class Daemon:
            def __init__(self):
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                _SEEN["beat"] = 1

            def status(self):
                return len(_SEEN)
        """
    _program_from(tmp_path, files)
    found = deep_lint_paths([str(tmp_path)], rules=rules("RPL024"))
    assert codes(found) == ["RPL024"]
    assert "'_SEEN'" in found[0].message


def test_rpl024_sanctions_globals_guarded_everywhere(tmp_path):
    files = dict(_SERVE_PKG)
    files["serve/daemon.py"] = """
        import threading

        _SEEN = {}

        class Daemon:
            def __init__(self):
                self.cond = threading.Condition()
                self._thread = None

            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def _loop(self):
                with self.cond:
                    _SEEN["beat"] = 1

            def status(self):
                with self.cond:
                    return len(_SEEN)
        """
    _program_from(tmp_path, files)
    assert deep_lint_paths([str(tmp_path)], rules=rules("RPL024")) == []


def test_rpl024_mutation_smuggling_state_through_a_module_dict(tmp_path):
    # route scheduler→handler communication through a module global:
    # visible to both threads, serialized by nothing
    def mutate(s):
        s = s.replace("_IDLE_WAIT = 0.2", "_IDLE_WAIT = 0.2\n_LAST_SEEN = {}", 1)
        s = s.replace(
            "request = job.request",
            "request = job.request\n            _LAST_SEEN[job.id] = True",
            1,
        )
        return s.replace(
            "return ok_response(version=PROTOCOL_VERSION, address=self.address)",
            "return ok_response(version=PROTOCOL_VERSION, "
            "address=self.address, seen=len(_LAST_SEEN))",
            1,
        )

    tree = _mutated_tree(tmp_path, os.path.join("serve", "daemon.py"), mutate)
    found = deep_lint_paths([tree], rules=rules("RPL024"))
    assert codes(found) == ["RPL024"]
    assert "'_LAST_SEEN'" in found[0].message
    assert "no lock ever held" in found[0].message


# -- the meta-test: the tree honours its own deep contracts -----------------

def test_src_repro_is_deep_clean_and_fast():
    """src/repro is clean under every rule, RPL001-RPL024, in budget."""
    start = time.perf_counter()
    violations = lint_paths([SRC_REPRO])
    violations += deep_lint_paths([SRC_REPRO])
    elapsed = time.perf_counter() - start
    assert violations == [], "\n".join(v.format() for v in violations)
    assert elapsed < 15.0, f"full pass took {elapsed:.1f}s (budget: 15s)"


def test_committed_baseline_is_empty():
    path = os.path.join(os.path.dirname(__file__), "..", "lint-baseline.json")
    assert load_baseline(path) == []


def test_deep_report_is_byte_identical_across_hash_seeds(tmp_path):
    outputs = []
    for seed in ("1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--deep",
             "--format", "json", SRC_REPRO],
            capture_output=True,
            env=env,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    assert json.loads(outputs[0])["count"] == 0


# -- baseline ---------------------------------------------------------------

def test_baseline_roundtrip_ignores_line_numbers(tmp_path):
    path = str(tmp_path / "baseline.json")
    vold = Violation(
        code="RPL013", message="m", path="src\\repro\\x.py", line=10, col=0
    )
    assert write_baseline(path, [vold]) == 1
    baseline = load_baseline(path)
    # same finding on a different line, posix separators: still filtered
    vnew = Violation(
        code="RPL013", message="m", path="src/repro/x.py", line=99, col=4
    )
    assert filter_baselined([vnew], baseline) == []
    other = Violation(
        code="RPL013", message="other", path="src/repro/x.py", line=99, col=4
    )
    assert filter_baselined([other], baseline) == [other]
    assert fingerprint(vold) == fingerprint(vnew)


def test_baseline_loader_tolerates_garbage(tmp_path):
    missing = str(tmp_path / "nope.json")
    assert load_baseline(missing) == []
    corrupt = tmp_path / "bad.json"
    corrupt.write_text("{not json")
    assert load_baseline(str(corrupt)) == []
    wrong_version = tmp_path / "v0.json"
    wrong_version.write_text('{"version": 0, "fingerprints": [["a","b","c"]]}')
    assert load_baseline(str(wrong_version)) == []


# -- noqa across passes -----------------------------------------------------

def test_noqa_line_covered_by_shallow_and_deep_rule(tmp_path):
    obs_dir = tmp_path / "obs"
    obs_dir.mkdir()
    (obs_dir / "__init__.py").write_text("")
    body = textwrap.dedent("""
        def total(values, out):
            for v in {1, 2}:<NOQA>
                out.append(v)
            return out
        """)
    target = obs_dir / "helpers.py"

    from repro.lint.cli import main as lint_main

    target.write_text(body.replace("<NOQA>", ""))
    args = [str(tmp_path), "--deep", "--select", "RPL008,RPL012",
            "--format", "json"]
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        assert lint_main(args) == 1
    payload = json.loads(buf.getvalue())
    hit_codes = {v["code"] for v in payload["violations"]}
    assert hit_codes == {"RPL008", "RPL012"}
    lines = {v["line"] for v in payload["violations"]}
    assert len(lines) == 1  # both passes anchored on the same loop line

    target.write_text(body.replace("<NOQA>", "  # noqa: RPL008, RPL012"))
    buf = io.StringIO()
    with redirect_stdout(buf):
        assert lint_main(args) == 0

    # suppressing only the shallow code leaves the deep finding alive
    target.write_text(body.replace("<NOQA>", "  # noqa: RPL008"))
    buf = io.StringIO()
    with redirect_stdout(buf):
        assert lint_main(args) == 1
    payload = json.loads(buf.getvalue())
    assert {v["code"] for v in payload["violations"]} == {"RPL012"}
