"""Tests for repro.obs: spans, metrics, journals, exporters, CLI, lint.

The load-bearing guarantees:

* spans nest LIFO and always close, even when a simulated failure
  unwinds through them;
* metric names bind to one type (re-registration raises);
* the journal is deterministic — running the same seeded cell twice
  yields byte-identical JSONL;
* the Chrome export is schema-valid trace_event JSON;
* ``repro trace`` exits 0 on a journal and 2 on garbage;
* RPL001 allowlists exactly ``repro/obs/hostclock.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import run_cell
from repro.engines.base import RunResult
from repro.lint.rules.rpl001_wallclock import WallClockRule
from repro.lint.source import SourceModule
from repro.obs import (
    ExtrasView,
    Journal,
    JournalError,
    MetricError,
    MetricsRegistry,
    SpanError,
    Tracer,
    build_journal,
    chrome_trace,
    one_line_summary,
    render_summary,
    superstep_rows,
)


def _manual_clock():
    state = {"t": 0.0}

    def advance(dt):
        state["t"] += dt

    return state, advance


class TestSpans:
    def test_nesting_parents(self):
        tracer = Tracer()
        outer = tracer.start("run", cat="run")
        inner = tracer.start("load", cat="phase")
        assert inner.parent == outer.id
        assert tracer.current is inner
        tracer.end(inner)
        tracer.end(outer)
        assert tracer.open_depth == 0

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.start("run")
        tracer.start("load")
        with pytest.raises(SpanError, match="out of order"):
            tracer.end(outer)

    def test_double_close_raises(self):
        tracer = Tracer()
        span = tracer.start("run")
        tracer.end(span)
        with pytest.raises(SpanError, match="already closed"):
            tracer.end(span)

    def test_context_manager_closes_on_failure(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("run"):
                with tracer.span("execute"):
                    raise ValueError("simulated OOM")
        assert tracer.open_depth == 0
        assert all(s.closed for s in tracer.spans)
        errors = [s.attrs.get("error") for s in tracer.finished()]
        assert errors == ["ValueError", "ValueError"]

    def test_error_span_carries_failure_provenance(self):
        # satellite contract: SimulatedFailure-shaped exceptions stamp
        # kind and machine onto every span they unwind through
        class FakeFailure(RuntimeError):
            kind = "OOM"
            machine = 3

        tracer = Tracer()
        with pytest.raises(FakeFailure):
            with tracer.span("run"):
                with tracer.span("execute"):
                    raise FakeFailure("boom")
        for span in tracer.finished():
            assert span.attrs["error"] == "FakeFailure"
            assert span.attrs["kind"] == "OOM"
            assert span.attrs["machine"] == 3

    def test_error_span_machine_defaults_to_cluster_wide(self):
        class ClusterWide(RuntimeError):
            kind = "TO"
            machine = None

        tracer = Tracer()
        with pytest.raises(ClusterWide):
            with tracer.span("run"):
                raise ClusterWide("timeout")
        (span,) = tracer.finished()
        assert span.attrs["kind"] == "TO"
        assert span.attrs["machine"] == -1

    def test_simulated_clock_timestamps(self):
        state, advance = _manual_clock()
        tracer = Tracer(now_fn=lambda: state["t"])
        with tracer.span("run"):
            advance(3.5)
        (span,) = tracer.finished()
        assert span.start == 0.0
        assert span.duration == 3.5

    def test_ids_sequential(self):
        tracer = Tracer()
        ids = []
        for _ in range(3):
            with tracer.span("x") as span:
                ids.append(span.id)
        assert ids == [1, 2, 3]


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        registry.counter("messages_sent").inc(5)
        registry.counter("messages_sent").inc(2)
        assert registry.value("messages_sent") == 7
        with pytest.raises(ValueError):
            registry.counter("messages_sent").inc(-1)

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("messages_sent")
        with pytest.raises(MetricError, match="counter"):
            registry.gauge("messages_sent")
        registry.histogram("superstep_seconds")
        with pytest.raises(MetricError):
            registry.counter("superstep_seconds")

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("superstep_seconds")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.summary() == {
            "count": 3.0, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_histogram_not_a_scalar(self):
        registry = MetricsRegistry()
        registry.histogram("superstep_seconds")
        with pytest.raises(KeyError):
            registry.value("superstep_seconds")


class TestExtrasView:
    def test_dict_surface(self):
        view = ExtrasView(MetricsRegistry())
        view["checkpoints"] = 1.0
        view["checkpoints"] += 1
        assert view["checkpoints"] == 2.0
        assert "checkpoints" in view
        assert dict(view) == {"checkpoints": 2.0}
        del view["checkpoints"]
        assert len(view) == 0

    def test_writes_reach_registry(self):
        registry = MetricsRegistry()
        view = ExtrasView(registry)
        view["replication_factor"] = 3.2
        assert registry.value("replication_factor") == 3.2

    def test_runresult_seeds_extras_into_registry(self):
        result = RunResult("BV", "pagerank", "twitter", 16,
                           extras={"checkpoints": 2.0})
        assert isinstance(result.extras, ExtrasView)
        assert result.extras["checkpoints"] == 2.0
        assert result.metrics.value("checkpoints") == 2.0


@pytest.fixture(scope="module")
def traced_result(tiny_twitter):
    return run_cell("BV", "pagerank", tiny_twitter, 16)


@pytest.fixture(scope="module")
def journal(traced_result):
    return traced_result.observation.journal()


class TestJournal:
    def test_structure(self, journal):
        assert journal.meta["system"] == "BV"
        names = [s["name"] for s in journal.spans()]
        assert names[0] == "run"
        assert "load" in names and "execute" in names
        assert journal.supersteps()
        # spans nest: every parent id occurs in the journal
        ids = {s["id"] for s in journal.spans()}
        assert all(s["parent"] in ids for s in journal.spans()
                   if s["parent"] is not None)

    def test_superstep_spans_under_execute(self, journal):
        by_id = {s["id"]: s for s in journal.spans()}
        execute = next(s for s in journal.spans() if s["name"] == "execute")
        for step in journal.supersteps():
            assert by_id[step["parent"]] is execute

    def test_deterministic_byte_identical(self, tiny_twitter):
        first = run_cell("BV", "pagerank", tiny_twitter, 16)
        second = run_cell("BV", "pagerank", tiny_twitter, 16)
        assert (first.observation.journal().dumps()
                == second.observation.journal().dumps())

    def test_roundtrip(self, journal, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.write(path)
        loaded = Journal.read(path)
        assert loaded.dumps() == journal.dumps()

    def test_open_span_rejected(self):
        tracer = Tracer()
        tracer.start("run")
        with pytest.raises(JournalError, match="open span"):
            build_journal({"system": "X"}, tracer)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JournalError):
            Journal.read(path)
        path.write_text('{"type": "span"}\n')
        with pytest.raises(JournalError, match="meta"):
            Journal.read(path)

    def test_failure_recorded(self, small_wrn):
        result = run_cell("GL-S-R-I", "pagerank", small_wrn, 16)
        assert not result.ok
        failed = result.observation.journal()
        assert failed.meta["status"] == str(result.failure)
        assert any("error" in s.get("args", {}) for s in failed.spans())

    def test_failure_spans_carry_kind_and_machine(self, small_wrn):
        # every SimulatedFailure raised by an engine is a typed, placed
        # event: the error spans name the failure kind and the machine
        # it struck (-1 = cluster-wide)
        result = run_cell("GL-S-R-I", "pagerank", small_wrn, 16)
        assert not result.ok
        error_spans = [s for s in result.observation.journal().spans()
                       if "error" in s.get("args", {})]
        assert error_spans
        for span in error_spans:
            assert span["args"]["kind"] == str(result.failure)
            assert isinstance(span["args"]["machine"], int)


class TestExport:
    def test_chrome_schema(self, journal):
        trace = chrome_trace(journal)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X"}
        for event in events:
            if event["ph"] != "X":
                continue
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
        # the whole thing serializes as JSON
        json.dumps(trace)

    def test_superstep_rows(self, journal, traced_result):
        rows = superstep_rows(journal)
        assert len(rows) == traced_result.iterations
        assert rows[0]["iteration"] == 1
        assert all(r["duration_s"] > 0 for r in rows)

    def test_render_summary(self, journal):
        text = render_summary(journal)
        assert "BV pagerank/twitter@16" in text
        assert "execute" in text
        assert "supersteps: " in text

    def test_one_line_summary(self, traced_result):
        line = one_line_summary(traced_result)
        assert line.startswith("spans: ")
        assert "slowest phase" in line
        assert "shuffled" in line


class TestTraceCli:
    @pytest.fixture()
    def journal_path(self, journal, tmp_path):
        path = tmp_path / "run.jsonl"
        journal.write(path)
        return path

    def test_summary_exit_zero(self, journal_path, capsys):
        assert main(["trace", str(journal_path)]) == 0
        assert "supersteps" in capsys.readouterr().out

    def test_chrome_and_csv(self, journal_path, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        csv_path = tmp_path / "steps.csv"
        assert main(["trace", str(journal_path), "--chrome", str(chrome),
                     "--csv", str(csv_path)]) == 0
        assert json.loads(chrome.read_text())["traceEvents"]
        assert csv_path.read_text().splitlines()[0].startswith("iteration,")

    def test_invalid_journal_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert main(["trace", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_journal_exit_two(self, tmp_path):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2

    def test_run_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(["run", "BV", "pagerank", "twitter", "-m", "16",
                     "--size", "tiny", "--trace", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "spans: " in printed
        assert Journal.read(out).supersteps()


class TestWallClockAllowlist:
    CALL = "import time\ntime.perf_counter()\n"

    def test_hostclock_allowlisted(self):
        module = SourceModule.parse(
            self.CALL, path="src/repro/obs/hostclock.py"
        )
        assert list(WallClockRule().check(module)) == []

    def test_other_files_still_flagged(self):
        module = SourceModule.parse(
            self.CALL, path="src/repro/cluster/cluster.py"
        )
        violations = list(WallClockRule().check(module))
        assert len(violations) == 1
        assert violations[0].code == "RPL001"
