"""repro.lint: every RPL rule has a positive and a negative fixture,
noqa suppression works, the CLI exits correctly, and — the contract the
whole package exists for — src/repro itself is lint-clean."""

import json
import os
import textwrap

import pytest

from repro.lint import (
    ALL_RULES,
    PARSE_ERROR_CODE,
    RULES_BY_CODE,
    expand_selectors,
    lint_file,
    lint_paths,
    lint_source,
    select_rules,
)
from repro.lint.cli import main as lint_main

SRC_REPRO = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def codes(violations):
    return [v.code for v in violations]


def run(snippet, select=None):
    rules = select_rules([select]) if select else None
    return lint_source(textwrap.dedent(snippet), path="fixture.py", rules=rules)


# -- registry ---------------------------------------------------------------

def test_registry_covers_rpl001_through_rpl010():
    assert sorted(RULES_BY_CODE) == [f"RPL{i:03d}" for i in range(1, 11)]
    assert len(ALL_RULES) == 10
    for rule in ALL_RULES:
        assert rule.name and rule.rationale


def test_select_rules_rejects_unknown_code():
    with pytest.raises(KeyError):
        select_rules(["RPL999"])


def test_expand_selectors_prefix_matching():
    available = list(RULES_BY_CODE) + ["RPL011", "RPL012"]
    assert expand_selectors(["RPL001"], available) == ["RPL001"]
    assert expand_selectors(["RPL01"], available) == [
        "RPL010", "RPL011", "RPL012",
    ]
    assert expand_selectors(["rpl002", "RPL011"], available) == [
        "RPL002", "RPL011",
    ]
    with pytest.raises(KeyError):
        expand_selectors(["RPL9"], available)


def test_expand_selectors_exact_match_beats_prefix():
    # an exact code selects only itself even when it prefixes other
    # codes — the regression the docs promise now that RPL01 matches
    # ten deep rules
    available = ["RPL016", "RPL0160", "RPL0161"]
    assert expand_selectors(["RPL016"], available) == ["RPL016"]
    assert expand_selectors(["rpl016"], available) == ["RPL016"]
    # a non-exact selector still expands by prefix
    assert expand_selectors(["RPL01"], available) == [
        "RPL016", "RPL0160", "RPL0161",
    ]


def test_expand_selectors_rpl01_matches_ten_deep_rules():
    from repro.lint.deep import DEEP_RULES_BY_CODE

    available = list(RULES_BY_CODE) + list(DEEP_RULES_BY_CODE)
    expanded = expand_selectors(["RPL01"], available)
    assert expanded == [f"RPL{i:03d}" for i in range(10, 20)]
    assert len(expanded) == 10
    assert expand_selectors(["RPL016"], available) == ["RPL016"]


# -- RPL001 wall-clock ------------------------------------------------------

def test_rpl001_flags_wall_clock_calls():
    found = run(
        """
        import time
        from datetime import datetime

        def load_phase():
            start = time.time()
            time.sleep(0.1)
            stamp = datetime.now()
            return start, stamp
        """,
        select="RPL001",
    )
    assert codes(found) == ["RPL001", "RPL001", "RPL001"]
    assert found[0].line == 6
    assert "time.time" in found[0].message


def test_rpl001_resolves_aliases():
    found = run(
        """
        import time as t

        def f():
            return t.perf_counter()
        """,
        select="RPL001",
    )
    assert codes(found) == ["RPL001"]


def test_rpl001_clean_simulated_time():
    found = run(
        """
        def execute(cluster):
            cluster.advance(3.5)
            return cluster.now
        """,
        select="RPL001",
    )
    assert found == []


# -- RPL002 randomness ------------------------------------------------------

def test_rpl002_flags_global_rng_and_unseeded_generator():
    found = run(
        """
        import random
        import numpy as np

        def sample():
            a = random.random()
            b = np.random.rand(4)
            rng = np.random.default_rng()
            return a, b, rng
        """,
        select="RPL002",
    )
    assert codes(found) == ["RPL002", "RPL002", "RPL002"]
    assert "OS-seeded" in found[2].message


def test_rpl002_clean_seeded_generator():
    found = run(
        """
        import numpy as np

        def sample(seed):
            rng = np.random.default_rng(seed)
            other = np.random.default_rng(7)
            return rng.random(), other.integers(10)
        """,
        select="RPL002",
    )
    assert found == []


# -- RPL003 superstep purity ------------------------------------------------

def test_rpl003_flags_graph_mutation_and_globals():
    found = run(
        """
        CACHE = {}

        class Sloppy:
            def superstep(self, graph, state):
                global CACHE
                graph.weights = None
                graph.adj[0] = []
                CACHE["x"] = 1
                return state
        """,
        select="RPL003",
    )
    assert len(found) == 4
    assert all(c == "RPL003" for c in codes(found))
    messages = " | ".join(v.message for v in found)
    assert "global" in messages and "graph" in messages


def test_rpl003_flags_execute_writing_dataset_graph():
    found = run(
        """
        class Eng:
            def _execute(self, dataset, workload, cluster, result, scale):
                dataset.graph.labels = None
        """,
        select="RPL003",
    )
    assert codes(found) == ["RPL003"]


def test_rpl003_clean_state_mutation():
    found = run(
        """
        class Tidy:
            def superstep(self, graph, state):
                state.values[graph.sources] = 0.0
                state.iteration += 1
                return state
        """,
        select="RPL003",
    )
    assert found == []


# -- RPL004 mutable class defaults ------------------------------------------

def test_rpl004_flags_mutable_defaults_on_model_classes():
    found = run(
        """
        class MyEngine:
            features = {}
            pending = []

        class MyWorkload(Workload):
            seen = set()
        """,
        select="RPL004",
    )
    assert codes(found) == ["RPL004", "RPL004", "RPL004"]
    assert "features" in found[0].message


def test_rpl004_ignores_immutable_defaults_and_non_model_classes():
    found = run(
        """
        from types import MappingProxyType

        class MyEngine:
            features = MappingProxyType({"a": "b"})
            order = ("load", "execute")

        class Unrelated:
            cache = {}
        """,
        select="RPL004",
    )
    assert found == []


# -- RPL005 exception discipline --------------------------------------------

def test_rpl005_flags_bare_except_everywhere():
    found = run(
        """
        def helper():
            try:
                return 1
            except:
                return 2
        """,
        select="RPL005",
    )
    assert codes(found) == ["RPL005"]
    assert "bare" in found[0].message


def test_rpl005_flags_swallowed_broad_except_in_phase_method():
    found = run(
        """
        class Eng:
            def _execute(self, dataset, workload, cluster, result, scale):
                try:
                    return self.loop()
                except Exception:
                    return None
        """,
        select="RPL005",
    )
    assert codes(found) == ["RPL005"]
    assert "SimulatedFailure" in found[0].message


def test_rpl005_clean_typed_or_reraising_handlers():
    found = run(
        """
        class Eng:
            def _execute(self, dataset, workload, cluster, result, scale):
                try:
                    return self.loop()
                except SimulatedFailure:
                    raise
                except Exception as exc:
                    raise RuntimeError("wrap") from exc

        def parse(text):
            try:
                return int(text)
            except ValueError:
                return 0
        """,
        select="RPL005",
    )
    assert found == []


# -- RPL006 engine metadata -------------------------------------------------

def test_rpl006_flags_concrete_engine_missing_metadata():
    found = run(
        """
        class SparseEngine(Engine):
            key = "SP"

            def _load(self, dataset, workload, cluster, result):
                pass
        """,
        select="RPL006",
    )
    assert codes(found) == ["RPL006"]
    assert "display_name" in found[0].message
    assert "language" in found[0].message


def test_rpl006_accepts_inherited_and_init_assigned_metadata():
    found = run(
        """
        class FullEngine(Engine):
            key = "F"
            display_name = "Full"
            language = "C++"

        class DerivedEngine(FullEngine):
            key = "F2"
            display_name = "Full v2"

        class InitEngine(Engine):
            display_name = "Init"
            language = "Java"

            def __init__(self, mode):
                self.key = f"I-{mode}"
        """,
        select="RPL006",
    )
    assert found == []


def test_rpl006_skips_abstract_and_mixin_classes():
    found = run(
        """
        import abc

        class LoopMixin:
            pass

        class PartialEngine(Engine):
            @abc.abstractmethod
            def _execute(self, dataset, workload, cluster, result, scale):
                ...
        """,
        select="RPL006",
    )
    assert found == []


# -- RPL007 cost accounting -------------------------------------------------

def test_rpl007_flags_clock_and_tracker_writes():
    found = run(
        """
        def cheat(cluster):
            cluster.now = 0.0
            cluster.clock.now = 10.0
            cluster.tracker.network_bytes_sent += 1024
        """,
        select="RPL007",
    )
    assert codes(found) == ["RPL007", "RPL007", "RPL007"]
    assert "advance" in found[0].message


def test_rpl007_clean_api_usage():
    found = run(
        """
        def charge(cluster):
            cluster.advance(5.0)
            cluster.tracker.record_network(sent=10.0, received=10.0)
            now = cluster.now
            return now
        """,
        select="RPL007",
    )
    assert found == []


# -- RPL008 set iteration ---------------------------------------------------

def test_rpl008_flags_accumulation_over_set():
    found = run(
        """
        def total(values):
            acc = 0.0
            for v in set(values):
                acc += v
            return acc
        """,
        select="RPL008",
    )
    assert codes(found) == ["RPL008"]
    assert "sorted" in found[0].message


def test_rpl008_flags_message_emission_over_set_method():
    found = run(
        """
        def fanout(frontier, other, outbox):
            for v in frontier.intersection(other):
                outbox.append(v)
        """,
        select="RPL008",
    )
    assert codes(found) == ["RPL008"]


def test_rpl008_clean_sorted_iteration():
    found = run(
        """
        def total(values):
            acc = 0.0
            for v in sorted(set(values)):
                acc += v
            return acc
        """,
        select="RPL008",
    )
    assert found == []


# -- RPL009 concurrency door ------------------------------------------------

def test_rpl009_flags_concurrency_imports_outside_exec():
    found = lint_source(
        textwrap.dedent(
            """
            import threading
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor
            from concurrent import futures
            """
        ),
        path="src/repro/core/runner.py",
        rules=select_rules(["RPL009"]),
    )
    assert codes(found) == ["RPL009"] * 4
    assert "repro/exec" in found[0].message


def test_rpl009_allowlists_the_executor_package():
    found = lint_source(
        textwrap.dedent(
            """
            from concurrent.futures import ProcessPoolExecutor
            import multiprocessing
            """
        ),
        path="src/repro/exec/executor.py",
        rules=select_rules(["RPL009"]),
    )
    assert found == []


def test_rpl009_allowlists_the_serving_package():
    found = lint_source(
        "import threading\nimport socketserver\n",
        path="src/repro/serve/daemon.py",
        rules=select_rules(["RPL009"]),
    )
    assert found == []


def test_rpl009_ignores_relative_and_unrelated_imports():
    found = run(
        """
        from .concurrent import local_helper
        import itertools
        from functools import lru_cache
        """,
        select="RPL009",
    )
    assert found == []


def test_rpl009_src_repro_has_only_sanctioned_concurrency_doors():
    # the repo-level contract: every concurrency import in src/repro
    # lives under repro/exec/ or repro/serve/ (lint_paths on the real
    # tree proves it)
    violations = lint_paths([SRC_REPRO], rules=select_rules(["RPL009"]))
    assert violations == []


# -- RPL010 recovery sites --------------------------------------------------

def test_rpl010_flags_simulated_failure_catch_outside_recovery_sites():
    found = lint_source(
        textwrap.dedent(
            """
            def sneaky(engine, dataset, workload, spec):
                try:
                    return engine.run(dataset, workload, spec)
                except SimulatedFailure:
                    return None
            """
        ),
        path="src/repro/core/runner.py",
        rules=select_rules(["RPL010"]),
    )
    assert codes(found) == ["RPL010"]
    assert "recovery sites" in found[0].message


def test_rpl010_flags_failure_subtypes_and_dotted_names():
    found = lint_source(
        textwrap.dedent(
            """
            def absorb(compute):
                try:
                    compute()
                except (SimulatedOOM, failures.SimulatedTimeout):
                    pass
                except MPIOverflowError:
                    pass
            """
        ),
        path="src/repro/workloads/pagerank.py",
        rules=select_rules(["RPL010"]),
    )
    assert codes(found) == ["RPL010", "RPL010"]
    assert "SimulatedOOM, SimulatedTimeout" in found[0].message


def test_rpl010_flags_swallowed_broad_except_in_guarded_packages():
    found = lint_source(
        textwrap.dedent(
            """
            def helper(compute):
                try:
                    return compute()
                except Exception:
                    return None
            """
        ),
        path="src/repro/engines/bsp.py",
        rules=select_rules(["RPL010"]),
    )
    assert codes(found) == ["RPL010"]
    assert "recovery cost" in found[0].message


def test_rpl010_allowlists_the_sanctioned_recovery_sites():
    snippet = textwrap.dedent(
        """
        def run(self, dataset, workload, spec):
            try:
                return self._execute(dataset, workload, spec)
            except SimulatedFailure as failure:
                return self._failure_cell(failure)
        """
    )
    for path in ("src/repro/engines/base.py", "src/repro/exec/executor.py"):
        assert lint_source(
            snippet, path=path, rules=select_rules(["RPL010"])
        ) == []


def test_rpl010_clean_specific_or_reraising_handlers_elsewhere():
    found = lint_source(
        textwrap.dedent(
            """
            def parse(text):
                try:
                    return int(text)
                except ValueError:
                    return 0

            def guard(compute):
                try:
                    return compute()
                except Exception:
                    raise
            """
        ),
        path="src/repro/exec/workers.py",
        rules=select_rules(["RPL010"]),
    )
    assert found == []


# -- suppression and parse errors -------------------------------------------

def test_noqa_suppresses_specific_code():
    found = run(
        """
        import time

        def f():
            return time.time()  # noqa: RPL001
        """,
    )
    assert found == []


def test_noqa_bare_suppresses_all_and_wrong_code_does_not():
    src = """
    import time

    def f():
        a = time.time()  # noqa
        b = time.time()  # noqa: RPL004
        return a, b
    """
    found = run(src)
    assert codes(found) == ["RPL001"]
    assert found[0].line == 6


def test_noqa_with_multiple_comma_separated_codes():
    src = """
    import time
    import random

    def f():
        return time.time(), random.random()  # noqa: RPL001, RPL002
    """
    assert run(src) == []


def test_noqa_multiple_codes_suppress_only_whats_listed():
    src = """
    import time
    import random

    def f():
        return time.time(), random.random()  # noqa: RPL002, RPL004
    """
    found = run(src)
    assert codes(found) == ["RPL001"]


def test_parse_error_reported_as_rpl000():
    found = lint_source("def broken(:\n", path="bad.py")
    assert codes(found) == [PARSE_ERROR_CODE]


def test_undecodable_file_reported_as_rpl000_not_traceback(tmp_path):
    bad = tmp_path / "latin.py"
    bad.write_bytes(b'x = "\xff\xfe"\n')
    found = lint_file(str(bad))
    assert codes(found) == [PARSE_ERROR_CODE]
    assert found[0].line == 1
    assert "decode" in found[0].message
    assert lint_main([str(bad)]) == 1


def test_null_byte_file_reported_as_rpl000(tmp_path):
    bad = tmp_path / "nul.py"
    bad.write_bytes(b"x = 1\x00\n")
    found = lint_file(str(bad))
    assert codes(found) == [PARSE_ERROR_CODE]
    assert lint_main([str(bad)]) == 1


# -- the meta-test: this repo honours its own contracts ---------------------

def test_src_repro_is_lint_clean():
    violations = lint_paths([SRC_REPRO])
    assert violations == [], "\n".join(v.format() for v in violations)


# -- CLI --------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")

    assert lint_main([str(clean)]) == 0
    assert lint_main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out
    assert lint_main([str(dirty), "--select", "RPL004"]) == 0
    assert lint_main([str(dirty), "--select", "NOPE"]) == 2


def test_cli_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert lint_main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["violations"][0]["code"] == "RPL001"
    assert payload["violations"][0]["line"] == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES_BY_CODE:
        assert code in out
    # deep rules are part of the listing even without --deep
    for code in ("RPL011", "RPL012", "RPL013", "RPL014"):
        assert code in out


def test_cli_select_prefix_and_ignore(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "import time\nimport random\n"
        "t = time.time()\nr = random.random()\n"
    )
    # prefix selects both RPL001 and RPL002
    assert lint_main([str(dirty), "--select", "RPL00"]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out and "RPL002" in out
    # ignoring one of them leaves the other
    assert lint_main([str(dirty), "--ignore", "RPL001"]) == 1
    out = capsys.readouterr().out
    assert "RPL001" not in out and "RPL002" in out
    # ignoring everything is clean
    assert lint_main([str(dirty), "--ignore", "RPL"]) == 0
    # unknown ignore selector is a usage error, same as --select
    assert lint_main([str(dirty), "--ignore", "XYZ"]) == 2


def test_cli_deep_rule_selection_requires_deep_flag(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(clean), "--select", "RPL011"]) == 2
    err = capsys.readouterr().err
    assert "--deep" in err
    assert lint_main([str(clean), "--deep", "--select", "RPL011"]) == 0


def test_cli_github_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert lint_main([str(dirty), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert f"::error file={dirty},line=2,col=5,title=RPL001::" in out
    assert lint_main([str(dirty), "--select", "RPL004",
                      "--format", "github"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_baseline_suppresses_recorded_findings(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    baseline = str(tmp_path / "baseline.json")
    # --update-baseline requires --baseline
    assert lint_main([str(dirty), "--update-baseline"]) == 2
    capsys.readouterr()
    assert lint_main([str(dirty), "--baseline", baseline,
                      "--update-baseline"]) == 0
    assert "1 fingerprint(s)" in capsys.readouterr().out
    # the recorded finding no longer fails the run
    assert lint_main([str(dirty), "--baseline", baseline]) == 0
    # a new finding still does
    dirty.write_text(
        "import time\nimport random\n"
        "t = time.time()\nr = random.random()\n"
    )
    assert lint_main([str(dirty), "--baseline", baseline]) == 1
    out = capsys.readouterr().out
    assert "RPL002" in out and "RPL001" not in out


def test_cli_ast_cache_roundtrip(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    cache = str(tmp_path / "cache.pickle")
    assert lint_main([str(dirty), "--ast-cache", cache]) == 1
    assert os.path.exists(cache)
    first = capsys.readouterr().out
    # warm run reuses the parse and reports identically
    assert lint_main([str(dirty), "--ast-cache", cache]) == 1
    assert capsys.readouterr().out == first
    # a corrupt cache degrades to re-parsing, never to a crash
    with open(cache, "wb") as fh:
        fh.write(b"not a pickle")
    assert lint_main([str(dirty), "--ast-cache", cache]) == 1
    assert capsys.readouterr().out == first
    # an edit invalidates the stale entry
    assert lint_main([str(dirty), "--ast-cache", cache]) == 1
    capsys.readouterr()
    dirty.write_text("x = 1\n")
    assert lint_main([str(dirty), "--ast-cache", cache]) == 0


def test_repro_cli_lint_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", SRC_REPRO]) == 0
    assert "clean" in capsys.readouterr().out


def test_repro_cli_lint_deep_subcommand(capsys):
    from repro.cli import main as repro_main

    baseline = os.path.join(
        os.path.dirname(__file__), "..", "lint-baseline.json"
    )
    assert repro_main([
        "lint", SRC_REPRO, "--deep", "--baseline", baseline,
    ]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_explain_shallow_rule(capsys):
    assert lint_main(["--explain", "RPL001"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("RPL001 — ")
    assert "rationale:" in out


def test_cli_explain_deep_rule_without_deep_flag(capsys):
    # deep rules are explainable without --deep; the docstring carries
    # the positive/negative example pair
    assert lint_main(["--explain", "rpl021"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("RPL021 — guarded-field-discipline")
    assert "Positive (flagged)::" in out
    assert "Negative (clean)::" in out


def test_cli_explain_unknown_code_exits_2(capsys):
    assert lint_main(["--explain", "RPL999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule code" in err
    assert "RPL021" in err  # the known-codes list includes deep rules
