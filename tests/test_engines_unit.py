"""Fine-grained engine unit tests: cost-model internals per system."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec, GB
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for
from repro.engines.base import RunResult
from repro.engines.common import COSTS
from repro.engines.spark import (
    EDGE_LIST_SIZE_FACTOR,
    default_partitions,
    tuned_partitions,
)


def run(key, workload_name, dataset, machines=16, **kw):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines, **kw))


class TestPhaseAccounting:
    """Invariants of the load/execute/save/overhead decomposition."""

    @pytest.mark.parametrize("key", ["BV", "G", "GL-S-R-I", "S", "FG", "V"])
    def test_total_is_sum_of_phases(self, tiny_twitter, key):
        r = run(key, "khop", tiny_twitter)
        assert r.total_time == pytest.approx(
            r.load_time + r.execute_time + r.save_time + r.overhead_time
        )

    @pytest.mark.parametrize("key", ["BV", "G", "GL-S-R-I"])
    def test_failed_run_keeps_partial_times(self, small_wrn, key):
        r = run(key, "wcc", small_wrn, 16)
        if not r.ok:
            # whatever phase failed, accumulated time is recorded
            assert r.total_time >= 0
            assert r.failure_detail

    def test_deterministic_across_runs(self, tiny_twitter):
        a = run("BV", "pagerank", tiny_twitter)
        b = run("BV", "pagerank", tiny_twitter)
        assert a.total_time == pytest.approx(b.total_time)
        assert a.network_bytes == pytest.approx(b.network_bytes)

    @pytest.mark.parametrize("key", ["BV", "G"])
    def test_bigger_cluster_not_slower_execute_on_analytics(
        self, small_twitter, key
    ):
        small = run(key, "pagerank", small_twitter, 16)
        large = run(key, "pagerank", small_twitter, 128)
        assert large.execute_time < small.execute_time


class TestGiraphInternals:
    def test_memory_labels(self, small_twitter):
        engine = make_engine("G")
        workload = workload_for(engine, "pagerank", small_twitter)
        cluster = Cluster(ClusterSpec(16), num_workers=15)
        result = RunResult(system="G", workload="pagerank",
                           dataset="twitter", cluster_size=16)
        engine._load(small_twitter, workload, cluster, result)
        assert cluster.memory.label_bytes(0, "jvm") > 0
        assert cluster.memory.label_bytes(0, "vertices") > 0
        assert cluster.memory.label_bytes(0, "edges") > 0

    def test_message_buffers_freed_between_supersteps(self, tiny_twitter):
        engine = make_engine("G")
        workload = workload_for(engine, "khop", tiny_twitter)
        cluster = Cluster(ClusterSpec(16), num_workers=15)
        result = RunResult(system="G", workload="khop",
                           dataset="twitter", cluster_size=16)
        engine._load(tiny_twitter, workload, cluster, result)
        engine._execute(tiny_twitter, workload, cluster, result, 1.0)
        assert cluster.memory.label_bytes(0, "messages") == 0

    def test_wcc_first_superstep_uncombined(self, tiny_twitter):
        """WCC's discovery superstep ships bigger buffers (§5.8)."""
        engine = make_engine("G")
        pr = run("G", "pagerank", tiny_twitter)
        wcc = run("G", "wcc", tiny_twitter)
        # the uncombined first superstep shows up as a memory spike
        assert wcc.peak_memory_bytes > pr.peak_memory_bytes


class TestGraphLabInternals:
    def test_auto_uses_grid_at_16(self, small_twitter):
        r = run("GL-S-A-I", "khop", small_twitter, 16)
        from repro.engines.common import cached_edge_partition

        p = cached_edge_partition("twitter", "small", "auto", 16)
        assert p.method == "grid"
        assert r.ok

    def test_replication_drives_memory(self, small_twitter):
        rand = run("GL-S-R-I", "pagerank", small_twitter, 64)
        auto = run("GL-S-A-I", "pagerank", small_twitter, 64)
        assert rand.extras["replication_factor"] > auto.extras["replication_factor"]
        assert rand.total_memory_bytes > auto.total_memory_bytes

    def test_approximate_pagerank_cheaper(self, small_twitter):
        exact = run("GL-S-R-I", "pagerank", small_twitter)
        approx = run("GL-S-R-T", "pagerank", small_twitter)
        assert approx.execute_time < exact.execute_time


class TestHadoopInternals:
    def test_per_iteration_io_dominates(self, small_twitter):
        r = run("HD", "pagerank", small_twitter)
        # Hadoop re-reads and re-writes the graph every iteration: disk
        # traffic is iterations x dataset-scale
        expected_floor = r.iterations * small_twitter.profile.raw_size_bytes
        total_disk = r.extras["cpu_iowait_seconds"]
        assert r.network_bytes > small_twitter.profile.raw_size_bytes
        assert total_disk > 0

    def test_haloop_caches_cut_network(self, small_twitter):
        hd = run("HD", "pagerank", small_twitter)
        hl = run("HL", "pagerank", small_twitter)
        # HaLoop stops shuffling the invariant graph after iteration 1;
        # messages still flow, so the saving is partial (< 2x, §5.10)
        assert hl.network_bytes < 0.75 * hd.network_bytes

    def test_memory_flat_across_datasets(self, small_twitter, small_uk):
        a = run("HD", "khop", small_twitter)
        b = run("HD", "khop", small_uk)
        # streaming engines: memory independent of graph size
        assert a.peak_memory_bytes == pytest.approx(b.peak_memory_bytes)


class TestSparkInternals:
    def test_edge_list_bigger_than_adj(self, small_twitter):
        assert EDGE_LIST_SIZE_FACTOR > 1.3

    def test_default_partitions_track_blocks(self, small_twitter, small_uk):
        assert default_partitions(small_uk) > default_partitions(small_twitter)

    def test_tuned_has_floor_and_cap(self, small_twitter):
        assert tuned_partitions(small_twitter, 1000) <= 2000
        assert tuned_partitions(small_twitter, 1000) >= 500

    def test_lineage_memory_grows_with_iterations(self, small_twitter):
        pr = run("S", "pagerank", small_twitter, 64)    # ~40 iterations
        khop = run("S", "khop", small_twitter, 64)      # 3 iterations
        pr_lineage = pr.total_memory_bytes
        khop_lineage = khop.total_memory_bytes
        assert pr_lineage > khop_lineage


class TestVerticaInternals:
    def test_traversal_writes_less_than_analytics(self, small_uk):
        pr = run("V", "pagerank", small_uk)
        sssp = run("V", "sssp", small_uk)
        # SSSP's active-vertex temp table keeps the per-iteration write
        # small (§2.6's optimization)
        pr_per_iter = pr.execute_time / pr.iterations
        sssp_per_iter = sssp.execute_time / max(sssp.iterations, 1)
        assert sssp_per_iter < pr_per_iter * 1.5

    def test_connection_cost_scales(self, small_uk):
        r32 = run("V", "khop", small_uk, 32)
        r128 = run("V", "khop", small_uk, 128)
        # per-machine connection overhead keeps V from scaling (§5.11)
        assert r128.execute_time > 0.5 * r32.execute_time


class TestGellyInternals:
    def test_serialized_memory_smaller_than_giraph(self, small_uk):
        fg = run("FG", "wcc", small_uk, 64)
        g = run("G", "wcc", small_uk, 64)
        assert fg.total_memory_bytes < 0.5 * g.total_memory_bytes

    def test_restart_charged_every_run(self, tiny_twitter):
        a = run("FG", "khop", tiny_twitter)
        b = run("FG", "pagerank", tiny_twitter)
        assert a.overhead_time == pytest.approx(b.overhead_time)
        assert a.overhead_time >= 45.0


class TestSingleThreadInternals:
    def test_memory_exceeds_single_worker(self, small_wrn):
        r = run("ST", "wcc", small_wrn)
        assert r.peak_memory_bytes > 30.5 * GB   # needs the big machine

    def test_ops_recorded(self, tiny_twitter):
        r = run("ST", "sssp", tiny_twitter)
        assert r.extras["ops"] > 0

    def test_direction_optimization_saves_ops_on_powerlaw(self, small_twitter):
        from repro.engines.single_thread import direction_optimizing_bfs

        _, hybrid_ops = direction_optimizing_bfs(
            small_twitter.graph, small_twitter.sssp_source
        )
        # a pure top-down BFS examines every out-edge of every reached
        # vertex; the hybrid should beat that on a power-law graph
        _, topdown_ops = direction_optimizing_bfs(
            small_twitter.graph, small_twitter.sssp_source, alpha=1e18
        )
        assert hybrid_ops < topdown_ops
