"""Unit tests for repro.graph.structures."""

import numpy as np
import pytest

from repro.graph import EdgeListError, Graph, GraphBuilder, from_edges


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_vertices_without_edges(self):
        g = Graph(4, [(0, 1)])
        assert g.num_vertices == 4
        assert g.num_edges == 1
        assert g.out_degree(3) == 0

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(EdgeListError):
            Graph(2, [(0, 5)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(EdgeListError):
            Graph(2, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(EdgeListError):
            Graph(-1, [])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(EdgeListError):
            Graph(3, np.array([[0, 1, 2]]))

    def test_duplicate_edges_kept(self):
        g = Graph(2, [(0, 1), (0, 1)])
        assert g.num_edges == 2
        assert list(g.out_neighbors(0)) == [1, 1]

    def test_from_edges_infers_vertex_count(self):
        g = from_edges([(0, 4)])
        assert g.num_vertices == 5

    def test_from_edges_empty(self):
        g = from_edges([])
        assert g.num_vertices == 0

    def test_repr_mentions_shape(self, diamond_graph):
        assert "vertices=4" in repr(diamond_graph)
        assert "edges=4" in repr(diamond_graph)


class TestAdjacency:
    def test_out_neighbors_sorted_per_vertex(self):
        g = Graph(4, [(1, 3), (1, 0), (1, 2)])
        assert list(g.out_neighbors(1)) == [0, 2, 3]

    def test_out_degrees_match_neighbors(self, diamond_graph):
        degrees = diamond_graph.out_degrees()
        for v in range(diamond_graph.num_vertices):
            assert degrees[v] == len(diamond_graph.out_neighbors(v))

    def test_in_neighbors(self, diamond_graph):
        assert sorted(diamond_graph.in_neighbors(3).tolist()) == [1, 2]
        assert list(diamond_graph.in_neighbors(0)) == []

    def test_in_degrees_sum_equals_edges(self, diamond_graph):
        assert diamond_graph.in_degrees().sum() == diamond_graph.num_edges

    def test_in_degree_single(self, diamond_graph):
        assert diamond_graph.in_degree(3) == 2

    def test_edge_sources_align_with_targets(self, diamond_graph):
        src = diamond_graph.edge_sources()
        dst = diamond_graph.edge_targets()
        assert len(src) == len(dst) == diamond_graph.num_edges
        assert set(zip(src.tolist(), dst.tolist())) == {
            (0, 1), (0, 2), (1, 3), (2, 3)
        }

    def test_edges_iterator_matches_edge_array(self, cycle_graph):
        assert list(cycle_graph.edges()) == [
            tuple(row) for row in cycle_graph.edge_array()
        ]


class TestTransformations:
    def test_reversed_flips_edges(self, diamond_graph):
        rev = diamond_graph.reversed()
        assert set(rev.edges()) == {(1, 0), (2, 0), (3, 1), (3, 2)}

    def test_reversed_twice_is_identity(self, diamond_graph):
        assert diamond_graph.reversed().reversed() == diamond_graph

    def test_undirected_contains_both_directions(self, diamond_graph):
        und = diamond_graph.undirected()
        edges = set(und.edges())
        assert (0, 1) in edges and (1, 0) in edges

    def test_undirected_deduplicates(self):
        g = from_edges([(0, 1), (1, 0)])
        assert g.undirected().num_edges == 2

    def test_self_edge_counting(self):
        g = from_edges([(0, 0), (0, 1), (1, 1)])
        assert g.count_self_edges() == 2

    def test_without_self_edges(self):
        g = from_edges([(0, 0), (0, 1), (1, 1)])
        clean = g.without_self_edges()
        assert clean.count_self_edges() == 0
        assert clean.num_edges == 1
        assert clean.num_vertices == g.num_vertices

    def test_subgraph_edges_mask(self, diamond_graph):
        mask = np.array([True, False, True, False])
        sub = diamond_graph.subgraph_edges(mask)
        assert sub.num_edges == 2
        assert sub.num_vertices == diamond_graph.num_vertices

    def test_subgraph_edges_bad_mask_rejected(self, diamond_graph):
        with pytest.raises(EdgeListError):
            diamond_graph.subgraph_edges(np.array([True]))


class TestEquality:
    def test_equal_graphs(self):
        a = from_edges([(0, 1), (1, 2)])
        b = from_edges([(1, 2), (0, 1)])
        assert a == b

    def test_unequal_graphs(self):
        assert from_edges([(0, 1)]) != from_edges([(1, 0)])

    def test_edge_bytes(self, diamond_graph):
        assert diamond_graph.edge_bytes() == 4 * 8
        assert diamond_graph.edge_bytes(bytes_per_edge=16) == 64


class TestGraphBuilder:
    def test_remaps_sparse_ids(self):
        b = GraphBuilder()
        b.add_edge(1000, 2000)
        b.add_edge(2000, 3000)
        g = b.build()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_id_map_first_seen_order(self):
        b = GraphBuilder()
        b.add_edge(50, 10)
        assert b.id_map() == {50: 0, 10: 1}

    def test_add_vertex_without_edges(self):
        b = GraphBuilder()
        b.add_vertex(7)
        b.add_edge(8, 9)
        g = b.build()
        assert g.num_vertices == 3
        assert g.out_degree(0) == 0

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2), (2, 0)])
        assert b.build().num_edges == 3

    def test_empty_builder(self):
        assert GraphBuilder().build().num_vertices == 0

    def test_num_vertices_property(self):
        b = GraphBuilder()
        b.add_edge(1, 2)
        assert b.num_vertices == 2
