"""Tests for the findings verifier and the vertical-scaling extension."""

import pytest

from repro.core import (
    FINDINGS,
    Finding,
    verify_all_findings,
    vertical_scaling_experiment,
)


class TestFindingsVerifier:
    @pytest.fixture(scope="class")
    def findings(self):
        return verify_all_findings()

    def test_covers_the_papers_list(self, findings):
        assert len(findings) == len(FINDINGS) == 8
        keys = {f.key for f in findings}
        assert "blogel-winner" in keys
        assert "cost-metric" in keys

    def test_all_supported(self, findings):
        unsupported = [f.key for f in findings if not f.supported]
        assert unsupported == []

    def test_every_finding_cites_a_section(self, findings):
        assert all(f.section.startswith("§") for f in findings)

    def test_evidence_attached(self, findings):
        assert all(f.evidence for f in findings)

    def test_blogel_evidence_names_winners(self, findings):
        blogel = next(f for f in findings if f.key == "blogel-winner")
        assert blogel.evidence["execution_winner"] == "BB"
        assert blogel.evidence["end_to_end_winner"] == "BV"

    def test_repr_shows_verdict(self):
        f = Finding(key="x", claim="c", section="§1", supported=True)
        assert "SUPPORTED" in repr(f)


class TestVerticalScaling:
    def test_compute_bound_workload_benefits(self, small_twitter):
        points = vertical_scaling_experiment(
            "BV", "pagerank", "twitter", cores_options=(2, 8)
        )
        assert points[0].time > 1.8 * points[1].time

    def test_coordination_bound_workload_does_not(self):
        points = vertical_scaling_experiment(
            "BV", "sssp", "wrn", cores_options=(2, 16)
        )
        # barriers don't shrink with cores: < 10% gain from 8x the cores
        assert points[0].time < 1.1 * points[1].time

    def test_memory_scaling_rescues_oom(self):
        # GraphLab random cannot load WRN on 16 standard machines (§5.2);
        # fatter machines (more memory) fix that without more machines
        thin = vertical_scaling_experiment(
            "GL-S-R-I", "pagerank", "wrn", cores_options=(4,),
            scale_memory=False,
        )
        fat = vertical_scaling_experiment(
            "GL-S-R-I", "pagerank", "wrn", cores_options=(16,),
            scale_memory=True,
        )
        assert not thin[0].result.ok
        assert fat[0].result.ok

    def test_memory_reported(self):
        points = vertical_scaling_experiment(
            "BV", "khop", "twitter", cores_options=(4, 8), scale_memory=True
        )
        assert points[1].memory_gb == pytest.approx(2 * points[0].memory_gb)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            vertical_scaling_experiment("BV", "khop", "twitter",
                                        cores_options=(0,))

    def test_speedup_saturates(self, small_twitter):
        points = vertical_scaling_experiment(
            "BV", "pagerank", "twitter", cores_options=(2, 4, 8, 16)
        )
        times = [p.time for p in points]
        # monotone improvement...
        assert times == sorted(times, reverse=True)
        # ...but sublinear: 8x the cores buys well under 8x the speed
        assert times[0] / times[-1] < 6.0
