"""repro.serve: the benchmark-as-a-service daemon.

The serving guarantees everything else leans on: the fair queue's
deterministic service order (strict priorities, weighted shares,
admission control), the typed protocol's validation and framing, and —
above all — that a served grid is *bit-equal* to the one-shot executor
run the client would have computed alone (``same_results`` plus
byte-identical per-cell journals), with overlapping submissions served
from the shared warm cache instead of recomputed.
"""

import json
import threading

import pytest

from repro.core.runner import ExperimentSpec, run_grid
from repro.exec.executor import execute_specs
from repro.exec.serialize import result_to_payload
from repro.obs import Journal, render_summary
from repro.obs import report as perf
from repro.serve import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    FairQueue,
    Job,
    JobRequest,
    JobRunner,
    ProtocolError,
    QueueFullError,
    ServeClient,
    ServeDaemon,
    ServeError,
    ServerStats,
    grid_from_payloads,
    parse_address,
    percentile,
    server_observation,
)
from repro.serve.protocol import dumps_message, recv_message


def request(client="alice", systems=("G",), workloads=("pagerank",),
            datasets=("twitter",), sizes=(16,), priority=0, weight=1.0,
            deadline=0.0):
    return JobRequest(
        client=client, systems=tuple(systems), workloads=tuple(workloads),
        datasets=tuple(datasets), cluster_sizes=tuple(sizes),
        dataset_size="tiny", priority=priority, weight=weight,
        deadline=deadline,
    )


def job(seq, **kwargs):
    return Job(id=f"j-{seq:06d}", request=request(**kwargs), seq=seq)


# -- protocol ---------------------------------------------------------------


def test_job_request_roundtrips_through_the_wire_form():
    original = request(systems=("G", "BV"), sizes=(16, 32), priority=2,
                       weight=1.5)
    recovered = JobRequest.from_dict(original.to_dict())
    assert recovered == original
    assert recovered.cells == 4


@pytest.mark.parametrize("field,value", [
    ("systems", ("nope",)),
    ("workloads", ("sorting",)),
    ("datasets", ("imaginary",)),
    ("cluster_sizes", (0,)),
    ("cluster_sizes", (True,)),
    ("weight", 0.0),
    ("weight", -1.0),
    ("priority", 1.5),
])
def test_job_request_validation_rejects_bad_coordinates(field, value):
    payload = request().to_dict()
    payload[field] = list(value) if isinstance(value, tuple) else value
    with pytest.raises(ProtocolError):
        JobRequest.from_dict(payload)


def test_job_request_to_spec_matches_the_executor_shape():
    spec = request(systems=("G", "BV"), sizes=(16,)).to_spec()
    assert isinstance(spec, ExperimentSpec)
    assert spec.systems == ("G", "BV")
    assert spec.dataset_size == "tiny"


def test_framing_is_canonical_and_roundtrips(tmp_path):
    message = {"op": "ping", "b": 2, "a": 1}
    frame = dumps_message(message)
    assert frame == b'{"a":1,"b":2,"op":"ping"}\n'
    path = tmp_path / "frame.bin"
    path.write_bytes(frame + b"not json\n")
    with open(path, "rb") as fh:
        assert recv_message(fh) == {"a": 1, "b": 2, "op": "ping"}
        with pytest.raises(ProtocolError):
            recv_message(fh)
        assert recv_message(fh) is None  # clean EOF


def test_parse_address_classifies_unix_and_tcp():
    assert parse_address("./serve.sock") == ("unix", "./serve.sock")
    assert parse_address("plain-name") == ("unix", "plain-name")
    assert parse_address("127.0.0.1:7070") == ("tcp", ("127.0.0.1", 7070))
    assert parse_address("not:aport") == ("unix", "not:aport")


# -- the fair queue ---------------------------------------------------------


def test_higher_priority_always_preempts_queued_lower_priority():
    queue = FairQueue(max_cells=64)
    low = job(1, client="batch", priority=0)
    high = job(2, client="urgent", priority=5)
    assert queue.offer(low) is None
    assert queue.offer(high) is None
    assert queue.take() is high
    assert queue.take() is low


def test_weighted_fairness_gives_shares_proportional_to_weight():
    # A (weight 2) and B (weight 1) interleave 1-cell submissions; over
    # the first six services A must get exactly its 2:1 share
    queue = FairQueue(max_cells=64)
    seq = 0
    for _ in range(4):
        for client, weight in (("A", 2.0), ("B", 1.0)):
            seq += 1
            assert queue.offer(job(seq, client=client, weight=weight)) is None
    served = [queue.take().request.client for _ in range(6)]
    assert served.count("A") == 4
    assert served.count("B") == 2
    assert served[0] == "A"  # the lightest virtual-finish tag runs first


def test_service_order_is_deterministic_via_the_seq_tiebreak():
    queue = FairQueue(max_cells=64)
    for seq in range(1, 4):
        assert queue.offer(job(seq, client=f"c{seq}")) is None
    # identical tags resolve by submission order, so the order is stable
    assert [queue.take().seq for _ in range(3)] == [1, 2, 3]


def test_clients_cannot_bank_idle_credit():
    # a client that sat idle while others were served starts at the
    # queue's virtual time, not at its stale last tag
    queue = FairQueue(max_cells=64)
    assert queue.offer(job(1, client="busy")) is None
    assert queue.take().request.client == "busy"
    assert queue.offer(job(2, client="busy")) is None
    assert queue.offer(job(3, client="idle")) is None
    busy, idle = queue.order()
    # both started at the served vtime: tags are equal, seq breaks tie
    assert (busy.request.client, idle.request.client) == ("busy", "idle")
    assert busy.vfinish == idle.vfinish


def test_admission_control_rejects_with_a_retry_hint():
    queue = FairQueue(max_cells=4)
    assert queue.offer(job(1, systems=("G", "BV"), sizes=(16,))) is None
    retry = queue.offer(job(2, systems=("G", "BV", "S"), sizes=(16,)))
    assert retry == pytest.approx(0.05)  # 1 overflow cell
    assert len(queue) == 1  # the rejected job never entered
    retry = queue.offer(job(3, systems=("G",) * 1, sizes=(16, 32, 64)))
    assert retry == pytest.approx(0.05)
    assert queue.offer(job(4)) is None  # 1 cell still fits


def test_cancel_mid_queue_removes_the_job_from_service():
    queue = FairQueue(max_cells=64)
    keep, drop = job(1, client="keep"), job(2, client="drop")
    assert queue.offer(keep) is None
    assert queue.offer(drop) is None
    assert queue.cancel(drop.id) is True
    assert drop.state == JOB_CANCELLED
    assert queue.position(drop.id) is None
    assert [j.request.client for j in queue.order()] == ["keep"]
    assert queue.take() is keep
    assert queue.take() is None
    assert queue.cancel(keep.id) is False  # no longer queued


# -- stats ------------------------------------------------------------------


def test_percentile_is_nearest_rank_and_member_of_sample():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(values, 50) == 3.0
    assert percentile(values, 99) == 5.0
    assert percentile(values, 100) == 5.0
    assert percentile([], 50) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 0)


def test_server_stats_aggregates_and_bills_per_client():
    stats = ServerStats()
    done = job(1, client="alice", systems=("G", "BV"))
    done.state = JOB_DONE
    done.submitted_host, done.started_host, done.finished_host = 1.0, 2.0, 4.0
    done.cache_hits, done.executed, done.cost_dollars = 1, 1, 7.5
    stats.record_job(done)
    stats.record_rejection("bob")
    snapshot = stats.snapshot()
    assert snapshot["jobs"] == 1 and snapshot["rejected"] == 1
    assert snapshot["cells"] == 2 and snapshot["cache_hit_rate"] == 0.5
    assert snapshot["p50_latency"] == pytest.approx(3.0)
    assert snapshot["p50_queue_wait"] == pytest.approx(1.0)
    assert snapshot["per_client"]["alice"]["dollars"] == 7.5
    assert snapshot["per_client"]["bob"]["jobs"] == 0.0


def test_cancelled_jobs_count_but_never_bill_or_sample():
    stats = ServerStats()
    gone = job(1)
    gone.state = JOB_CANCELLED
    stats.record_job(gone)
    snapshot = stats.snapshot()
    assert snapshot["jobs_cancelled"] == 1
    assert snapshot["cells"] == 0 and snapshot["dollars"] == 0.0
    assert snapshot["p50_latency"] == 0.0


# -- end-to-end: daemon + clients over a real socket ------------------------


@pytest.fixture()
def daemon(tmp_path):
    # TCP on a kernel-chosen port: unix paths under pytest's tmp dirs
    # can exceed the AF_UNIX 108-byte limit
    server = ServeDaemon(
        address="127.0.0.1:0",
        cache=tmp_path / "cache",
        max_queue_cells=64,
        journal_path=tmp_path / "_server.jsonl",
    ).start()
    yield server
    server.stop()


def overlapping_specs():
    """Three clients' grids sharing the (G, pagerank, twitter, 16) cell."""
    return {
        "alice": dict(systems=("G", "BV"), sizes=(16,)),
        "bob": dict(systems=("G",), sizes=(16, 32)),
        "carol": dict(systems=("G", "BV"), sizes=(16, 32)),
    }


def test_served_grids_are_bit_equal_to_the_oneshot_executor(daemon):
    payloads_by_client = {}
    for name, shape in overlapping_specs().items():
        with ServeClient(daemon.address, client=name) as link:
            job_id = link.submit(link.request(
                workloads=("pagerank",), datasets=("twitter",),
                dataset_size="tiny", systems=shape["systems"],
                cluster_sizes=shape["sizes"]))
            link.wait(job_id, timeout=120)
            payloads_by_client[name] = link.fetch_payloads(job_id)

    for name, shape in overlapping_specs().items():
        served = grid_from_payloads(payloads_by_client[name])
        oneshot = run_grid(ExperimentSpec(
            systems=shape["systems"], workloads=("pagerank",),
            datasets=("twitter",), cluster_sizes=shape["sizes"],
            dataset_size="tiny"))
        assert served.same_results(oneshot)

    # byte-identical journals: the served payload carries the exact
    # canonical journal text the one-shot executor would serialize
    oneshot = execute_specs([ExperimentSpec(
        systems=("G", "BV"), workloads=("pagerank",), datasets=("twitter",),
        cluster_sizes=(16, 32), dataset_size="tiny")], jobs=1, cache=None)
    expected = {
        (r.system, r.cluster_size): result_to_payload(r)["journal"]
        for r in oneshot.grid.cells.values()
    }
    for payload in payloads_by_client["carol"]:
        record = payload["record"]
        assert payload["journal"] == expected[
            record["system"], record["cluster_size"]]


def test_overlapping_submissions_hit_the_shared_cache(daemon):
    with ServeClient(daemon.address, client="warm") as link:
        first = link.submit(link.request(
            systems=("G",), workloads=("pagerank",), datasets=("twitter",),
            cluster_sizes=(16,), dataset_size="tiny"))
        link.wait(first, timeout=120)
    with ServeClient(daemon.address, client="reuse") as link:
        second = link.submit(link.request(
            systems=("G",), workloads=("pagerank",), datasets=("twitter",),
            cluster_sizes=(16,), dataset_size="tiny"))
        status = link.wait(second, timeout=120)
        assert status["cache_hits"] == 1 and status["executed"] == 0
        stats = link.stats()["stats"]
    assert stats["cache_hit_rate"] == 0.5
    assert stats["per_client"]["reuse"]["dollars"] == pytest.approx(
        stats["per_client"]["warm"]["dollars"])


def test_result_stream_resumes_from_a_cursor_across_connections(daemon):
    with ServeClient(daemon.address, client="alice") as link:
        job_id = link.submit(link.request(
            systems=("G", "BV"), workloads=("pagerank",),
            datasets=("twitter",), cluster_sizes=(16,), dataset_size="tiny"))
        link.wait(job_id, timeout=120)
        full = link.fetch_payloads(job_id)
    assert len(full) == 2
    # a brand-new connection re-attaches to the same job id and
    # continues from an arbitrary cursor
    with ServeClient(daemon.address, client="alice-again") as link:
        tail = link.fetch_payloads(job_id, after=1)
        assert tail == full[1:]
        batch = link.results(job_id, after=2)
        assert batch["payloads"] == [] and batch["complete"] is True


def test_cancel_through_the_protocol_and_unknown_ops(daemon):
    with ServeClient(daemon.address, client="alice") as link:
        # unknown op and unknown job are protocol errors, not crashes
        assert link.call({"op": "nonsense"})["error"] == "unknown-op"
        with pytest.raises(ServeError):
            link.status("j-999999")
        job_id = link.submit(link.request(
            systems=("G",), workloads=("pagerank",), datasets=("twitter",),
            cluster_sizes=(16,), dataset_size="tiny"))
        link.wait(job_id, timeout=120)
        with pytest.raises(ServeError):  # terminal jobs are not cancellable
            link.cancel(job_id)
        assert link.ping()["version"] == 1


def test_server_journal_classifies_renders_and_diffs(daemon, tmp_path):
    with ServeClient(daemon.address, client="alice") as link:
        job_id = link.submit(link.request(
            systems=("G",), workloads=("pagerank",), datasets=("twitter",),
            cluster_sizes=(16,), dataset_size="tiny"))
        link.wait(job_id, timeout=120)
    path = daemon.write_journal(tmp_path / "server.jsonl")

    assert perf.classify_path(path) == perf.KIND_SERVER
    summary = render_summary(Journal.read(path))
    assert "server" in summary and "hit-rate" in summary

    source = perf.load_source(path)
    assert len(source.servers) == 1
    row = source.servers[0]
    assert row.jobs == 1 and row.cells == 1
    assert "alice" in row.per_client
    report = perf.render_report([source])
    assert "### Serving" in report and "alice" in report

    # the regression gate: a self-diff is clean, a degraded serving
    # profile (slower p99, colder cache, higher bill) gates
    clean = perf.diff_sources(source, perf.load_source(path))
    assert clean.exit_code == 0 and clean.compared_servers == 1
    worse = perf.load_source(path)
    worse.servers[0].p99_latency *= 10
    worse.servers[0].cache_hit_rate = 0.0
    degraded = perf.diff_sources(source, worse)
    assert degraded.exit_code == 1
    metrics = {entry.metric for entry in degraded.regressions}
    assert "p99 latency seconds" in metrics


def test_rejected_submissions_back_off_and_eventually_land(tmp_path):
    # a queue bounded at 2 cells forces queue-full responses while the
    # scheduler drains; the client's retry loop must absorb them
    server = ServeDaemon(
        address="127.0.0.1:0", cache=tmp_path / "cache", max_queue_cells=2,
    ).start()
    try:
        with ServeClient(server.address, client="pushy") as link:
            ids = [
                link.submit(link.request(
                    systems=("G", "BV"), workloads=("pagerank",),
                    datasets=("twitter",), cluster_sizes=(16,),
                    dataset_size="tiny"))
                for _ in range(4)
            ]
            for job_id in ids:
                assert link.wait(job_id, timeout=120)["state"] == JOB_DONE
            stats = link.stats()["stats"]
        assert stats["jobs_done"] == 4
    finally:
        server.stop()


def test_server_observation_meta_matches_the_snapshot():
    stats = ServerStats()
    done = job(1, client="alice")
    done.state = JOB_DONE
    done.submitted_host, done.started_host, done.finished_host = 0.0, 0.5, 1.0
    done.executed, done.cost_dollars = 1, 2.5
    stats.record_job(done)
    obs = server_observation(stats, "127.0.0.1:1")
    assert obs.meta["kind"] == "server"
    assert obs.meta["dollars"] == 2.5
    assert obs.metrics.value("serve.cells") == 1
    journal = obs.journal()
    assert Journal.loads(journal.dumps()).meta == journal.meta


# -- hardening: deadlines, shedding, eviction, drain -------------------------


@pytest.fixture()
def cold():
    """An unstarted daemon: the policy layer without any threads."""
    server = ServeDaemon(address="127.0.0.1:0", cache=None, max_queue_cells=8)
    yield server
    server.server.server_close()


def submit_message(**kwargs):
    return {"op": "submit", "job": request(**kwargs).to_dict()}


def test_deadline_round_trips_and_rejects_negatives():
    original = request(deadline=1.5)
    assert JobRequest.from_dict(original.to_dict()) == original
    payload = request().to_dict()
    payload["deadline"] = -1.0
    with pytest.raises(ProtocolError):
        JobRequest.from_dict(payload)
    with pytest.raises(ValueError):
        ServeDaemon(address="127.0.0.1:0", cache=None, default_deadline=-1.0)


def test_submit_stamps_deadlines_from_request_or_daemon_default(cold):
    # no deadline anywhere: the job never expires
    free = cold._op_submit(submit_message())
    assert cold.jobs[free["job"]].deadline_host == 0.0
    # the request's own budget counts from submission
    hurried = cold._op_submit(submit_message(deadline=5.0))
    job = cold.jobs[hurried["job"]]
    assert job.deadline_host - job.submitted_host == pytest.approx(5.0)

    lax = ServeDaemon(address="127.0.0.1:0", cache=None, default_deadline=2.0)
    try:
        defaulted = lax.jobs[lax._op_submit(submit_message())["job"]]
        assert (defaulted.deadline_host - defaulted.submitted_host
                == pytest.approx(2.0))
        own = lax.jobs[lax._op_submit(submit_message(deadline=5.0))["job"]]
        assert own.deadline_host - own.submitted_host == pytest.approx(5.0)
    finally:
        lax.server.server_close()


def test_should_stop_honours_cancel_then_deadline(cold):
    running = job(1)
    running.state = JOB_RUNNING
    assert cold._should_stop(running) is None

    running.cancel_requested = True
    state, error = cold._should_stop(running)
    assert state == JOB_CANCELLED and "cancelled after 0 of 1" in error

    expired = job(2)
    expired.state = JOB_RUNNING
    expired.deadline_host = 1e-9  # long past on any host clock
    state, error = cold._should_stop(expired)
    assert state == JOB_CANCELLED and "deadline-exceeded" in error
    assert cold.stats.deadline_expired == 1


def test_cancelling_a_running_job_is_cooperative_not_silent(cold):
    # the old behaviour dropped cancels of running jobs on the floor;
    # now the client is told "cancelling" and the flag is set for the
    # scheduler's next cell-boundary poll
    running = job(1)
    running.state = JOB_RUNNING
    cold.jobs[running.id] = running
    response = cold._op_cancel({"op": "cancel", "job": running.id})
    assert response["ok"] and response["cancelling"] is True
    assert running.cancel_requested
    assert running.state == JOB_RUNNING  # the effect lands at the boundary


def test_job_runner_stops_at_the_next_cell_boundary():
    runner = JobRunner(cache=None)
    victim = job(1, systems=("G", "BV"))  # 2 cells

    def publish(j, payload, from_cache):
        j.payloads.append(payload)

    def stop_after_first(j):
        return (JOB_CANCELLED, "test stop") if len(j.payloads) >= 1 else None

    outcome = runner.run_job(victim, publish, should_stop=stop_after_first)
    assert outcome.state == JOB_CANCELLED and outcome.error == "test stop"
    # the runner reports the verdict but never touches the shared record
    assert victim.state == JOB_QUEUED and victim.error is None
    assert len(victim.payloads) == 1  # the completed prefix stays streamable


def test_job_runner_returns_an_outcome_without_mutating_the_job():
    # RPL021 regression: run_job used to assign state/error/cost onto
    # the shared Job from the scheduler thread with no lock held; now
    # every mutation goes through on_cell or the returned JobOutcome
    runner = JobRunner(cache=None)
    served = job(1)
    seen = []

    def publish(j, payload, from_cache):
        seen.append((payload["record"]["system"], from_cache))
        j.payloads.append(payload)

    outcome = runner.run_job(served, publish)
    assert outcome.state == JOB_DONE and outcome.error is None
    assert outcome.cost_dollars > 0
    assert served.state == JOB_QUEUED  # untouched: the daemon applies it
    assert served.cost_dollars == 0.0
    assert [p["record"]["system"] for p in served.payloads] == ["G"]
    assert seen == [("G", False)]  # cold cache: executed, not replayed


def test_shed_for_displaces_only_strictly_lower_priority():
    queue = FairQueue(max_cells=4)
    first = job(1, client="batch", systems=("G", "BV"), priority=0)
    second = job(2, client="batch2", systems=("G", "BV"), priority=0)
    assert queue.offer(first) is None and queue.offer(second) is None

    urgent = job(3, client="urgent", systems=("G", "BV"), priority=5)
    shed = queue.shed_for(urgent)
    # the victim comes from the back of the service order
    assert [victim.id for victim in shed] == [second.id]
    assert second.state == JOB_CANCELLED
    assert queue.offer(urgent) is None

    # equal-priority work is never displaced, even when nothing fits:
    # a queue full of priority-5 jobs yields nothing to another 5
    full = FairQueue(max_cells=4)
    for seq, client in ((4, "p1"), (5, "p2")):
        assert full.offer(
            job(seq, client=client, systems=("G", "BV"), priority=5)) is None
    peer = job(6, client="peer", systems=("G", "BV"), priority=5)
    assert full.shed_for(peer) == []
    assert len(full) == 2  # untouched


def test_submit_sheds_queued_work_for_higher_priority(cold):
    # four 2-cell background jobs fill the 8-cell queue
    for client in ("a", "b", "c", "d"):
        response = cold._op_submit(
            submit_message(client=client, systems=("G", "BV"), priority=0))
        assert response["ok"]
    # an equal-priority overflow is still an honest queue-full rejection
    rejected = cold._op_submit(
        submit_message(client="e", systems=("G", "BV"), priority=0))
    assert rejected["error"] == "queue-full" and rejected["retry_after"] > 0
    assert cold.stats.rejected == 1

    admitted = cold._op_submit(
        submit_message(client="urgent", systems=("G", "BV"), priority=5))
    assert admitted["ok"]
    assert cold.stats.shed == 1
    victims = [j for j in cold.jobs.values() if j.state == JOB_CANCELLED]
    assert len(victims) == 1
    assert victims[0].error.startswith("shed:")
    assert cold.queue.backlog_cells() == 8  # still at capacity, reshaped


def test_draining_daemon_refuses_new_submissions(cold):
    response = cold._op_drain({"op": "drain"})
    assert response["ok"] and response["draining"] is True
    refused = cold._op_submit(submit_message())
    assert refused["error"] == "draining"


def test_expired_job_is_cancelled_instead_of_served(daemon):
    with ServeClient(daemon.address, client="hurried") as link:
        job_id = link.submit(link.request(
            systems=("G",), workloads=("pagerank",), datasets=("twitter",),
            cluster_sizes=(16,), dataset_size="tiny", deadline=1e-9))
        status = link.wait(job_id, timeout=60)
        assert status["state"] == JOB_CANCELLED
        assert "deadline" in status["message"]
        assert link.stats()["stats"]["deadline_expired"] >= 1


def test_cache_budget_evicts_lru_and_journals_the_count(tmp_path):
    journal_path = tmp_path / "_server.jsonl"
    server = ServeDaemon(
        address="127.0.0.1:0", cache=tmp_path / "cache", cache_budget=1,
        journal_path=journal_path,
    ).start()
    try:
        with ServeClient(server.address, client="alice") as link:
            for system in ("G", "V"):
                job_id = link.submit(link.request(
                    systems=(system,), workloads=("pagerank",),
                    datasets=("twitter",), cluster_sizes=(16,),
                    dataset_size="tiny"))
                assert link.wait(job_id, timeout=120)["state"] == JOB_DONE
            assert link.stats()["stats"]["evictions"] >= 1
        assert len(server.runner.cache) == 1  # budget held on disk too
    finally:
        server.stop()
    journal = Journal.read(journal_path)
    assert journal.meta["evictions"] >= 1


def test_drain_serves_the_backlog_then_exits_cleanly(tmp_path):
    journal_path = tmp_path / "_server.jsonl"
    server = ServeDaemon(
        address="127.0.0.1:0", cache=tmp_path / "cache",
        journal_path=journal_path,
    ).start()
    with ServeClient(server.address, client="alice") as link:
        ids = [
            link.submit(link.request(
                systems=(system,), workloads=("pagerank",),
                datasets=("twitter",), cluster_sizes=(16,),
                dataset_size="tiny"))
            for system in ("G", "BV")
        ]
        assert link.drain()["draining"] is True
    # the scheduler finishes the backlog, then takes the daemon down
    # itself -- no stop() involved
    server._scheduler.join(timeout=120)
    assert not server._scheduler.is_alive()
    server._server_thread.join(timeout=60)
    assert not server._server_thread.is_alive()
    assert [server.jobs[i].state for i in ids] == [JOB_DONE, JOB_DONE]
    server.stop()  # releases the socket and writes the journal
    assert Journal.read(journal_path).meta["jobs"] == 2


def test_stop_with_an_inflight_job_never_hangs_or_leaks(tmp_path):
    # the shutdown regression: stop() while a job is queued or running
    # must come back promptly with the scheduler joined and the job in a
    # terminal state, never a hung daemon or a leaked thread
    journal_path = tmp_path / "_server.jsonl"
    server = ServeDaemon(
        address="127.0.0.1:0", cache=tmp_path / "cache",
        journal_path=journal_path,
    ).start()
    with ServeClient(server.address, client="alice") as link:
        job_id = link.submit(link.request(
            systems=("G", "BV"), workloads=("pagerank",),
            datasets=("twitter",), cluster_sizes=(16, 32),
            dataset_size="tiny"))
    stopper = threading.Thread(target=server.stop)
    stopper.start()
    stopper.join(timeout=120)
    assert not stopper.is_alive()
    assert not server._scheduler.is_alive()
    job = server.jobs[job_id]
    assert job.done
    assert job.state in (JOB_DONE, JOB_CANCELLED, JOB_FAILED)
    if job.state == JOB_FAILED:  # never started: a clean error payload
        assert "daemon stopped" in job.error
    assert journal_path.is_file()


def test_queue_full_exhaustion_raises_typed_error_and_streams_time_out(tmp_path):
    # socket thread only: with no scheduler the queue never drains, so
    # admission control rejects forever and streams never complete
    server = ServeDaemon(
        address="127.0.0.1:0", cache=None, max_queue_cells=1,
    )
    socket_thread = threading.Thread(
        target=server.server.serve_forever, daemon=True)
    socket_thread.start()
    try:
        with ServeClient(server.address, client="pushy") as link:
            spec = dict(systems=("G",), workloads=("pagerank",),
                        datasets=("twitter",), cluster_sizes=(16,),
                        dataset_size="tiny")
            first = link.submit(link.request(**spec))
            with pytest.raises(QueueFullError) as info:
                link.submit(link.request(**spec), retries=2, backoff_cap=0.01)
            assert info.value.code == "queue-full"
            assert info.value.rejections == 3  # retries + the final attempt
            with pytest.raises(ServeError) as timed_out:
                link.fetch_payloads(first, timeout=0.2)
            assert timed_out.value.code == "timeout"
    finally:
        server.server.shutdown()
        server.server.server_close()


# -- loadgen ----------------------------------------------------------------


def test_loadgen_is_seeded_deterministic_and_bit_equal(tmp_path):
    from repro.serve.loadgen import run_loadgen

    output = tmp_path / "BENCH_serve.json"
    history = tmp_path / "history.jsonl"
    record = run_loadgen(
        clients=8, seed=11, dataset_size="tiny", max_queue_cells=16,
        output=str(output), history=str(history),
    )
    assert record["bit_equal_spotcheck"] is True
    assert record["jobs"] == 8
    assert record["cells"] >= 8
    assert record["executed"] == record["distinct_cells"]
    assert record["cache_hit_rate"] == pytest.approx(
        1.0 - record["distinct_cells"] / record["cells"])
    written = json.loads(output.read_text())
    assert written["bench"] == "serve"
    assert len(history.read_text().splitlines()) == 1
    # the record classifies and renders through the report stack
    assert perf.classify_path(output) == perf.KIND_BENCH
    report = perf.render_report([perf.load_source(output)])
    assert "Serve bench records" in report

    # same seed, same deterministic quantities (latencies are host-bound)
    again = run_loadgen(
        clients=8, seed=11, dataset_size="tiny", max_queue_cells=16,
        output=None, history=str(tmp_path / "h2.jsonl"),
    )
    for field in ("cells", "distinct_cells", "executed", "cache_hit_rate",
                  "cost_dollars"):
        assert again[field] == record[field]
