"""Tests for the CDLP extension workload (LDBC Graphalytics' fifth)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engines import make_engine, workload_for
from repro.graph import from_edges
from repro.workloads import CDLP, WorkloadKind, reference_cdlp


def run(key, dataset, machines=16):
    engine = make_engine(key)
    workload = workload_for(engine, "cdlp", dataset)
    return engine.run(dataset, workload, ClusterSpec(machines))


class TestCdlpSemantics:
    def test_two_cliques_two_communities(self):
        clique_a = [(i, j) for i in range(4) for j in range(4) if i != j]
        clique_b = [(i, j) for i in range(4, 8) for j in range(4, 8) if i != j]
        bridge = [(3, 4)]
        g = from_edges(clique_a + clique_b + bridge)
        labels = reference_cdlp(g)
        assert len({labels[i] for i in range(4)}) == 1
        assert len({labels[i] for i in range(4, 8)}) == 1
        assert labels[0] != labels[7]

    def test_isolated_vertex_keeps_own_label(self):
        g = from_edges([(0, 1)], num_vertices=3)
        labels = reference_cdlp(g)
        assert labels[2] == 2

    def test_deterministic(self, small_uk):
        a = reference_cdlp(small_uk.graph)
        b = reference_cdlp(small_uk.graph)
        assert np.array_equal(a, b)

    def test_label_is_some_vertex_id(self, tiny_twitter):
        labels = reference_cdlp(tiny_twitter.graph)
        assert labels.min() >= 0
        assert labels.max() < tiny_twitter.graph.num_vertices

    def test_host_structure_recovered_on_web(self, tiny_uk):
        """Web hosts are dense intra-link clusters: CDLP should find
        far fewer communities than vertices."""
        labels = reference_cdlp(tiny_uk.graph)
        communities = len(set(labels.tolist()))
        hosts = tiny_uk.graph.num_vertices // tiny_uk.meta()["pages_per_host"]
        assert communities <= 3 * hosts

    def test_workload_matches_reference(self, tiny_uk):
        state = CDLP().run_to_completion(tiny_uk.graph)
        assert np.array_equal(
            state.values.astype(np.int64), reference_cdlp(tiny_uk.graph)
        )

    def test_iteration_cap(self):
        # a 2-cycle oscillates; the cap terminates it
        g = from_edges([(0, 1), (1, 0)])
        state = CDLP(max_iterations=4).run_to_completion(g)
        assert state.iteration <= 4

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            CDLP(max_iterations=0)

    def test_kind_and_flags(self):
        assert CDLP.kind is WorkloadKind.ANALYTIC
        assert CDLP.needs_reverse_edges
        assert not CDLP.combinable


class TestCdlpOnEngines:
    @pytest.mark.parametrize("key", ["BV", "BB", "G", "S", "HD", "V", "FG"])
    def test_answers_exact(self, tiny_twitter, key):
        result = run(key, tiny_twitter)
        assert result.ok, result.failure_detail
        assert np.array_equal(
            result.answer.astype(np.int64), reference_cdlp(tiny_twitter.graph)
        )

    def test_graphlab_self_edge_quirk_applies(self, tiny_twitter):
        """GraphLab computes CDLP on the self-edge-free graph."""
        result = run("GL-S-R-I", tiny_twitter)
        noself = reference_cdlp(tiny_twitter.graph.without_self_edges())
        assert np.array_equal(result.answer.astype(np.int64), noself)

    def test_uncombinable_messages_cost_more(self, tiny_twitter):
        """CDLP ships full label histograms: more wire bytes than the
        combinable PageRank at similar iteration counts."""
        engine = make_engine("BV")
        cdlp = run("BV", tiny_twitter)
        pr = engine.run(
            tiny_twitter,
            workload_for(engine, "pagerank", tiny_twitter),
            ClusterSpec(16),
        )
        per_iter_cdlp = cdlp.network_bytes / cdlp.iterations
        per_iter_pr = pr.network_bytes / pr.iterations
        assert per_iter_cdlp > per_iter_pr

    def test_reverse_edge_memory_like_wcc(self, small_uk):
        """CDLP doubles Giraph's edge memory: UK at 16 OOMs (like WCC)."""
        result = run("G", small_uk)
        assert not result.ok
        assert run("G", small_uk, machines=64).ok
