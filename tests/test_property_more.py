"""Additional property-based tests: formats, cluster accounting, costs."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterSpec, MemoryAccountant, NetworkModel, R3_XLARGE
from repro.cluster.faults import FaultPlan
from repro.graph import (
    Graph,
    chunk_lines,
    read_graph,
    write_graph,
)


@st.composite
def graphs(draw, max_vertices=20, max_edges=60):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m,
    ))
    return Graph(n, edges)


class TestFormatProperties:
    @given(graphs(), st.sampled_from(["adj", "adj-long", "edge"]))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_multiset_of_edges(self, g, fmt):
        buf = io.StringIO()
        write_graph(g, buf, fmt)
        buf.seek(0)
        back = read_graph(buf, fmt)
        assert back.num_edges == g.num_edges
        assert sorted(back.edges()) != [] or g.num_edges == 0

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_adj_long_roundtrip_exact(self, g):
        # adj-long preserves every vertex, so the graph rebuilds exactly
        buf = io.StringIO()
        write_graph(g, buf, "adj-long")
        buf.seek(0)
        assert read_graph(buf, "adj-long") == g

    @given(st.lists(st.text(alphabet="ab", max_size=3), max_size=40),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_chunking_partitions_lines(self, lines, chunks):
        parts = chunk_lines(lines, chunks)
        assert len(parts) == chunks
        assert [l for part in parts for l in part] == lines
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestMemoryAccountantProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=20),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_allocate_free_roundtrip(self, sizes, machines):
        mem = MemoryAccountant(machines, R3_XLARGE)
        for i, nbytes in enumerate(sizes):
            mem.allocate(i % machines, nbytes, f"label{i}")
        for i, nbytes in enumerate(sizes):
            mem.free(i % machines, nbytes, f"label{i}")
        # float accumulation leaves sub-byte residue at most
        assert all(mem.used_bytes(m) == pytest.approx(0, abs=1e-3)
                   for m in range(machines))

    @given(st.floats(min_value=0, max_value=4e11),
           st.floats(min_value=0, max_value=0.5),
           st.integers(min_value=2, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_allocate_even_conserves_total(self, nbytes, skew, machines):
        mem = MemoryAccountant(machines, R3_XLARGE)
        try:
            mem.allocate_even(nbytes, "x", skew=skew)
        except Exception:
            return   # OOM: fine, nothing to check
        total = sum(mem.used_bytes(m) for m in range(machines))
        assert total == pytest.approx(nbytes, rel=1e-9)
        # machine 0 carries the skewed share (up to float rounding)
        assert mem.used_bytes(0) >= max(
            mem.used_bytes(m) for m in range(machines)
        ) * (1 - 1e-9) - 1e-3


class TestNetworkProperties:
    @given(st.floats(min_value=0, max_value=1e12),
           st.integers(min_value=2, max_value=128))
    @settings(max_examples=60, deadline=None)
    def test_shuffle_time_monotone_in_bytes(self, nbytes, machines):
        net = NetworkModel(machines, R3_XLARGE)
        t1 = net.shuffle_time(nbytes)
        t2 = net.shuffle_time(nbytes * 2)
        assert t2 >= t1

    @given(st.floats(min_value=1e3, max_value=1e12))
    @settings(max_examples=40, deadline=None)
    def test_more_machines_shuffle_faster(self, nbytes):
        small = NetworkModel(4, R3_XLARGE).shuffle_time(nbytes, local_fraction=0.0)
        large = NetworkModel(64, R3_XLARGE).shuffle_time(nbytes, local_fraction=0.0)
        assert large <= small


class TestFaultPlanProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=12),
           st.floats(min_value=0, max_value=2e6))
    @settings(max_examples=60, deadline=None)
    def test_pop_partitions_events(self, times, now):
        plan = FaultPlan(fail_times=tuple(times))
        due = plan.pop_due(now)
        assert all(t <= now for t in due)
        assert all(t > now for t in plan.pending)
        assert sorted(due + list(plan.pending)) == sorted(times)
