"""Cost-per-answer accounting and the perf report/diff layer.

Covers the CostModel arithmetic on synthetic events (hand-computed
dollars), the cost record as every journal's deterministic final event
(byte-identical across --jobs modes and cache replay), a priced chaos
run for one engine per Table 1 fault-tolerance mechanism, and the
``repro report`` surface: source classification, deterministic
rendering, and the --diff regression gate's exit codes.
"""

import json

import pytest

from repro.chaos import ChaosPlan, MachineCrash
from repro.cli import _trace_filename, main
from repro.cluster import ClusterSpec
from repro.core.runner import ExperimentSpec
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for
from repro.exec.executor import execute_grid
from repro.obs.cost import (
    DEFAULT_COST_MODEL,
    GB,
    HOUR,
    CostModel,
    CostReport,
    aggregate_costs,
    cost_report_from_events,
)
from repro.obs.report import (
    KIND_BENCH,
    KIND_JOURNAL,
    KIND_SCHEDULER,
    KIND_TRACE_DIR,
    ReportError,
    classify_path,
    diff_sources,
    load_source,
    render_report,
)


def tiny_spec(systems=("G", "BV"), datasets=("twitter",), sizes=(16,)):
    return ExperimentSpec(
        systems=tuple(systems),
        workloads=("pagerank",),
        datasets=tuple(datasets),
        cluster_sizes=tuple(sizes),
        dataset_size="tiny",
    )


def write_trace_dir(tmp_path, name, jobs=1):
    """Journals + _scheduler.jsonl, the way ``repro grid --trace`` does."""
    execution = execute_grid(tiny_spec(), jobs=jobs)
    trace_dir = tmp_path / name
    trace_dir.mkdir()
    for result in execution.grid.cells.values():
        result.observation.journal().write(trace_dir / _trace_filename(result))
    execution.scheduler_journal().write(trace_dir / "_scheduler.jsonl")
    return trace_dir


def rewrite_journals(trace_dir, mutate):
    """Apply ``mutate(event)`` to every event of every run journal."""
    for path in sorted(trace_dir.glob("*.jsonl")):
        if path.name == "_scheduler.jsonl":
            continue
        lines = []
        for line in path.read_text().splitlines():
            event = json.loads(line)
            mutate(event)
            lines.append(json.dumps(event, sort_keys=True,
                                    separators=(",", ":")))
        path.write_text("\n".join(lines) + "\n")


# -- the model on synthetic events: hand-computed dollars --------------------

SYNTH_EVENTS = [
    {"type": "meta", "system": "X", "workload": "pagerank",
     "dataset": "twitter", "machines": 4, "total_time": 100.0,
     "status": "ok"},
    {"type": "span", "id": 1, "name": "hdfs_read", "cat": "cluster",
     "ts": 0.0, "dur": 5.0, "parent": None, "args": {"bytes": 2e9}},
    {"type": "span", "id": 2, "name": "compute", "cat": "cluster",
     "ts": 5.0, "dur": 90.0, "parent": None, "args": {}},
    {"type": "metric", "kind": "counter", "name": "bytes_shuffled",
     "value": 5e9},
    {"type": "metric", "kind": "counter", "name": "recovery_seconds",
     "value": 18.0},
    {"type": "metric", "kind": "gauge", "name": "memory_byte_seconds",
     "value": 7.2e12},
]


class TestCostModel:
    def test_hand_computed_bill(self):
        report = cost_report_from_events(SYNTH_EVENTS)
        # 4 machines x 100 s = 400 machine-seconds
        assert report.machine_seconds == 400.0
        # 400/3600 h x $0.36/h
        assert report.compute_dollars == pytest.approx(0.04, rel=1e-12)
        # 5 GB x $0.01/GB
        assert report.shuffle_dollars == pytest.approx(0.05, rel=1e-12)
        # 7.2e12 B*s = 2 GB-hours x $0.005/GB-h
        assert report.memory_gb_hours == pytest.approx(2.0, rel=1e-12)
        assert report.memory_dollars == pytest.approx(0.01, rel=1e-12)
        assert report.dollars == pytest.approx(0.10, rel=1e-12)
        # recovery is a priced slice of compute, not an extra charge:
        # 4 x 18 s = 72 machine-s -> 72/3600 x $0.36
        assert report.recovery_machine_seconds == 72.0
        assert report.recovery_dollars == pytest.approx(0.0072, rel=1e-12)
        # hdfs_read moved 2e9 bytes through storage
        assert report.bytes_spilled == 2e9
        assert report.answers == 1
        assert report.dollars_per_answer == pytest.approx(0.10, rel=1e-12)

    def test_custom_rates_scale_linearly(self):
        double = CostModel(
            dollars_per_machine_hour=0.72,
            dollars_per_gb_shuffled=0.02,
            dollars_per_gb_hour_memory=0.01,
        )
        base = cost_report_from_events(SYNTH_EVENTS)
        scaled = cost_report_from_events(SYNTH_EVENTS, double)
        assert scaled.dollars == pytest.approx(2 * base.dollars, rel=1e-12)
        assert scaled.rates == double.rates()
        # quantities are rate-independent
        assert scaled.machine_seconds == base.machine_seconds
        assert scaled.memory_byte_seconds == base.memory_byte_seconds

    def test_failure_bills_dollars_but_earns_no_answer(self):
        events = [dict(SYNTH_EVENTS[0], status="failed")] + SYNTH_EVENTS[1:]
        report = cost_report_from_events(events)
        assert report.dollars == pytest.approx(0.10, rel=1e-12)
        assert report.answers == 0
        assert report.dollars_per_answer is None
        assert report.to_event()["dollars_per_answer"] is None

    def test_non_run_streams_get_no_cost(self):
        assert cost_report_from_events([]) is None
        assert cost_report_from_events([{"type": "span"}]) is None
        scheduler_meta = {"type": "meta", "kind": "scheduler", "cells": 4}
        assert cost_report_from_events([scheduler_meta]) is None

    def test_event_round_trip_and_stability(self):
        report = cost_report_from_events(SYNTH_EVENTS)
        event = report.to_event()
        assert event["type"] == "cost"
        assert CostReport.from_event(event).to_event() == event
        # appending the cost event to the stream does not change the
        # recomputed report: the fold ignores non-span/metric events,
        # so journals stay self-consistent after build_journal appends
        assert cost_report_from_events(
            SYNTH_EVENTS + [event]
        ).to_event() == event

    def test_aggregate_costs_sums_the_grid(self):
        one = cost_report_from_events(SYNTH_EVENTS)
        failed = cost_report_from_events(
            [dict(SYNTH_EVENTS[0], status="failed")] + SYNTH_EVENTS[1:]
        )
        totals = aggregate_costs([one, failed])
        assert totals["dollars"] == pytest.approx(0.20, rel=1e-12)
        assert totals["machine_seconds"] == 800.0
        assert totals["memory_gb_hours"] == pytest.approx(4.0, rel=1e-12)
        assert totals["gb_shuffled"] == pytest.approx(10.0, rel=1e-12)
        assert totals["recovery_seconds"] == 36.0
        assert totals["answers"] == 1.0


# -- the cost record in real journals ----------------------------------------

@pytest.fixture(scope="module")
def twitter_tiny():
    return load_dataset("twitter", "tiny")


def run(key, dataset, machines=16, plan=None):
    engine = make_engine(key)
    workload = workload_for(engine, "pagerank", dataset)
    return engine.run(
        dataset, workload, ClusterSpec(machines, fault_plan=plan)
    )


class TestJournalCostRecord:
    def test_cost_is_the_final_event_and_consistent(self, twitter_tiny):
        journal = run("BV", twitter_tiny).observation.journal()
        cost = journal.events[-1]
        assert cost["type"] == "cost"
        assert journal.cost() == cost
        meta = journal.meta
        assert cost["machines"] == meta["machines"]
        assert cost["total_seconds"] == meta["total_time"]
        assert cost["machine_seconds"] == (
            meta["machines"] * meta["total_time"]
        )
        # the bill re-derives exactly from the journal's own metrics
        assert cost["shuffle_dollars"] == pytest.approx(
            journal.scalar("bytes_shuffled") / GB
            * DEFAULT_COST_MODEL.dollars_per_gb_shuffled, rel=1e-12,
        )
        assert cost["memory_dollars"] == pytest.approx(
            journal.scalar("memory_byte_seconds") / GB / HOUR
            * DEFAULT_COST_MODEL.dollars_per_gb_hour_memory, rel=1e-12,
        )
        assert cost["dollars"] == pytest.approx(
            cost["compute_dollars"] + cost["shuffle_dollars"]
            + cost["memory_dollars"], rel=1e-12,
        )
        assert journal.scalar("memory_byte_seconds") > 0.0
        assert cost["answers"] == 1

    def test_byte_identical_across_jobs_and_cache_replay(self, tmp_path):
        spec = tiny_spec()

        def dumps(execution):
            return {
                key: result.observation.journal().dumps()
                for key, result in execution.grid.cells.items()
            }

        seq = dumps(execute_grid(spec, jobs=1))
        par = dumps(execute_grid(spec, jobs=2))
        cold = dumps(execute_grid(spec, jobs=1, cache=tmp_path / "cache"))
        warm = dumps(execute_grid(spec, jobs=1, cache=tmp_path / "cache"))
        assert seq == par == cold == warm
        for text in seq.values():
            last = json.loads(text.splitlines()[-1])
            assert last["type"] == "cost"

    def test_scheduler_journal_aggregates_cell_costs(self):
        execution = execute_grid(tiny_spec(), jobs=1)
        cell_costs = [
            r.observation.journal().cost()
            for r in execution.grid.cells.values()
        ]
        scheduler = execution.scheduler_journal()
        assert scheduler.cost() is None  # no per-run bill of its own
        assert scheduler.scalar("cost.dollars") == pytest.approx(
            sum(c["dollars"] for c in cell_costs), rel=1e-12
        )
        assert scheduler.scalar("cost.answers") == len(cell_costs)


# -- one engine per Table 1 mechanism, priced under a crash ------------------

@pytest.mark.parametrize(
    "key,mechanism",
    [("BV", "checkpoint"), ("HD", "reexecution"), ("V", "none")],
    ids=["checkpoint-BV", "reexecution-HD", "restart-from-zero-V"],
)
def test_mechanism_recovery_is_priced(key, mechanism, twitter_tiny):
    assert make_engine(key).fault_tolerance == mechanism
    clean = run(key, twitter_tiny)
    crash = clean.load_time + clean.execute_time * 0.5
    plan = ChaosPlan(events=(MachineCrash(time=crash),), seed=7)
    faulted = run(key, twitter_tiny, plan=plan)
    journal = faulted.observation.journal()
    cost = journal.cost()
    # the crash made the same answer strictly more expensive
    clean_cost = clean.observation.journal().cost()
    assert cost["dollars"] > clean_cost["dollars"]
    assert cost["answers"] == 1
    # recovery line-item: the journal's recovery_seconds counter, priced
    # at machines x seconds on the machine-hour rate
    recovery = journal.scalar("recovery_seconds")
    assert recovery > 0.0
    assert cost["recovery_seconds"] == recovery
    assert cost["recovery_machine_seconds"] == pytest.approx(
        journal.meta["machines"] * recovery, rel=1e-12
    )
    assert cost["recovery_dollars"] == pytest.approx(
        journal.meta["machines"] * recovery / HOUR
        * DEFAULT_COST_MODEL.dollars_per_machine_hour, rel=1e-12,
    )
    # recovery dollars sit inside compute dollars, never on top
    assert cost["recovery_dollars"] < cost["compute_dollars"]
    assert cost["dollars"] == pytest.approx(
        cost["compute_dollars"] + cost["shuffle_dollars"]
        + cost["memory_dollars"], rel=1e-12,
    )


# -- repro report: sources, rendering, the diff gate -------------------------

class TestReport:
    def test_classify_paths(self, tmp_path):
        trace_dir = write_trace_dir(tmp_path, "traces")
        journals = sorted(
            p for p in trace_dir.iterdir() if p.name != "_scheduler.jsonl"
        )
        assert classify_path(trace_dir) == KIND_TRACE_DIR
        assert classify_path(journals[0]) == KIND_JOURNAL
        assert classify_path(trace_dir / "_scheduler.jsonl") == KIND_SCHEDULER
        bench = tmp_path / "BENCH_grid.json"
        bench.write_text(json.dumps({"bench": "grid", "modes": {}}))
        assert classify_path(bench) == KIND_BENCH
        with pytest.raises(ReportError):
            classify_path(tmp_path / "missing.jsonl")

    def test_render_is_deterministic_and_complete(self, tmp_path):
        source = load_source(write_trace_dir(tmp_path, "traces"))
        text = render_report([source])
        assert text == render_report([load_source(tmp_path / "traces")])
        assert "# Perf & cost report" in text
        assert "BV pagerank/twitter@16" in text
        assert "total (2 runs)" in text
        assert "Hot spans" in text
        assert "Scheduler" in text

    def test_diff_identical_then_slowdown(self, tmp_path):
        a = write_trace_dir(tmp_path, "a")
        b = write_trace_dir(tmp_path, "b")
        same = diff_sources(load_source(a), load_source(b))
        assert same.exit_code == 0 and not same.regressions

        def slow(event):
            if event.get("type") == "meta":
                event["total_time"] *= 2.0

        rewrite_journals(b, slow)
        diff = diff_sources(load_source(a), load_source(b))
        assert diff.exit_code == 1
        assert len(diff.regressions) == 2  # both runs doubled
        assert all("total seconds" in e.render() for e in diff.regressions)
        # the same change seen from the other side is an improvement
        back = diff_sources(load_source(b), load_source(a))
        assert back.exit_code == 0 and back.improvements

    def test_diff_cost_regression_via_threshold(self, tmp_path):
        a = write_trace_dir(tmp_path, "a")
        b = write_trace_dir(tmp_path, "b")

        def pricier(event):
            if event.get("type") == "cost":
                event["dollars"] *= 1.5

        rewrite_journals(b, pricier)
        diff = diff_sources(load_source(a), load_source(b),
                            cost_threshold=0.05)
        assert diff.exit_code == 1
        assert any("dollars" in e.render() for e in diff.regressions)
        # a loose cost gate lets the same drift through
        loose = diff_sources(load_source(a), load_source(b),
                             cost_threshold=0.6)
        assert loose.exit_code == 0

    def test_bench_record_diff(self, tmp_path):
        record = {
            "bench": "grid",
            "schema_version": 2,
            "modes": {"jobs1": {"seconds": 10.0},
                      "jobsN_warm": {"seconds": 2.0}},
            "speedup_parallel": 2.0,
            "speedup_warm": 5.0,
        }
        worse = dict(record, speedup_parallel=1.0,
                     modes={"jobs1": {"seconds": 10.0},
                            "jobsN_warm": {"seconds": 2.0}})
        before, after = tmp_path / "before.json", tmp_path / "after.json"
        before.write_text(json.dumps(record))
        after.write_text(json.dumps(worse))
        diff = diff_sources(load_source(before), load_source(after))
        assert diff.exit_code == 1
        assert any("speedup_parallel" in e.render() for e in diff.regressions)


class TestReportCli:
    def test_report_renders_and_diff_gates(self, tmp_path, capsys):
        a = write_trace_dir(tmp_path, "a")
        b = write_trace_dir(tmp_path, "b")
        assert main(["report", str(a)]) == 0
        assert "# Perf & cost report" in capsys.readouterr().out
        assert main(["report", "--diff", str(a), str(b)]) == 0
        assert "no regressions" in capsys.readouterr().out

        def slow(event):
            if event.get("type") == "meta":
                event["total_time"] *= 2.0
            if event.get("type") == "cost":
                event["dollars"] *= 2.0

        rewrite_journals(b, slow)
        assert main(["report", "--diff", str(a), str(b)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_wants_exactly_two_sources(self, tmp_path, capsys):
        a = write_trace_dir(tmp_path, "a")
        assert main(["report", "--diff", str(a)]) == 2
        capsys.readouterr()

    def test_report_to_file_is_byte_stable(self, tmp_path, capsys):
        a = write_trace_dir(tmp_path, "a")
        out1, out2 = tmp_path / "r1.md", tmp_path / "r2.md"
        assert main(["report", str(a), "-o", str(out1)]) == 0
        assert main(["report", str(a), "-o", str(out2)]) == 0
        capsys.readouterr()
        assert out1.read_bytes() == out2.read_bytes()

    def test_trace_summary_reads_the_scheduler_journal(self, tmp_path,
                                                       capsys):
        trace_dir = write_trace_dir(tmp_path, "traces")
        scheduler = trace_dir / "_scheduler.jsonl"
        assert main(["trace", str(scheduler), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "scheduler — 2 cells" in out
        assert "grid cost $" in out
        assert "/answer" in out
