"""Tests for the command-line interface."""

from types import SimpleNamespace

import pytest

from repro.cli import _trace_filename, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "BV", "pagerank", "twitter", "-m", "32"]
        )
        assert args.system == "BV"
        assert args.machines == 32

    def test_invalid_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NEO4J", "pagerank", "twitter"])

    def test_invalid_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "BV", "bfs", "twitter"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "twitter" in out and "clueweb" in out
        assert "stands in for" in out

    def test_run_success(self, capsys):
        assert main(["run", "BV", "khop", "twitter", "-m", "16",
                     "--size", "tiny", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "total s" in out

    def test_run_failure_exit_code(self, capsys):
        # GraphLab random cannot load WRN at 16 (§5.2): exit code 1
        assert main(["run", "GL-S-R-I", "pagerank", "wrn", "-m", "16",
                     "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "OOM" in out

    def test_run_second_call_hits_the_cache(self, capsys, tmp_path):
        cmd = ["run", "BV", "khop", "twitter", "-m", "16", "--size", "tiny",
               "--cache-dir", str(tmp_path / "cache")]
        assert main(cmd) == 0
        assert "result cache" not in capsys.readouterr().out
        assert main(cmd) == 0
        assert "cell served from the result cache" in capsys.readouterr().out

    def test_grid_and_log(self, capsys, tmp_path):
        log = tmp_path / "runs.jsonl"
        assert main([
            "grid", "khop", "--datasets", "twitter", "--machines", "16",
            "--size", "tiny", "--log", str(log), "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "khop results" in out
        assert "exec:" in out
        assert log.exists()
        assert len(log.read_text().splitlines()) == 9   # GRID_SYSTEMS

    def test_grid_warm_cache_and_trace(self, capsys, tmp_path):
        cmd = ["grid", "khop", "--datasets", "twitter", "--machines", "16",
               "--size", "tiny", "--cache-dir", str(tmp_path / "cache"),
               "--trace", str(tmp_path / "traces")]
        assert main(cmd) == 0
        assert "9 executed" in capsys.readouterr().out
        assert main(cmd + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "9 cached · 0 executed" in out
        journals = sorted(p.name for p in (tmp_path / "traces").iterdir())
        assert "_scheduler.jsonl" in journals
        assert len(journals) == 10  # 9 cells + the scheduler's own journal

    def test_report_from_log(self, capsys, tmp_path):
        log = tmp_path / "runs.jsonl"
        main(["grid", "khop", "--datasets", "twitter", "--machines", "16",
              "--size", "tiny", "--log", str(log), "--no-cache"])
        capsys.readouterr()
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert "# Experiment report" in out
        assert "Best system per column" in out

    def test_report_to_file(self, capsys, tmp_path):
        log = tmp_path / "runs.jsonl"
        main(["grid", "khop", "--datasets", "twitter", "--machines", "16",
              "--size", "tiny", "--log", str(log), "--no-cache"])
        output = tmp_path / "report.md"
        assert main(["report", str(log), "-o", str(output)]) == 0
        assert output.exists()
        assert "### khop" in output.read_text()

    def test_cost(self, capsys):
        assert main(["cost", "--datasets", "twitter",
                     "--workloads", "khop"]) == 0
        out = capsys.readouterr().out
        assert "COST" in out

    def test_run_extension_workload(self, capsys):
        assert main(["run", "BV", "cdlp", "twitter", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "cdlp" in out

    def test_weak(self, capsys):
        assert main(["weak", "BV", "khop", "twitter",
                     "--machines", "16", "32"]) == 0
        out = capsys.readouterr().out
        assert "Weak scaling" in out
        assert "efficiency" in out

    def test_elastic_gates_on_bit_equality(self, capsys, tmp_path):
        assert main([
            "elastic", "--systems", "BV", "V", "--size", "tiny",
            "--directions", "out", "--timings", "0.5", "--magnitudes", "2",
            "--trace", str(tmp_path / "el"), "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "rescale seconds" in out
        assert "bit-exact" in out
        assert "checkpoint" in out and "none" in out
        # one clean reference + one rescaled journal per system
        journals = list((tmp_path / "el").glob("*.jsonl"))
        assert len(journals) == 4


class TestTraceFilename:
    def test_sanitized_and_collision_free(self):
        # 'BB*' and 'BB-' sanitize to the same text; the digest of the
        # raw coordinates keeps their journal paths distinct
        star = SimpleNamespace(system="BB*", workload="pagerank",
                               dataset="twitter", cluster_size=16)
        dash = SimpleNamespace(system="BB-", workload="pagerank",
                               dataset="twitter", cluster_size=16)
        a, b = _trace_filename(star), _trace_filename(dash)
        assert a != b
        for name in (a, b):
            assert name.endswith(".jsonl")
            assert "*" not in name and "/" not in name

    def test_stable_across_calls(self):
        result = SimpleNamespace(system="GL-S-R-I", workload="wcc",
                                 dataset="uk0705", cluster_size=128)
        assert _trace_filename(result) == _trace_filename(result)
