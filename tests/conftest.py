"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.datasets import load_dataset
from repro.graph import Graph, from_edges


@pytest.fixture(scope="session")
def tiny_twitter():
    """The tiny social dataset (fast engine runs)."""
    return load_dataset("twitter", "tiny")


@pytest.fixture(scope="session")
def tiny_wrn():
    """The tiny road-network dataset."""
    return load_dataset("wrn", "tiny")


@pytest.fixture(scope="session")
def tiny_uk():
    """The tiny web dataset."""
    return load_dataset("uk0705", "tiny")


@pytest.fixture(scope="session")
def small_twitter():
    """The small social dataset (calibrated findings)."""
    return load_dataset("twitter", "small")


@pytest.fixture(scope="session")
def small_wrn():
    """The small road-network dataset (calibrated findings)."""
    return load_dataset("wrn", "small")


@pytest.fixture(scope="session")
def small_uk():
    """The small web dataset (calibrated findings)."""
    return load_dataset("uk0705", "small")


@pytest.fixture(scope="session")
def small_clueweb():
    """The small ClueWeb-like dataset."""
    return load_dataset("clueweb", "small")


@pytest.fixture
def diamond_graph() -> Graph:
    """0 -> {1, 2} -> 3: the smallest interesting DAG."""
    return from_edges([(0, 1), (0, 2), (1, 3), (2, 3)], name="diamond")


@pytest.fixture
def cycle_graph() -> Graph:
    """A directed 5-cycle."""
    return from_edges([(i, (i + 1) % 5) for i in range(5)], name="cycle5")


@pytest.fixture
def two_components() -> Graph:
    """Two disjoint weakly connected components: {0,1,2} and {3,4}."""
    return from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=5, name="two-comp")


@pytest.fixture
def spec16() -> ClusterSpec:
    """The smallest cluster of the paper's sweep."""
    return ClusterSpec(16)
