"""Tests for the extension engines: Giraph++ and GraphX hash-to-min."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, FailureKind
from repro.engines import GiraphPlusPlusEngine, make_engine, workload_for
from repro.workloads import reference_sssp, reference_wcc
from repro.workloads.wcc import HashToMinWCC


def run(key, workload_name, dataset, machines=16):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines))


class TestGiraphPlusPlus:
    def test_registered(self):
        engine = make_engine("G++")
        assert isinstance(engine, GiraphPlusPlusEngine)
        assert engine.key == "G++"
        assert engine.language == "Java"

    def test_answers_exact(self, tiny_twitter):
        result = run("G++", "wcc", tiny_twitter)
        assert result.ok
        assert np.array_equal(
            result.answer.astype(np.int64), reference_wcc(tiny_twitter.graph)
        )

    def test_sssp_exact(self, tiny_uk):
        result = run("G++", "sssp", tiny_uk)
        expected = reference_sssp(tiny_uk.graph, tiny_uk.sssp_source)
        assert np.array_equal(
            np.nan_to_num(result.answer, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )

    def test_block_centric_execution_beats_giraph(self, small_uk):
        """The point of 'think like a graph': fewer global supersteps."""
        gpp = run("G++", "sssp", small_uk, 64)
        giraph = run("G", "sssp", small_uk, 64)
        assert gpp.ok and giraph.ok
        assert gpp.execute_time < giraph.execute_time

    def test_pays_jvm_memory_like_giraph(self, small_twitter):
        gpp = run("G++", "pagerank", small_twitter)
        bb = run("BB", "pagerank", small_twitter)
        assert gpp.total_memory_bytes > 2 * bb.total_memory_bytes

    def test_pays_hadoop_overhead(self, small_twitter):
        gpp = run("G++", "khop", small_twitter, 128)
        bb = run("BB", "khop", small_twitter, 128)
        assert gpp.overhead_time > 10 * max(bb.overhead_time, 0.1)

    def test_no_mpi_overflow_on_wrn(self, small_wrn):
        """Hadoop RPC aggregation: the §5.1 overflow cannot happen —
        but Giraph-style JVM memory OOMs WRN at 16 instead."""
        result = run("G++", "wcc", small_wrn, 16)
        assert result.failure is not FailureKind.MPI

    def test_slower_than_blogel_b(self, small_uk):
        """Same execution model, JVM prices: BB stays ahead end-to-end."""
        gpp = run("G++", "wcc", small_uk, 64)
        bb = run("BB", "wcc", small_uk, 64)
        assert gpp.execute_time > bb.execute_time


class TestGraphXHashToMin:
    def test_registered(self):
        engine = make_engine("S-h2m")
        assert engine.key == "S-h2m"
        assert engine.wcc_variant == "hash-to-min"

    def test_workload_factory_respects_variant(self, small_uk):
        engine = make_engine("S-h2m")
        workload = workload_for(engine, "wcc", small_uk)
        assert isinstance(workload, HashToMinWCC)

    def test_answers_exact(self, tiny_twitter):
        result = run("S-h2m", "wcc", tiny_twitter)
        assert result.ok
        assert np.array_equal(
            result.answer.astype(np.int64), reference_wcc(tiny_twitter.graph)
        )

    def test_halves_iterations(self, small_uk):
        plain = run("S", "wcc", small_uk, 64)
        h2m = run("S-h2m", "wcc", small_uk, 64)
        assert h2m.iterations < plain.iterations

    def test_faster_wcc_on_web(self, small_uk):
        """§5.6: GraphFrames' hash-to-min cuts GraphX's WCC time."""
        plain = run("S", "wcc", small_uk, 64)
        h2m = run("S-h2m", "wcc", small_uk, 64)
        assert h2m.total_time < 0.8 * plain.total_time

    def test_other_workloads_unaffected(self, tiny_twitter):
        plain = run("S", "khop", tiny_twitter)
        h2m = run("S-h2m", "khop", tiny_twitter)
        assert plain.total_time == pytest.approx(h2m.total_time)

    def test_bad_variant_rejected(self):
        from repro.engines.spark import GraphXEngine

        with pytest.raises(ValueError):
            GraphXEngine(wcc_variant="union-find")
