"""Cross-validation against networkx — an independent oracle.

The in-repo reference implementations are simple, but they were written
by the same hands as the code under test. networkx provides independent
implementations of PageRank, connected components, shortest paths, and
diameter to validate against.
"""

import networkx as nx
import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graph import estimate_diameter, from_edges
from repro.workloads import (
    reference_khop,
    reference_pagerank,
    reference_sssp,
    reference_wcc,
)


def to_nx(graph) -> nx.MultiDiGraph:
    g = nx.MultiDiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g


@pytest.fixture(scope="module")
def social():
    return load_dataset("twitter", "tiny").graph


@pytest.fixture(scope="module")
def road():
    return load_dataset("wrn", "tiny").graph


class TestWccAgainstNetworkx:
    @pytest.mark.parametrize("name", ["twitter", "wrn", "uk0705"])
    def test_component_partition_matches(self, name):
        graph = load_dataset(name, "tiny").graph
        ours = reference_wcc(graph)
        theirs = list(nx.weakly_connected_components(to_nx(graph)))
        # same number of components
        assert len(set(ours.tolist())) == len(theirs)
        # identical membership: every nx component is one label class
        for component in theirs:
            labels = {int(ours[v]) for v in component}
            assert len(labels) == 1
            # and the label is the component's minimum id (HashMin)
            assert labels.pop() == min(component)


class TestSsspAgainstNetworkx:
    @pytest.mark.parametrize("name", ["twitter", "uk0705"])
    def test_distances_match(self, name):
        dataset = load_dataset(name, "tiny")
        graph = dataset.graph
        ours = reference_sssp(graph, dataset.sssp_source)
        theirs = nx.single_source_shortest_path_length(
            to_nx(graph), dataset.sssp_source
        )
        for v in range(graph.num_vertices):
            if v in theirs:
                assert ours[v] == theirs[v]
            else:
                assert np.isinf(ours[v])

    def test_khop_matches_cutoff(self, social):
        ours = reference_khop(social, 5, k=3)
        theirs = nx.single_source_shortest_path_length(to_nx(social), 5, cutoff=3)
        reached = {v for v in range(social.num_vertices) if np.isfinite(ours[v])}
        assert reached == set(theirs)


class TestPagerankAgainstNetworkx:
    def test_sink_free_graph_matches(self):
        # a strongly connected graph: no dangling-mass semantics to differ on
        edges = [(i, (i + 1) % 12) for i in range(12)]
        edges += [(i, (i + 5) % 12) for i in range(12)]
        graph = from_edges(edges)
        ours = reference_pagerank(graph, tolerance=1e-10)
        theirs = nx.pagerank(nx.DiGraph(edges), alpha=0.85, tol=1e-12)
        # ours is unnormalized (initial rank 1 per vertex): divide by N
        normalized = ours / graph.num_vertices
        for v in range(graph.num_vertices):
            assert normalized[v] == pytest.approx(theirs[v], rel=1e-4)

    def test_ranking_order_matches_on_social(self, social):
        # with sinks the absolute values differ (networkx redistributes
        # dangling mass), but the induced ranking of well-connected
        # vertices should broadly agree
        ours = reference_pagerank(social, tolerance=1e-8)
        theirs = nx.pagerank(nx.DiGraph(list(social.edges())), alpha=0.85)
        theirs_arr = np.array([theirs.get(v, 0.0) for v in range(social.num_vertices)])
        top_ours = set(np.argsort(ours)[-10:].tolist())
        top_theirs = set(np.argsort(theirs_arr)[-10:].tolist())
        assert len(top_ours & top_theirs) >= 7


class TestDiameterAgainstNetworkx:
    def test_road_diameter_estimate_is_tight(self, road):
        und = nx.Graph()
        und.add_nodes_from(range(road.num_vertices))
        und.add_edges_from(road.edges())
        exact = nx.diameter(und)
        estimate = estimate_diameter(road)
        # the double-sweep heuristic is a lower bound, usually exact on
        # lattice-like graphs
        assert estimate <= exact
        assert estimate >= 0.9 * exact

    def test_path_graph_exact(self):
        graph = from_edges([(i, i + 1) for i in range(30)])
        assert estimate_diameter(graph) == 30
