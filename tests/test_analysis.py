"""Tests for log persistence, tables, and ASCII charts."""

import pytest

from repro.analysis import (
    bar_chart,
    histogram,
    line_chart,
    read_log,
    record_to_result,
    render_grid,
    render_table,
    result_to_record,
    write_log,
)
from repro.cluster import FailureKind
from repro.core import ResultGrid
from repro.engines.base import RunResult


def make_result(**kw):
    base = dict(
        system="BV", workload="pagerank", dataset="twitter", cluster_size=16,
        load_time=10.0, execute_time=90.0, save_time=1.0, overhead_time=2.0,
        iterations=30, network_bytes=1e9, peak_memory_bytes=2e9,
        total_memory_bytes=3e10, per_iteration_time=3.0,
        extras={"replication_factor": 5.5},
    )
    base.update(kw)
    return RunResult(**base)


class TestLogs:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        original = make_result()
        write_log([original], path)
        grid = read_log(path)
        loaded = grid.get("BV", "pagerank", "twitter", 16)
        assert loaded is not None
        assert loaded.total_time == pytest.approx(original.total_time)
        assert loaded.extras["replication_factor"] == 5.5

    def test_failure_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        failed = make_result(failure=FailureKind.OOM, failure_detail="x")
        write_log([failed], path)
        loaded = read_log(path).get("BV", "pagerank", "twitter", 16)
        assert loaded.failure is FailureKind.OOM
        assert not loaded.ok

    def test_append_mode(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_log([make_result(cluster_size=16)], path)
        write_log([make_result(cluster_size=32)], path)
        assert len(read_log(path)) == 2

    def test_record_is_json_safe(self):
        import json

        record = result_to_record(make_result(failure=FailureKind.TIMEOUT))
        text = json.dumps(record)
        back = record_to_result(json.loads(text))
        assert back.failure is FailureKind.TIMEOUT

    def test_answers_not_serialized(self):
        import numpy as np

        record = result_to_record(make_result(answer=np.arange(5)))
        assert "answer" not in record


class TestTables:
    def test_render_basic(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[-1]

    def test_title(self):
        text = render_table([{"a": 1}], title="Table 9")
        assert text.startswith("Table 9")

    def test_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_grid_cells(self):
        grid = ResultGrid()
        grid.put(make_result())
        text = render_grid(
            grid, "pagerank", datasets=("twitter",), cluster_sizes=(16, 32),
            systems=("BV", "G"),
        )
        assert "103" in text      # BV's total
        assert "-" in text        # missing G cell


class TestCharts:
    def test_bar_chart_scales(self):
        text = bar_chart({"BV": 10.0, "HD": 100.0})
        bv_line, hd_line = text.splitlines()
        assert hd_line.count("█") > bv_line.count("█")

    def test_bar_chart_failed_cells(self):
        text = bar_chart({"BV": 10.0, "S": None})
        assert "(failed)" in text

    def test_bar_chart_title_and_unit(self):
        text = bar_chart({"a": 1.0}, title="Fig 1", unit="GB")
        assert text.startswith("Fig 1")
        assert "GB" in text

    def test_line_chart_draws_series(self):
        text = line_chart({"mem": [(0, 1.0), (10, 5.0)]}, width=20, height=5)
        assert "*" in text
        assert "mem" in text

    def test_line_chart_empty(self):
        assert "(no data)" in line_chart({})

    def test_histogram_counts(self):
        text = histogram([1, 1, 1, 10], bins=2, width=10)
        lines = text.splitlines()
        assert "3" in lines[0]
        assert "1" in lines[1]

    def test_histogram_empty(self):
        assert "(no data)" in histogram([])
