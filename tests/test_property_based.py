"""Property-based tests (hypothesis) on the core invariants.

These exercise the graph substrate, partitioners, and workloads on
arbitrary generated graphs, checking the invariants every engine run
relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph, from_edges
from repro.partitioning import (
    random_edge_partition,
    random_vertex_partition,
    voronoi_partition,
)
from repro.workloads import (
    KHop,
    PageRank,
    SSSP,
    WCC,
    reference_sssp,
    reference_wcc,
)
from repro.engines.single_thread import (
    direction_optimizing_bfs,
    shiloach_vishkin_wcc,
)


@st.composite
def graphs(draw, max_vertices=24, max_edges=80):
    """An arbitrary directed multigraph with at least one vertex."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m, max_size=m,
        )
    )
    return Graph(n, edges)


class TestGraphInvariants:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, g):
        assert g.out_degrees().sum() == g.num_edges
        assert g.in_degrees().sum() == g.num_edges

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_reverse_preserves_shape(self, g):
        rev = g.reversed()
        assert rev.num_edges == g.num_edges
        assert np.array_equal(rev.out_degrees(), g.in_degrees())

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_consistency(self, g):
        edges = set()
        for v in range(g.num_vertices):
            for u in g.out_neighbors(v):
                edges.add((v, int(u)))
        assert edges == set(g.edges()) or g.num_edges != len(edges)  # duplicates

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_undirected_is_symmetric(self, g):
        und = g.undirected()
        pairs = set(und.edges())
        assert all((d, s) in pairs for s, d in pairs)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_self_edge_removal_idempotent(self, g):
        clean = g.without_self_edges()
        assert clean.count_self_edges() == 0
        assert clean.without_self_edges() == clean


class TestPartitioningInvariants:
    @given(graphs(), st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_vertex_partition_total(self, g, parts):
        p = random_vertex_partition(g, parts)
        assert p.vertex_counts().sum() == g.num_vertices
        assert p.edge_counts().sum() == g.num_edges
        assert 0.0 <= p.cut_fraction() <= 1.0

    @given(graphs(), st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_edge_partition_replication_bounds(self, g, parts):
        p = random_edge_partition(g, parts)
        counts = p.replica_counts()
        assert (counts <= parts).all()
        if g.num_edges:
            assert 1.0 <= p.replication_factor() <= parts

    @given(graphs(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_voronoi_covers_all_vertices(self, g, parts):
        bp = voronoi_partition(g, parts)
        assert (bp.block_of >= 0).all()
        assert bp.block_sizes().sum() == g.num_vertices
        assert 0.0 <= bp.cut_fraction() <= bp.block_cut_fraction() + 1e-9


class TestWorkloadInvariants:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_wcc_is_valid_labelling(self, g):
        state = WCC().run_to_completion(g)
        labels = state.values.astype(np.int64)
        assert np.array_equal(labels, reference_wcc(g))
        # endpoint labels agree across every edge
        src, dst = g.edge_sources(), g.edge_targets()
        assert np.array_equal(labels[src], labels[dst])
        # a component's label is one of its members
        assert all(labels[labels[v]] == labels[v] for v in range(g.num_vertices))

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_sssp_triangle_inequality(self, g):
        state = SSSP(0).run_to_completion(g)
        dist = state.values
        assert np.array_equal(
            np.nan_to_num(dist, posinf=-1),
            np.nan_to_num(reference_sssp(g, 0), posinf=-1),
        )
        src, dst = g.edge_sources(), g.edge_targets()
        finite = np.isfinite(dist[src])
        assert (dist[dst[finite]] <= dist[src[finite]] + 1).all()

    @given(graphs(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_khop_prefix_of_sssp(self, g, k):
        full = SSSP(0).run_to_completion(g).values
        khop = KHop(0, k=k).run_to_completion(g).values
        near = full <= k
        assert np.array_equal(khop[near], full[near])
        assert np.isinf(khop[~near]).all()

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_pagerank_bounded_below_and_finite(self, g):
        state = PageRank(stop_mode="iterations", max_iterations=10).run_to_completion(g)
        assert (state.values >= 0.15 - 1e-12).all()
        assert np.isfinite(state.values).all()

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_pagerank_mass_conserved_without_sinks(self, g):
        deg = g.out_degrees()
        if (deg == 0).any() or g.num_vertices == 0:
            return   # sinks leak mass by design
        state = PageRank(stop_mode="iterations", max_iterations=8).run_to_completion(g)
        assert state.values.sum() == pytest.approx(g.num_vertices, rel=1e-6)


class TestGapAlgorithms:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_direction_optimizing_bfs_correct(self, g):
        dist, ops = direction_optimizing_bfs(g, 0)
        assert np.array_equal(
            np.nan_to_num(dist, posinf=-1),
            np.nan_to_num(reference_sssp(g, 0), posinf=-1),
        )
        assert ops >= 0

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_shiloach_vishkin_matches_hashmin(self, g):
        labels, ops = shiloach_vishkin_wcc(g)
        assert np.array_equal(labels, reference_wcc(g))
        assert ops >= 0
