"""Unit tests for the dataset text formats (§4.3)."""

import io

import pytest

from repro.graph import (
    FORMATS,
    FormatError,
    chunk_lines,
    format_size_bytes,
    from_edges,
    read_adj,
    read_adj_long,
    read_edge_list,
    read_graph,
    write_adj,
    write_adj_long,
    write_edge_list,
    write_graph,
)


@pytest.fixture
def sample():
    # vertex 3 has no out-edges: the case that distinguishes adj from adj-long
    return from_edges([(0, 1), (0, 2), (1, 3), (2, 3)], name="sample")


def roundtrip(graph, writer, reader):
    buf = io.StringIO()
    writer(graph, buf)
    buf.seek(0)
    return reader(buf)


class TestAdjFormat:
    def test_roundtrip(self, sample):
        g = roundtrip(sample, write_adj, read_adj)
        assert g.num_edges == sample.num_edges

    def test_sink_vertices_omitted(self, sample):
        buf = io.StringIO()
        lines = write_adj(sample, buf)
        assert lines == 3   # vertex 3 has no line

    def test_adj_roundtrip_loses_isolated_sinks_only_in_line_count(self, sample):
        # vertex 3 is still created because it appears as a neighbor
        g = roundtrip(sample, write_adj, read_adj)
        assert g.num_vertices == sample.num_vertices

    def test_rejects_garbage(self):
        with pytest.raises(FormatError):
            read_adj(io.StringIO("0 one two\n"))

    def test_blank_lines_skipped(self):
        g = read_adj(io.StringIO("\n0 1\n\n"))
        assert g.num_edges == 1


class TestAdjLongFormat:
    def test_every_vertex_has_line(self, sample):
        buf = io.StringIO()
        lines = write_adj_long(sample, buf)
        assert lines == sample.num_vertices

    def test_roundtrip(self, sample):
        g = roundtrip(sample, write_adj_long, read_adj_long)
        assert g == sample

    def test_degree_field_validated(self):
        with pytest.raises(FormatError):
            read_adj_long(io.StringIO("0 2 1\n"))   # says degree 2, lists 1

    def test_short_line_rejected(self):
        with pytest.raises(FormatError):
            read_adj_long(io.StringIO("0\n"))

    def test_zero_degree_line(self):
        g = read_adj_long(io.StringIO("5 0\n"))
        assert g.num_vertices == 1
        assert g.num_edges == 0


class TestEdgeFormat:
    def test_roundtrip(self, sample):
        g = roundtrip(sample, write_edge_list, read_edge_list)
        assert g.num_edges == sample.num_edges

    def test_line_per_edge(self, sample):
        buf = io.StringIO()
        assert write_edge_list(sample, buf) == sample.num_edges

    def test_wrong_field_count_rejected(self):
        with pytest.raises(FormatError):
            read_edge_list(io.StringIO("0 1 2\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(FormatError):
            read_edge_list(io.StringIO("a b\n"))


class TestDispatch:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_write_read_by_name(self, sample, fmt):
        buf = io.StringIO()
        write_graph(sample, buf, fmt)
        buf.seek(0)
        g = read_graph(buf, fmt)
        assert g.num_edges == sample.num_edges

    def test_unknown_format_write(self, sample):
        with pytest.raises(FormatError):
            write_graph(sample, io.StringIO(), "parquet")

    def test_unknown_format_read(self):
        with pytest.raises(FormatError):
            read_graph(io.StringIO(""), "parquet")

    def test_file_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.adj"
        write_graph(sample, path, "adj")
        g = read_graph(path, "adj")
        assert g.num_edges == sample.num_edges


class TestChunking:
    def test_even_split(self):
        chunks = chunk_lines(list("abcdef"), 3)
        assert [len(c) for c in chunks] == [2, 2, 2]

    def test_uneven_split_front_loads(self):
        chunks = chunk_lines(list("abcde"), 3)
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_more_chunks_than_lines(self):
        chunks = chunk_lines(["x"], 4)
        assert sum(len(c) for c in chunks) == 1
        assert len(chunks) == 4

    def test_zero_chunks_rejected(self):
        with pytest.raises(ValueError):
            chunk_lines([], 0)

    def test_order_preserved(self):
        chunks = chunk_lines(["a", "b", "c"], 2)
        assert [line for c in chunks for line in c] == ["a", "b", "c"]


class TestFormatSize:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_size_matches_serialization(self, sample, fmt):
        buf = io.StringIO()
        write_graph(sample, buf, fmt)
        assert format_size_bytes(sample, fmt) == len(buf.getvalue())

    def test_size_on_larger_graph(self, tiny_uk):
        buf = io.StringIO()
        write_graph(tiny_uk.graph, buf, "edge")
        assert format_size_bytes(tiny_uk.graph, "edge") == len(buf.getvalue())

    def test_unknown_format(self, sample):
        with pytest.raises(FormatError):
            format_size_bytes(sample, "csv")
