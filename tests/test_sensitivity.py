"""Tests for the calibration sensitivity framework."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    PERTURBABLE_CONSTANTS,
    perturbed_costs,
    sensitivity_analysis,
)
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for
from repro.engines.common import COSTS


def run(key, wl, ds="twitter", m=16):
    d = load_dataset(ds, "small")
    e = make_engine(key)
    return e.run(d, workload_for(e, wl, d), ClusterSpec(m))


class TestPerturbedCosts:
    def test_scales_and_restores(self):
        original = COSTS.jvm_edge_cost
        with perturbed_costs(jvm_edge_cost=2.0):
            assert COSTS.jvm_edge_cost == pytest.approx(2 * original)
        assert COSTS.jvm_edge_cost == original

    def test_restores_on_exception(self):
        original = COSTS.cpp_edge_cost
        with pytest.raises(RuntimeError):
            with perturbed_costs(cpp_edge_cost=3.0):
                raise RuntimeError("boom")
        assert COSTS.cpp_edge_cost == original

    def test_unknown_constant_rejected(self):
        with pytest.raises(KeyError):
            with perturbed_costs(warp_factor=2.0):
                pass

    def test_perturbation_changes_run_times(self):
        base = run("G", "pagerank").total_time
        with perturbed_costs(jvm_edge_cost=2.0):
            slower = run("G", "pagerank").total_time
        assert slower > base
        assert run("G", "pagerank").total_time == pytest.approx(base)

    def test_constant_list_is_valid(self):
        for name in PERTURBABLE_CONSTANTS:
            assert hasattr(COSTS, name)


class TestSensitivityAnalysis:
    def test_robust_predicate_survives(self):
        results = sensitivity_analysis(
            {"bv-beats-hd": lambda: (
                run("BV", "khop").total_time < run("HD", "khop").total_time
            )},
            constants=("cpp_edge_cost", "hadoop_record_cost"),
        )
        assert results[0].robust
        assert results[0].flips == []

    def test_fragile_predicate_flips(self):
        # a threshold placed right at the baseline value must flip
        base = run("BV", "khop").total_time

        def near_threshold():
            return run("BV", "khop").total_time <= base * 1.001

        results = sensitivity_analysis(
            {"threshold": near_threshold},
            constants=("cpp_parse_cost",), factors=(4.0,),
        )
        assert results[0].baseline
        assert not results[0].robust

    def test_baseline_recorded(self):
        results = sensitivity_analysis(
            {"always-false": lambda: False},
            constants=("cpp_edge_cost",), factors=(2.0,),
        )
        assert results[0].baseline is False
