"""Tests for failure injection (Table 1's fault-tolerance column)."""

import pytest

from repro.cluster import ClusterSpec, FaultPlan
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for


def run(key, workload_name, dataset, machines=16, fault_plan=None):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    spec = ClusterSpec(machines, fault_plan=fault_plan)
    return engine.run(dataset, workload, spec)


@pytest.fixture(scope="module")
def twitter():
    return load_dataset("twitter", "small")


class TestFaultPlan:
    def test_pop_due_consumes(self):
        plan = FaultPlan(fail_times=(5.0, 10.0))
        assert plan.pop_due(7.0) == [5.0]
        assert plan.pending == (10.0,)
        assert plan.pop_due(7.0) == []

    def test_reset_rearms(self):
        plan = FaultPlan(fail_times=(5.0,))
        plan.pop_due(100.0)
        plan.reset()
        assert plan.pending == (5.0,)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_times=(-1.0,))

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(checkpoint_interval=0)

    def test_sorted_delivery(self):
        plan = FaultPlan(fail_times=(9.0, 3.0, 6.0))
        assert plan.pop_due(10.0) == [3.0, 6.0, 9.0]


class TestPlanReuse:
    """Regression: a plan is a spec, not a cursor. Before the chaos
    rework, runs drained FaultPlan._pending in place, so the second
    cell sharing a spec saw no faults at all."""

    def test_same_plan_twice_injects_both_times(self, twitter):
        clean = run("BV", "pagerank", twitter)
        plan = FaultPlan(fail_times=(clean.total_time * 0.5,))
        first = run("BV", "pagerank", twitter, fault_plan=plan)
        second = run("BV", "pagerank", twitter, fault_plan=plan)
        assert first.extras["recoveries"] == 1
        assert second.extras["recoveries"] == 1
        assert second.total_time == first.total_time
        assert second.total_time > clean.total_time

    def test_runs_leave_the_legacy_cursor_armed(self, twitter):
        plan = FaultPlan(fail_times=(1.0,))
        run("BV", "pagerank", twitter, fault_plan=plan)
        # the hand-driving API still sees every scheduled time
        assert plan.pending == (1.0,)


class TestRecoverySemantics:
    def test_no_plan_means_no_cost(self, twitter):
        clean = run("BV", "pagerank", twitter)
        assert "checkpoints" not in clean.extras
        assert "recoveries" not in clean.extras

    def test_checkpointing_engine_recovers(self, twitter):
        clean = run("BV", "pagerank", twitter)
        plan = FaultPlan(fail_times=(clean.total_time * 0.5,))
        faulty = run("BV", "pagerank", twitter, fault_plan=plan)
        assert faulty.ok
        assert faulty.extras["recoveries"] == 1
        assert faulty.extras["checkpoints"] >= 1
        assert faulty.total_time > clean.total_time

    def test_checkpoint_overhead_without_failures(self, twitter):
        clean = run("G", "pagerank", twitter)
        plan = FaultPlan(fail_times=(), checkpoint_interval=5)
        with_ckpt = run("G", "pagerank", twitter, fault_plan=plan)
        assert with_ckpt.ok
        assert with_ckpt.extras["checkpoints"] == 30 // 5
        assert with_ckpt.total_time > clean.total_time

    def test_denser_checkpoints_cut_recovery_cost(self, twitter):
        clean = run("BV", "pagerank", twitter)
        fail_at = (clean.total_time * 0.8,)
        sparse = run("BV", "pagerank", twitter,
                     fault_plan=FaultPlan(fail_times=fail_at,
                                          checkpoint_interval=40))
        dense = run("BV", "pagerank", twitter,
                    fault_plan=FaultPlan(fail_times=fail_at,
                                         checkpoint_interval=2))
        # dense checkpointing loses less progress on failure
        sparse_recovery = sparse.total_time - clean.total_time
        dense_recovery = dense.total_time - clean.total_time
        assert dense_recovery < sparse_recovery

    def test_reexecution_cheapest(self, twitter):
        """Hadoop re-runs one machine's tasks: tiny blast radius."""
        clean = run("HD", "pagerank", twitter)
        plan = FaultPlan(fail_times=(clean.total_time * 0.5,))
        faulty = run("HD", "pagerank", twitter, fault_plan=plan)
        assert faulty.ok
        assert faulty.extras["recoveries"] == 1
        assert "checkpoints" not in faulty.extras
        overhead = faulty.total_time / clean.total_time
        assert overhead < 1.1

    def test_vertica_restarts_from_zero(self, twitter):
        clean = run("V", "pagerank", twitter)
        plan = FaultPlan(fail_times=(clean.total_time * 0.6,))
        faulty = run("V", "pagerank", twitter, fault_plan=plan)
        assert faulty.ok
        # no fault tolerance: the aborted work is paid twice
        assert faulty.total_time > 1.4 * clean.total_time

    def test_relative_overheads_match_mechanisms(self, twitter):
        """reexecution < checkpoint < none, for a mid-run failure."""
        overheads = {}
        for key in ("HD", "BV", "V"):
            clean = run(key, "pagerank", twitter)
            plan = FaultPlan(fail_times=(clean.total_time * 0.5,))
            faulty = run(key, "pagerank", twitter, fault_plan=plan)
            overheads[key] = faulty.total_time / clean.total_time
        assert overheads["HD"] < overheads["BV"] < overheads["V"]

    def test_failure_during_load_is_harmless(self, twitter):
        """Events before the superstep loop fire at the first round."""
        plan = FaultPlan(fail_times=(0.5,))
        result = run("BV", "pagerank", twitter, fault_plan=plan)
        assert result.ok
        assert result.extras["recoveries"] == 1

    def test_multiple_failures(self, twitter):
        clean = run("BV", "pagerank", twitter)
        times = tuple(clean.total_time * f for f in (0.3, 0.5, 0.7))
        faulty = run("BV", "pagerank", twitter,
                     fault_plan=FaultPlan(fail_times=times))
        assert faulty.ok
        assert faulty.extras["recoveries"] == 3
