"""Robustness at the 'medium' dataset size.

Cell-level calibration (which system OOMs where) targets the 'small'
synthetic datasets; these tests check the properties that must survive
a 4x change in synthetic resolution — exact answers, headline
orderings, and the failure *mechanisms* (not their exact thresholds).
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, FailureKind
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for
from repro.graph import estimate_diameter, largest_wcc_fraction
from repro.workloads import reference_sssp, reference_wcc


@pytest.fixture(scope="module")
def medium_twitter():
    return load_dataset("twitter", "medium")


@pytest.fixture(scope="module")
def medium_wrn():
    return load_dataset("wrn", "medium")


def run(key, workload_name, dataset, machines=16):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines))


class TestMediumDatasets:
    def test_shapes_hold(self, medium_twitter, medium_wrn):
        assert largest_wcc_fraction(medium_twitter.graph) > 0.99
        assert medium_wrn.graph.out_degrees().max() <= 9
        assert estimate_diameter(medium_wrn.graph) > 100 * max(
            1, estimate_diameter(medium_twitter.graph) // 20
        )

    def test_scale_factors_shrink_with_resolution(self, medium_twitter):
        small = load_dataset("twitter", "small")
        assert medium_twitter.edge_scale < small.edge_scale


class TestMediumAnswers:
    def test_bv_wcc_exact(self, medium_twitter):
        result = run("BV", "wcc", medium_twitter)
        assert result.ok
        assert np.array_equal(
            result.answer.astype(np.int64), reference_wcc(medium_twitter.graph)
        )

    def test_giraph_sssp_exact(self, medium_twitter):
        result = run("G", "sssp", medium_twitter)
        assert result.ok
        expected = reference_sssp(medium_twitter.graph,
                                  medium_twitter.sssp_source)
        assert np.array_equal(
            np.nan_to_num(result.answer, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )


class TestMediumOrderings:
    def test_blogel_still_beats_hadoop_family(self, medium_twitter):
        bv = run("BV", "pagerank", medium_twitter)
        hd = run("HD", "pagerank", medium_twitter)
        assert bv.total_time < 0.1 * hd.total_time

    def test_graphx_still_slowest_in_memory_system(self, medium_twitter):
        s = run("S", "pagerank", medium_twitter)
        for key in ("BV", "G", "GL-S-R-I", "FG"):
            assert s.total_time > run(key, "pagerank", medium_twitter).total_time

    def test_wrn_traversals_still_fail_broadly(self, medium_wrn):
        failures = sum(
            0 if run(k, "sssp", medium_wrn).ok else 1
            for k in ("G", "HD", "S", "FG")
        )
        assert failures >= 3

    def test_bb_mpi_mechanism_scale_independent(self, medium_wrn):
        """The MPI overflow depends on the paper-scale vertex count, so
        it fires identically at every synthetic resolution."""
        assert run("BB", "wcc", medium_wrn).failure is FailureKind.MPI

    def test_cost_story_holds(self, medium_wrn):
        st = run("ST", "sssp", medium_wrn)
        bv = run("BV", "sssp", medium_wrn)
        assert bv.ok and st.ok
        assert st.total_time < 0.2 * bv.total_time   # COST << 1
