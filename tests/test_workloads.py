"""Tests for the four workloads against the reference oracles."""

import numpy as np
import pytest

from repro.graph import from_edges
from repro.workloads import (
    DAMPING,
    HashToMinWCC,
    KHop,
    PageRank,
    SSSP,
    WCC,
    WorkloadKind,
    reference_khop,
    reference_pagerank,
    reference_sssp,
    reference_wcc,
)


class TestPageRank:
    def test_matches_reference_tolerance(self, small_twitter):
        g = small_twitter.graph
        state = PageRank(tolerance=0.001).run_to_completion(g)
        expected = reference_pagerank(g, tolerance=0.001)
        assert np.allclose(state.values, expected)

    def test_matches_reference_fixed_iterations(self, small_uk):
        g = small_uk.graph
        state = PageRank(stop_mode="iterations", max_iterations=12).run_to_completion(g)
        expected = reference_pagerank(g, iterations=12)
        assert np.allclose(state.values, expected)

    def test_fixed_iteration_count_honored(self, tiny_twitter):
        state = PageRank(stop_mode="iterations", max_iterations=7).run_to_completion(
            tiny_twitter.graph
        )
        assert state.iteration == 7

    def test_ranks_positive(self, tiny_twitter):
        state = PageRank(tolerance=0.01).run_to_completion(tiny_twitter.graph)
        assert (state.values >= DAMPING).all()

    def test_hub_outranks_average(self, small_twitter):
        state = PageRank(tolerance=0.001).run_to_completion(small_twitter.graph)
        hub = int(small_twitter.graph.in_degrees().argmax())
        assert state.values[hub] > 10 * state.values.mean()

    def test_approximate_close_to_exact(self, small_twitter):
        g = small_twitter.graph
        approx = PageRank(approximate=True, tolerance=0.001).run_to_completion(g)
        exact = reference_pagerank(g, tolerance=0.001)
        # opt-out vertices freeze early; error stays within a few tolerances
        assert np.abs(approx.values - exact).max() < 0.05 * exact.max()

    def test_approximate_deactivates_vertices(self, small_twitter):
        g = small_twitter.graph
        state = PageRank(approximate=True, tolerance=0.001)
        st = state.run_to_completion(g)
        active_series = [h.active_vertices for h in st.history]
        assert active_series[0] == g.num_vertices
        assert active_series[-1] < g.num_vertices * 0.2   # Fig 4's decay

    def test_approximate_fewer_updates(self, small_twitter):
        g = small_twitter.graph
        exact = PageRank(tolerance=0.001).run_to_completion(g)
        approx = PageRank(approximate=True, tolerance=0.001).run_to_completion(g)
        assert (
            sum(h.active_vertices for h in approx.history)
            < sum(h.active_vertices for h in exact.history)
        )

    def test_messages_counted(self, diamond_graph):
        wl = PageRank(stop_mode="iterations", max_iterations=1)
        state = wl.init_state(diamond_graph)
        stats = wl.superstep(diamond_graph, state)
        assert stats.messages == diamond_graph.num_edges

    def test_bad_stop_mode(self):
        with pytest.raises(ValueError):
            PageRank(stop_mode="never")

    def test_kind_analytic(self):
        assert PageRank().kind is WorkloadKind.ANALYTIC


class TestWCC:
    def test_matches_reference(self, small_twitter):
        state = WCC().run_to_completion(small_twitter.graph)
        assert np.array_equal(
            state.values.astype(np.int64), reference_wcc(small_twitter.graph)
        )

    def test_two_components(self, two_components):
        state = WCC().run_to_completion(two_components)
        assert set(state.values.astype(int)) == {0, 3}

    def test_labels_are_component_minimums(self, small_wrn):
        state = WCC().run_to_completion(small_wrn.graph)
        assert state.values.min() == 0

    def test_respects_edge_direction_blindness(self):
        # a path of forward-only edges is still one weak component
        g = from_edges([(0, 1), (2, 1), (2, 3)])
        state = WCC().run_to_completion(g)
        assert len(set(state.values.astype(int))) == 1

    def test_iterations_track_diameter(self, small_wrn, small_twitter):
        wrn = WCC().run_to_completion(small_wrn.graph)
        tw = WCC().run_to_completion(small_twitter.graph)
        assert wrn.iteration > 20 * tw.iteration

    def test_needs_reverse_edges_flag(self):
        assert WCC.needs_reverse_edges is True

    def test_hash_to_min_matches(self, small_uk):
        a = WCC().run_to_completion(small_uk.graph)
        b = HashToMinWCC().run_to_completion(small_uk.graph)
        assert np.array_equal(a.values, b.values)

    def test_hash_to_min_fewer_iterations(self, small_wrn):
        plain = WCC().run_to_completion(small_wrn.graph)
        h2m = HashToMinWCC().run_to_completion(small_wrn.graph)
        assert h2m.iteration < plain.iteration

    def test_hash_to_min_more_messages_per_iteration(self, small_wrn):
        plain = WCC().run_to_completion(small_wrn.graph)
        h2m = HashToMinWCC().run_to_completion(small_wrn.graph)
        per_iter_plain = sum(h.messages for h in plain.history) / plain.iteration
        per_iter_h2m = sum(h.messages for h in h2m.history) / h2m.iteration
        assert per_iter_h2m > per_iter_plain


class TestSSSP:
    def test_matches_reference(self, small_twitter):
        src = small_twitter.sssp_source
        state = SSSP(src).run_to_completion(small_twitter.graph)
        expected = reference_sssp(small_twitter.graph, src)
        assert np.array_equal(
            np.nan_to_num(state.values, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )

    def test_source_distance_zero(self, tiny_twitter):
        state = SSSP(tiny_twitter.sssp_source).run_to_completion(tiny_twitter.graph)
        assert state.values[tiny_twitter.sssp_source] == 0.0

    def test_unreachable_infinite(self, two_components):
        state = SSSP(0).run_to_completion(two_components)
        assert np.isinf(state.values[3])

    def test_directed_distances(self, diamond_graph):
        state = SSSP(0).run_to_completion(diamond_graph)
        assert list(state.values) == [0.0, 1.0, 1.0, 2.0]

    def test_iterations_equal_eccentricity_plus_one(self, small_wrn):
        state = SSSP(small_wrn.sssp_source).run_to_completion(small_wrn.graph)
        reached = state.values[np.isfinite(state.values)]
        assert state.iteration == int(reached.max()) + 1

    def test_out_of_range_source(self, diamond_graph):
        with pytest.raises(ValueError):
            SSSP(99).init_state(diamond_graph)

    def test_kind_traversal(self):
        assert SSSP().kind is WorkloadKind.TRAVERSAL


class TestKHop:
    def test_matches_reference(self, small_twitter):
        src = small_twitter.sssp_source
        state = KHop(src, k=3).run_to_completion(small_twitter.graph)
        expected = reference_khop(small_twitter.graph, src, k=3)
        assert np.array_equal(
            np.nan_to_num(state.values, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )

    def test_stops_at_k(self, small_wrn):
        state = KHop(small_wrn.sssp_source, k=3).run_to_completion(small_wrn.graph)
        assert state.iteration == 3

    def test_distances_bounded_by_k(self, small_uk):
        state = KHop(small_uk.sssp_source, k=3).run_to_completion(small_uk.graph)
        finite = state.values[np.isfinite(state.values)]
        assert finite.max() <= 3

    def test_reachable_count(self, small_wrn):
        wl = KHop(small_wrn.sssp_source, k=3)
        state = wl.run_to_completion(small_wrn.graph)
        # a bounded-degree road network reaches few vertices in 3 hops
        assert wl.reachable_count(state) < 60

    def test_khop_diameter_insensitive(self, small_wrn, small_twitter):
        a = KHop(small_wrn.sssp_source, k=3).run_to_completion(small_wrn.graph)
        b = KHop(small_twitter.sssp_source, k=3).run_to_completion(small_twitter.graph)
        assert a.iteration == b.iteration == 3

    def test_k_zero(self, diamond_graph):
        state = KHop(0, k=0).run_to_completion(diamond_graph)
        assert np.isfinite(state.values).sum() == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            KHop(0, k=-1)

    def test_result_bytes_scale_with_reach(self, small_wrn, small_twitter):
        wrn_wl = KHop(small_wrn.sssp_source, k=3)
        wrn_state = wrn_wl.run_to_completion(small_wrn.graph)
        tw_wl = KHop(small_twitter.sssp_source, k=3)
        tw_state = tw_wl.run_to_completion(small_twitter.graph)
        assert (
            wrn_wl.result_bytes_from_state(small_wrn.graph, wrn_state)
            < tw_wl.result_bytes_from_state(small_twitter.graph, tw_state)
        )


class TestWorkloadHistory:
    def test_history_one_entry_per_superstep(self, tiny_twitter):
        state = PageRank(stop_mode="iterations", max_iterations=5).run_to_completion(
            tiny_twitter.graph
        )
        assert len(state.history) == 5
        assert [h.iteration for h in state.history] == [1, 2, 3, 4, 5]

    def test_last_entry_converged(self, tiny_twitter):
        state = WCC().run_to_completion(tiny_twitter.graph)
        assert state.history[-1].converged
        assert all(not h.converged for h in state.history[:-1])

    def test_run_to_completion_guard(self, small_wrn):
        with pytest.raises(RuntimeError):
            WCC().run_to_completion(small_wrn.graph, max_supersteps=3)
