"""Tests for the dataset-specific block partitioners (§2.3's techniques)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, FailureKind
from repro.engines import make_engine, workload_for
from repro.graph import from_edges
from repro.partitioning import (
    coordinate_partition,
    url_prefix_partition,
    voronoi_partition,
)
from repro.workloads import reference_sssp, reference_wcc


class TestCoordinatePartition:
    def test_blocks_cover_all_vertices(self, small_wrn):
        bp = coordinate_partition(
            small_wrn.graph, 16, grid_shape=small_wrn.meta()["grid_shape"]
        )
        assert (bp.block_of >= 0).all()
        assert bp.block_sizes().sum() == small_wrn.graph.num_vertices

    def test_spatial_blocks_are_balanced(self, small_wrn):
        bp = coordinate_partition(
            small_wrn.graph, 16, grid_shape=small_wrn.meta()["grid_shape"]
        )
        assert bp.balance_skew() < 0.2

    def test_no_master_aggregation(self, small_wrn):
        """Property-based assignment sidesteps the §5.1 MPI overflow."""
        bp = coordinate_partition(
            small_wrn.graph, 16, grid_shape=small_wrn.meta()["grid_shape"]
        )
        assert bp.aggregate_items_per_round == 0
        assert bp.rounds == 0

    def test_explicit_coordinates(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])
        coords = np.array([[0.0, 0.0], [0.1, 0.1], [5.0, 5.0], [5.1, 5.1]])
        bp = coordinate_partition(g, 2, coordinates=coords, blocks_per_machine=1)
        # the two spatial clusters land in different blocks
        assert bp.block_of[0] == bp.block_of[1]
        assert bp.block_of[2] == bp.block_of[3]
        assert bp.block_of[0] != bp.block_of[2]

    def test_requires_shape_or_coords(self, small_twitter):
        with pytest.raises(ValueError):
            coordinate_partition(small_twitter.graph, 4)

    def test_shape_mismatch_rejected(self, small_wrn):
        with pytest.raises(ValueError):
            coordinate_partition(small_wrn.graph, 4, grid_shape=(3, 3))


class TestUrlPrefixPartition:
    def test_one_block_per_host(self, small_uk):
        pages = small_uk.meta()["pages_per_host"]
        bp = url_prefix_partition(small_uk.graph, 16, pages_per_host=pages)
        assert bp.num_blocks == small_uk.graph.num_vertices // pages

    def test_beats_voronoi_block_cut_on_web(self, small_uk):
        pages = small_uk.meta()["pages_per_host"]
        url = url_prefix_partition(small_uk.graph, 16, pages_per_host=pages)
        gvd = voronoi_partition(small_uk.graph, 16)
        assert url.block_cut_fraction() < gvd.block_cut_fraction()

    def test_explicit_host_map(self):
        g = from_edges([(0, 1), (2, 3)])
        bp = url_prefix_partition(g, 2, host_of=np.array([0, 0, 7, 7]))
        assert bp.block_of[0] == bp.block_of[1]
        assert bp.block_of[2] == bp.block_of[3]

    def test_requires_host_info(self, small_uk):
        with pytest.raises(ValueError):
            url_prefix_partition(small_uk.graph, 4)

    def test_bad_host_shape_rejected(self, small_uk):
        with pytest.raises(ValueError):
            url_prefix_partition(small_uk.graph, 4, host_of=np.array([1, 2]))


class TestBlogelWithDatasetPartitioners:
    def run(self, key, workload_name, dataset, machines=16):
        engine = make_engine(key)
        workload = workload_for(engine, workload_name, dataset)
        return engine.run(dataset, workload, ClusterSpec(machines))

    def test_coordinate_avoids_mpi_on_wrn(self, small_wrn):
        """The headline of the extension: BB becomes usable on WRN."""
        assert self.run("BB", "sssp", small_wrn).failure is FailureKind.MPI
        coord = self.run("BB-coord", "sssp", small_wrn)
        assert coord.ok

    def test_coordinate_bb_crushes_bv_on_wrn_traversals(self, small_wrn):
        """Block-centric execution collapses the 48 000 supersteps."""
        coord = self.run("BB-coord", "sssp", small_wrn)
        bv = self.run("BV", "sssp", small_wrn)
        assert coord.total_time < 0.25 * bv.total_time

    def test_coordinate_bb_answers_exact(self, tiny_wrn):
        result = self.run("BB-coord", "sssp", tiny_wrn)
        expected = reference_sssp(tiny_wrn.graph, tiny_wrn.sssp_source)
        assert np.array_equal(
            np.nan_to_num(result.answer, posinf=-1),
            np.nan_to_num(expected, posinf=-1),
        )

    def test_url_prefix_bb_answers_exact(self, tiny_uk):
        result = self.run("BB-url", "wcc", tiny_uk)
        assert np.array_equal(
            result.answer.astype(np.int64), reference_wcc(tiny_uk.graph)
        )

    def test_url_prefix_speeds_up_web_wcc(self, small_uk):
        # at 64 machines the lower block-cut wins; at 16 the host-level
        # block graph's larger diameter can offset it
        stock = self.run("BB", "wcc", small_uk, machines=64)
        url = self.run("BB-url", "wcc", small_uk, machines=64)
        assert url.execute_time < stock.execute_time

    def test_coordinate_needs_coordinates(self, small_twitter):
        # social graphs carry no coordinates: a configuration error, not
        # a simulated failure cell
        with pytest.raises(ValueError):
            self.run("BB-coord", "khop", small_twitter)

    def test_bad_partitioner_name(self):
        from repro.engines.blogel import BlogelBEngine

        with pytest.raises(ValueError):
            BlogelBEngine(partitioner="metis")
