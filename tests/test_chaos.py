"""repro.chaos: deterministic fault injection, priced recovery, and the
correctness gate — every faulted run must return bit-exact answers.

Covers the event taxonomy and plan serialization, the per-run
ChaosRuntime (seeded machine choice, effect windows), the behavioral
contract of each fault kind, hand-computed recovery accounting for one
system per Table 1 mechanism, end-to-end determinism (byte-identical
journals, jobs=1 vs jobs=N), the MTTR experiment, and the extension
finding built on top.
"""

import numpy as np
import pytest

from repro.chaos import (
    BlockLoss,
    ChaosPlan,
    ChaosRuntime,
    CheckpointCorruption,
    MachineCrash,
    MessageLoss,
    NetworkDegradation,
    NetworkPartition,
    Straggler,
    derive_machine,
    event_from_dict,
)
from repro.chaos.experiment import plan_for, recovery_cost_experiment
from repro.cluster import ClusterSpec
from repro.datasets import load_dataset
from repro.engines import make_engine, workload_for


def run(key, workload_name, dataset, machines=16, plan=None):
    engine = make_engine(key)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(machines, fault_plan=plan))


@pytest.fixture(scope="module")
def twitter():
    return load_dataset("twitter", "small")


@pytest.fixture(scope="module")
def clean_bv(twitter):
    return run("BV", "pagerank", twitter)


def spans(result, name=None):
    rows = [s for s in result.observation.journal().spans()
            if s["type"] == "span"]
    return rows if name is None else [s for s in rows if s["name"] == name]


def mid_loop(clean):
    """A time safely inside the reference run's superstep loop."""
    return clean.load_time + clean.execute_time * 0.5


# -- events and plans --------------------------------------------------------

class TestEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            Straggler(slowdown=1.0)
        with pytest.raises(ValueError):
            Straggler(supersteps=0)
        with pytest.raises(ValueError):
            NetworkDegradation(factor=0.5)
        with pytest.raises(ValueError):
            MessageLoss(fraction=0.0)
        with pytest.raises(ValueError):
            MessageLoss(fraction=1.5)
        with pytest.raises(ValueError):
            BlockLoss(fraction=-0.1)
        with pytest.raises(ValueError):
            NetworkPartition(seconds=0.0)

    def test_round_trip_every_kind(self):
        originals = [
            MachineCrash(time=3.0, machine=2),
            Straggler(time=1.0, slowdown=8.0, supersteps=2),
            NetworkDegradation(time=2.0, factor=3.0, supersteps=4),
            NetworkPartition(time=4.0, seconds=12.0),
            MessageLoss(time=5.0, fraction=0.25),
            BlockLoss(time=6.0, fraction=0.5),
            CheckpointCorruption(time=7.0),
        ]
        for event in originals:
            clone = event_from_dict(event.to_dict())
            assert clone == event
            assert clone.kind == event.kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "meteor", "time": 1.0})


class TestChaosPlan:
    def test_round_trip(self):
        plan = ChaosPlan(
            events=(MachineCrash(time=5.0), MessageLoss(time=2.0)),
            checkpoint_interval=7,
            seed=13,
        )
        clone = ChaosPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.label() == plan.label()

    def test_label_summarizes(self):
        plan = ChaosPlan(events=(MachineCrash(time=1.0),
                                 MachineCrash(time=2.0)), seed=3)
        assert "crashx2" in plan.label()
        assert "s3" in plan.label()
        assert ChaosPlan().label().startswith("quiet")

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            ChaosPlan(checkpoint_interval=0)

    def test_plan_for_spreads_events_inside_window(self):
        plan = plan_for("crash", 3, (10.0, 50.0))
        times = [e.time for e in plan.events]
        assert times == [20.0, 30.0, 40.0]
        with pytest.raises(KeyError):
            plan_for("meteor", 1, (0.0, 1.0))

    def test_plan_for_corruption_pairs_with_crash(self):
        plan = plan_for("ckptcorrupt", 1, (0.0, 10.0))
        kinds = [e.kind for e in plan.events]
        assert kinds == ["ckptcorrupt", "crash"]


class TestChaosRuntime:
    def test_machine_choice_is_seeded(self):
        first = derive_machine(seed=1, index=0, num_workers=16)
        assert derive_machine(seed=1, index=0, num_workers=16) == first
        assert 0 <= first < 16
        others = {derive_machine(seed=s, index=0, num_workers=16)
                  for s in range(20)}
        assert len(others) > 1  # the seed actually matters

    def test_pop_due_is_per_run(self):
        plan = ChaosPlan(events=(MachineCrash(time=5.0),))
        first = ChaosRuntime(plan, num_workers=4)
        assert [e.kind for _, e in first.pop_due(10.0)] == ["crash"]
        assert first.pop_due(10.0) == []
        # a second run of the same plan sees the fault again
        second = ChaosRuntime(plan, num_workers=4)
        assert [e.kind for _, e in second.pop_due(10.0)] == ["crash"]

    def test_straggler_window_ticks_per_superstep(self):
        runtime = ChaosRuntime(ChaosPlan(), num_workers=4)
        runtime.add_straggler(machine=1, slowdown=3.0, supersteps=2)
        assert runtime.apply_compute([1.0, 1.0]) == [1.0, 3.0]
        runtime.end_superstep()
        assert runtime.apply_compute([1.0, 1.0]) == [1.0, 3.0]
        runtime.end_superstep()
        assert runtime.apply_compute([1.0, 1.0]) == [1.0, 1.0]

    def test_degradation_compounds_and_expires(self):
        runtime = ChaosRuntime(ChaosPlan(), num_workers=4)
        runtime.add_degradation(factor=2.0, supersteps=1)
        runtime.add_degradation(factor=3.0, supersteps=2)
        assert runtime.bandwidth_factor() == 6.0
        runtime.end_superstep()
        assert runtime.bandwidth_factor() == 3.0
        runtime.end_superstep()
        assert runtime.bandwidth_factor() == 1.0


# -- per-kind behavior and the exactness gate --------------------------------

ALL_KINDS = ("crash", "straggler", "netdegrade", "netsplit", "msgloss",
             "blockloss", "ckptcorrupt")


class TestFaultKinds:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_kind_completes_with_exact_answers(self, twitter,
                                                     clean_bv, kind):
        plan = plan_for(kind, 1, (clean_bv.load_time,
                                  clean_bv.load_time + clean_bv.execute_time))
        faulted = run("BV", "pagerank", twitter, plan=plan)
        assert faulted.ok
        assert np.array_equal(faulted.answer, clean_bv.answer)
        assert faulted.iterations == clean_bv.iterations
        assert faulted.extras["faults_injected"] >= 1
        assert faulted.total_time >= clean_bv.total_time

    def test_straggler_slows_exactly_its_window(self, twitter, clean_bv):
        t = mid_loop(clean_bv)
        plan = ChaosPlan(events=(
            Straggler(time=t, slowdown=4.0, supersteps=2),))
        faulted = run("BV", "pagerank", twitter, plan=plan)
        slowed = [
            s for s in spans(faulted, "superstep")
            if s["dur"] > 1.5 * clean_bv.execute_time / clean_bv.iterations
        ]
        assert len(slowed) == 2
        assert slowed[1]["args"]["iteration"] == (
            slowed[0]["args"]["iteration"] + 1)

    def test_netdegrade_stretches_shuffles(self, twitter, clean_bv):
        plan = ChaosPlan(events=(
            NetworkDegradation(time=mid_loop(clean_bv), factor=4.0,
                               supersteps=3),))
        faulted = run("BV", "pagerank", twitter, plan=plan)
        assert faulted.ok
        assert faulted.total_time > clean_bv.total_time
        # the degradation never leaks past its window: the run ends with
        # the network restored
        assert faulted.extras["faults_injected"] == 1

    def test_netsplit_charges_the_partition_wait(self, twitter, clean_bv):
        plan = ChaosPlan(events=(
            NetworkPartition(time=mid_loop(clean_bv), seconds=30.0),))
        faulted = run("BV", "pagerank", twitter, plan=plan)
        (recover,) = spans(faulted, "recover")
        assert recover["args"]["kind"] == "netsplit"
        assert recover["dur"] == pytest.approx(30.0)

    def test_msgloss_redelivers_lost_fraction(self, twitter, clean_bv):
        plan = ChaosPlan(events=(
            MessageLoss(time=mid_loop(clean_bv), fraction=0.25),))
        faulted = run("BV", "pagerank", twitter, plan=plan)
        (recover,) = spans(faulted, "recover")
        # at-least-once: a quarter of the interrupted superstep's
        # shuffle traffic goes over the wire again
        interrupted = max(
            (s for s in spans(faulted, "superstep")
             if s["ts"] < recover["ts"]),
            key=lambda s: s["ts"])
        assert faulted.extras["bytes_redelivered"] == pytest.approx(
            interrupted["args"]["bytes_shuffled"] * 0.25)

    def test_blockloss_rereads_and_rereplicates(self, twitter, clean_bv):
        plan = ChaosPlan(events=(
            BlockLoss(time=mid_loop(clean_bv), fraction=0.1),))
        faulted = run("BV", "pagerank", twitter, plan=plan)
        expected = twitter.profile.raw_size_bytes * 0.1
        assert faulted.extras["bytes_rereplicated"] == pytest.approx(expected)

    def test_ckptcorrupt_forces_older_checkpoint(self, twitter, clean_bv):
        crash_at = clean_bv.load_time + clean_bv.execute_time * 0.8
        crash_only = ChaosPlan(events=(MachineCrash(time=crash_at),),
                               checkpoint_interval=10)
        corrupted = ChaosPlan(
            events=(CheckpointCorruption(time=crash_at - 0.001),
                    MachineCrash(time=crash_at)),
            checkpoint_interval=10,
        )
        plain = run("BV", "pagerank", twitter, plan=crash_only)
        fallback = run("BV", "pagerank", twitter, plan=corrupted)
        assert fallback.extras["checkpoints_corrupted"] == 1
        # replaying from the older checkpoint costs strictly more
        assert (fallback.extras["supersteps_replayed"]
                > plain.extras["supersteps_replayed"])
        assert (fallback.extras["recovery_seconds"]
                > plain.extras["recovery_seconds"])


# -- hand-computed recovery accounting (one system per Table 1 row) ----------

class TestRecoveryAccounting:
    def one_crash(self, key, workload, dataset):
        clean = run(key, workload, dataset)
        plan = ChaosPlan(events=(MachineCrash(time=mid_loop(clean)),))
        faulted = run(key, workload, dataset, plan=plan)
        assert faulted.ok
        (recover,) = spans(faulted, "recover")
        assert recover["args"]["seconds"] == pytest.approx(recover["dur"])
        return faulted, recover

    def test_giraph_checkpoint_replay(self, twitter):
        """Checkpoint recovery = reload from HDFS + replay since the
        last checkpoint: dur == 2*hdfs_read + (ts - checkpoint end)."""
        faulted, recover = self.one_crash("G", "pagerank", twitter)
        reads = [s for s in spans(faulted, "hdfs_read")
                 if s["parent"] == recover["id"]]
        (read,) = reads
        checkpoints = [s for s in spans(faulted, "checkpoint")
                       if s["ts"] < recover["ts"]]
        last_ckpt = max(checkpoints, key=lambda s: s["ts"])
        ckpt_end = last_ckpt["ts"] + last_ckpt["dur"]
        # advance(now - ckpt_time) runs after the read, so the re-read
        # seconds are paid twice over the replay distance
        expected = 2 * read["dur"] + (recover["ts"] - ckpt_end)
        assert recover["dur"] == pytest.approx(expected)
        assert faulted.extras["supersteps_replayed"] == (
            recover["args"]["iteration"] - last_ckpt["args"]["iteration"])

    def test_hadoop_reexecutes_one_superstep(self, twitter):
        """Re-execution recovery redoes exactly the iteration the crash
        interrupted: dur == that superstep's own duration."""
        faulted, recover = self.one_crash("HD", "pagerank", twitter)
        preceding = [s for s in spans(faulted, "superstep")
                     if s["ts"] < recover["ts"]]
        interrupted = max(preceding, key=lambda s: s["ts"])
        assert recover["dur"] == pytest.approx(interrupted["dur"])
        assert faulted.extras["supersteps_replayed"] == 1

    def test_vertica_restarts_from_zero(self, twitter):
        """No fault tolerance: the crash repeats everything since the
        loop started — dur == ts - first superstep's start."""
        faulted, recover = self.one_crash("V", "pagerank", twitter)
        first_step = min(spans(faulted, "superstep"), key=lambda s: s["ts"])
        assert recover["dur"] == pytest.approx(
            recover["ts"] - first_step["ts"])
        assert faulted.extras["supersteps_replayed"] == (
            recover["args"]["iteration"])


# -- determinism -------------------------------------------------------------

class TestDeterminism:
    def test_same_plan_byte_identical_journals(self, twitter, clean_bv):
        plan = plan_for("crash", 2, (clean_bv.load_time,
                                     clean_bv.load_time + clean_bv.execute_time),
                        seed=7)
        first = run("BV", "pagerank", twitter, plan=plan)
        second = run("BV", "pagerank", twitter, plan=plan)
        assert (first.observation.journal().dumps()
                == second.observation.journal().dumps())

    def test_seed_moves_the_struck_machine(self, twitter, clean_bv):
        t = mid_loop(clean_bv)
        machines = set()
        for seed in range(8):
            plan = ChaosPlan(events=(MachineCrash(time=t),), seed=seed)
            faulted = run("BV", "pagerank", twitter, plan=plan)
            (fault,) = spans(faulted, "fault")
            machines.add(fault["args"]["machine"])
        assert len(machines) > 1

    def test_pinned_machine_wins_over_seed(self, twitter, clean_bv):
        plan = ChaosPlan(events=(
            MachineCrash(time=mid_loop(clean_bv), machine=5),), seed=99)
        faulted = run("BV", "pagerank", twitter, plan=plan)
        (fault,) = spans(faulted, "fault")
        assert fault["args"]["machine"] == 5

    def test_jobs_parallel_matches_inline(self, twitter, clean_bv, tmp_path):
        from repro.core.runner import ExperimentSpec
        from repro.exec import execute_specs

        plan = plan_for("crash", 1, (clean_bv.load_time,
                                     clean_bv.load_time + clean_bv.execute_time))
        specs = [ExperimentSpec(
            systems=("BV", "V"), workloads=("pagerank",),
            datasets=("twitter",), cluster_sizes=(16,), chaos=plan,
        )]
        inline = execute_specs(specs, jobs=1, cache=None)
        pooled = execute_specs(specs, jobs=2, cache=None)
        for a, b in zip(inline.results, pooled.results):
            assert a.total_time == b.total_time
            assert np.array_equal(a.answer, b.answer)
            assert (a.observation.journal().dumps()
                    == b.observation.journal().dumps())


# -- the exec integration ----------------------------------------------------

class TestExecIntegration:
    def make_task(self, plan):
        from repro.core.runner import ExperimentSpec
        from repro.exec import plan_grid

        spec = ExperimentSpec(
            systems=("BV",), workloads=("pagerank",), datasets=("twitter",),
            cluster_sizes=(16,), chaos=plan,
        )
        (task,) = plan_grid(spec)
        return task

    def test_chaos_is_part_of_the_cache_key(self, twitter):
        from repro.exec import cell_key

        quiet = self.make_task(None)
        crashed = self.make_task(ChaosPlan(events=(MachineCrash(time=5.0),)))
        reseeded = self.make_task(ChaosPlan(events=(MachineCrash(time=5.0),),
                                            seed=1))
        code = "fixed"
        keys = {cell_key(t, twitter, code): t
                for t in (quiet, crashed, reseeded)}
        assert len(keys) == 3

    def test_chaos_survives_the_task_payload(self):
        plan = ChaosPlan(events=(Straggler(time=2.0),), seed=4)
        task = self.make_task(plan)
        assert ChaosPlan.from_dict(task.payload()["chaos"]) == plan
        assert plan.label() in task.cell_id

    def test_cached_chaos_cell_replays_identically(self, tmp_path):
        from repro.core.runner import ExperimentSpec
        from repro.exec import execute_specs

        specs = [ExperimentSpec(
            systems=("BV",), workloads=("pagerank",), datasets=("twitter",),
            cluster_sizes=(16,),
            chaos=ChaosPlan(events=(MachineCrash(time=60.0),)),
        )]
        first = execute_specs(specs, jobs=1, cache=tmp_path)
        second = execute_specs(specs, jobs=1, cache=tmp_path)
        assert second.report.cache_hits == 1
        assert (first.results[0].total_time
                == second.results[0].total_time)
        assert np.array_equal(first.results[0].answer,
                              second.results[0].answer)


# -- the MTTR experiment and the extension finding ---------------------------

class TestRecoveryExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return recovery_cost_experiment(
            systems=("BV", "HD", "V"), faults=("crash", "msgloss"),
            intensities=(1, 2), jobs=1,
        )

    def test_grid_shape_and_mechanisms(self, report):
        assert len(report.cells) == 3 * 2 * 2
        mechanisms = {c.mechanism for c in report.cells}
        assert mechanisms == {"checkpoint", "reexecution", "none"}

    def test_every_cell_exact(self, report):
        assert report.all_exact
        assert report.mismatches() == []
        for cell in report.cells:
            assert cell.completed

    def test_mttr_and_overhead_positive_for_crashes(self, report):
        for cell in report.cells:
            if cell.fault != "crash":
                continue
            assert cell.mttr > 0
            assert cell.overhead_seconds > 0
            assert cell.recovery_seconds == pytest.approx(
                cell.mttr * cell.intensity)

    def test_restart_from_zero_dominates(self, report):
        by = {(c.system, c.fault, c.intensity): c for c in report.cells}
        assert (by[("V", "crash", 1)].mttr
                > by[("BV", "crash", 1)].mttr)
        assert (by[("V", "crash", 1)].mttr
                > by[("HD", "crash", 1)].mttr)
        # the second crash repeats even more completed work
        assert (by[("V", "crash", 2)].overhead_seconds
                > 1.5 * by[("V", "crash", 1)].overhead_seconds)


def test_extension_finding_supported():
    from repro.core import EXTENSION_FINDINGS, verify_all_findings

    (check,) = [c for c in EXTENSION_FINDINGS
                if c.__name__ == "_chaos_recovery_tradeoff"]
    finding = check()
    assert finding.supported, finding.evidence
    assert finding.evidence["faulted_answers_exact"] is True
    # the default verification stays the paper's own findings
    assert len(verify_all_findings.__defaults__) == 1
