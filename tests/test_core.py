"""Tests for the experiment core: runner, COST, tuning, scalability."""

import pytest

from repro.cluster import FailureKind
from repro.core import (
    ExperimentSpec,
    ResultGrid,
    cost_factor,
    graphlab_core_study,
    graphx_partition_sweep,
    paper_grid,
    recommended_graphx_partitions,
    run_cell,
    run_grid,
    scaling_classification,
    scaling_curves,
)
from repro.datasets import load_dataset
from repro.engines.base import RunResult


@pytest.fixture(scope="module")
def mini_grid():
    spec = ExperimentSpec(
        systems=("BV", "G"),
        workloads=("khop",),
        datasets=("twitter",),
        cluster_sizes=(16, 32),
        dataset_size="tiny",
    )
    return run_grid(spec)


class TestRunner:
    def test_run_cell(self):
        d = load_dataset("twitter", "tiny")
        result = run_cell("BV", "khop", d, 16)
        assert result.ok
        assert result.system == "BV"
        assert result.cluster_size == 16

    def test_grid_has_all_cells(self, mini_grid):
        assert len(mini_grid) == 4
        assert mini_grid.get("BV", "khop", "twitter", 16) is not None
        assert mini_grid.get("G", "khop", "twitter", 32) is not None

    def test_missing_cell_is_none(self, mini_grid):
        assert mini_grid.get("HD", "khop", "twitter", 16) is None
        assert mini_grid.cell_text("HD", "khop", "twitter", 16) == "-"

    def test_cell_text_seconds(self, mini_grid):
        text = mini_grid.cell_text("BV", "khop", "twitter", 16)
        assert text.replace(".", "").isdigit()

    def test_completed_and_failures_partition(self, mini_grid):
        assert len(mini_grid.completed()) + len(mini_grid.failures()) == 4

    def test_best_system(self, mini_grid):
        best = mini_grid.best_system("khop", "twitter", 16)
        assert best is not None
        assert best.total_time <= min(
            r.total_time for r in mini_grid.completed()
            if r.cluster_size == 16
        )

    def test_best_system_none_when_empty(self):
        assert ResultGrid().best_system("wcc", "twitter", 16) is None

    def test_paper_grid_lineup(self):
        grid = paper_grid(
            "khop", datasets=("twitter",), cluster_sizes=(16,),
            dataset_size="tiny",
        )
        assert len(grid) == 9   # GRID_SYSTEMS


class TestCost:
    def test_cost_factor(self):
        assert cost_factor(100.0, 50.0) == 2.0

    def test_cost_factor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            cost_factor(1.0, 0.0)

    def test_rows_have_parallel_winner(self):
        from repro.core import cost_experiment

        rows = cost_experiment(
            datasets=("twitter",), workloads=("khop",),
            systems=("BV", "G"), dataset_size="tiny",
        )
        assert len(rows) == 1
        assert rows[0].best_parallel_system in ("BV", "G")
        assert rows[0].cost is not None


class TestTuning:
    def test_core_study_shape(self):
        results = graphlab_core_study(dataset_name="twitter", dataset_size="tiny")
        assert len(results) == 4
        modes = {(r.mode, r.compute_cores) for r in results}
        assert modes == {("sync", 2), ("sync", 4), ("async", 2), ("async", 4)}

    def test_partition_sweep(self):
        results = graphx_partition_sweep(
            "twitter", 16, (32, 128), dataset_size="tiny"
        )
        assert set(results) == {32, 128}
        assert all(r.ok for r in results.values())

    def test_recommended_partitions_capped(self):
        d = load_dataset("uk0705", "small")
        rec = recommended_graphx_partitions(d, 16)
        assert rec <= 2 * 15 * 4


class TestScalability:
    def _grid_with(self, times):
        grid = ResultGrid()
        for size, t in times.items():
            grid.put(RunResult(
                system="X", workload="pagerank", dataset="d",
                cluster_size=size, execute_time=t,
            ))
        return grid

    def test_curves_extracted(self):
        grid = self._grid_with({16: 100.0, 32: 60.0, 64: 40.0})
        curves = scaling_curves(grid, "pagerank", "d", cluster_sizes=(16, 32, 64))
        assert len(curves) == 1
        assert curves[0].points == ((16, 100.0), (32, 60.0), (64, 40.0))

    def test_speedups_relative_to_base(self):
        grid = self._grid_with({16: 100.0, 64: 25.0})
        curve = scaling_curves(grid, "pagerank", "d", cluster_sizes=(16, 64))[0]
        assert curve.speedups()[64] == pytest.approx(4.0)

    def test_steady_classification(self):
        steady = self._grid_with({16: 100.0, 32: 70.0, 64: 50.0})
        curve = scaling_curves(steady, "pagerank", "d", cluster_sizes=(16, 32, 64))[0]
        assert scaling_classification([curve]) == {"X": "steady"}

    def test_irregular_classification(self):
        bumpy = self._grid_with({16: 100.0, 32: 70.0, 64: 95.0})
        curve = scaling_curves(bumpy, "pagerank", "d", cluster_sizes=(16, 32, 64))[0]
        assert scaling_classification([curve]) == {"X": "irregular"}

    def test_failed_cells_excluded(self):
        grid = self._grid_with({16: 100.0})
        grid.put(RunResult(
            system="X", workload="pagerank", dataset="d", cluster_size=32,
            failure=FailureKind.OOM,
        ))
        curve = scaling_curves(grid, "pagerank", "d", cluster_sizes=(16, 32))[0]
        assert curve.points == ((16, 100.0),)
