"""Strong-scaling analysis (§5.12).

The paper runs fixed datasets on growing clusters ("strong, horizontal"
scalability in LDBC's taxonomy). The analysis here computes speedup
curves and classifies each system's scaling behaviour the way §5.12
describes it: Blogel, Giraph, Gelly, and GraphLab improve steadily;
GraphX (stragglers) and Vertica (shuffle growth) do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .runner import ResultGrid

__all__ = ["ScalingCurve", "scaling_curves", "scaling_classification"]


@dataclass(frozen=True)
class ScalingCurve:
    """Total response time per cluster size for one (system, workload, dataset)."""

    system: str
    workload: str
    dataset: str
    points: Tuple[Tuple[int, float], ...]   # (cluster size, seconds)

    def speedups(self) -> Dict[int, float]:
        """Speedup relative to the smallest completed cluster size."""
        if not self.points:
            return {}
        base_size, base_time = self.points[0]
        return {size: base_time / time for size, time in self.points if time > 0}

    def is_steady_improvement(self, tolerance: float = 0.10) -> bool:
        """True when time never degrades by more than ``tolerance``."""
        times = [t for _, t in self.points]
        return all(b <= a * (1 + tolerance) for a, b in zip(times, times[1:]))


def scaling_curves(
    grid: ResultGrid,
    workload: str,
    dataset: str,
    systems: Optional[Sequence[str]] = None,
    cluster_sizes: Sequence[int] = (16, 32, 64, 128),
) -> List[ScalingCurve]:
    """Extract per-system scaling curves from a result grid."""
    keys = systems if systems is not None else sorted(
        {s for (s, w, d, _c) in grid.cells if w == workload and d == dataset}
    )
    curves = []
    for system in keys:
        points = []
        for size in cluster_sizes:
            result = grid.get(system, workload, dataset, size)
            if result is not None and result.ok:
                points.append((size, result.total_time))
        if points:
            curves.append(
                ScalingCurve(
                    system=system, workload=workload, dataset=dataset,
                    points=tuple(points),
                )
            )
    return curves


def scaling_classification(curves: Sequence[ScalingCurve]) -> Dict[str, str]:
    """Label each system 'steady' or 'irregular' per §5.12's reading."""
    labels: Dict[str, str] = {}
    for curve in curves:
        if len(curve.points) < 2:
            labels[curve.system] = "insufficient-data"
        elif curve.is_steady_improvement():
            labels[curve.system] = "steady"
        else:
            labels[curve.system] = "irregular"
    return labels
