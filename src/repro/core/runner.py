"""The experiment matrix runner (§4, Table 2).

Runs system x workload x dataset x cluster-size cells and collects them
into a :class:`ResultGrid` — the in-memory form of the paper's result
figures, from which the bench harness prints each figure's rows.

Grid execution is delegated to :mod:`repro.exec`: the classic
sequential loop is the executor's ``jobs=1`` case, and the same call
scales out over a process pool with result caching and resume (see
``run_grid``'s ``jobs``/``cache_dir``/``resume`` parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional,
                    Sequence, Tuple, Union)

from ..chaos.plan import ChaosPlan
from ..cluster import CLUSTER_SIZES, ClusterSpec
from ..datasets.registry import Dataset
from ..engines import make_engine, systems_for_workload, workload_for
from ..engines.base import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.progress import CellEvent

__all__ = ["ExperimentSpec", "ResultGrid", "run_cell", "run_grid"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One slice of the experiment matrix."""

    systems: Tuple[str, ...]
    workloads: Tuple[str, ...]
    datasets: Tuple[str, ...]
    cluster_sizes: Tuple[int, ...] = CLUSTER_SIZES
    dataset_size: str = "small"
    #: fault schedule injected into every cell (None = failure-free);
    #: the plan's seed and events join the exec cache key
    chaos: Optional[ChaosPlan] = None


@dataclass
class ResultGrid:
    """All cells of one experiment, addressable like the paper's figures."""

    cells: Dict[Tuple[str, str, str, int], RunResult] = field(default_factory=dict)

    def put(self, result: RunResult) -> None:
        """Store one run."""
        key = (result.system, result.workload, result.dataset, result.cluster_size)
        self.cells[key] = result

    def get(
        self, system: str, workload: str, dataset: str, cluster_size: int
    ) -> Optional[RunResult]:
        """Fetch one cell, or None when it was not run."""
        return self.cells.get((system, workload, dataset, cluster_size))

    def cell_text(
        self, system: str, workload: str, dataset: str, cluster_size: int
    ) -> str:
        """The printable cell: seconds, a failure code, or '-'."""
        result = self.get(system, workload, dataset, cluster_size)
        return result.cell() if result is not None else "-"

    def completed(self) -> List[RunResult]:
        """All successful runs."""
        return [r for r in self.cells.values() if r.ok]

    def failures(self) -> List[RunResult]:
        """All failed runs."""
        return [r for r in self.cells.values() if not r.ok]

    def best_system(
        self, workload: str, dataset: str, cluster_size: int,
        end_to_end: bool = True,
    ) -> Optional[RunResult]:
        """The winning system for one (workload, dataset, size) column."""
        candidates = [
            r for (s, w, d, c), r in self.cells.items()
            if w == workload and d == dataset and c == cluster_size and r.ok
        ]
        if not candidates:
            return None
        metric = (lambda r: r.total_time) if end_to_end else (lambda r: r.execute_time)
        return min(candidates, key=metric)

    def same_results(self, other: "ResultGrid") -> bool:
        """True when both grids hold the same cells with the same results.

        Compares every serializable quantity (times, failures, metrics)
        plus the answer arrays exactly; observations are provenance, not
        results, so a cached or worker-produced grid compares equal to
        the sequential run that would have produced it.
        """
        import numpy as np

        from ..analysis.logs import result_to_record

        if set(self.cells) != set(other.cells):
            return False
        for key, mine in self.cells.items():
            theirs = other.cells[key]
            if result_to_record(mine) != result_to_record(theirs):
                return False
            if (mine.answer is None) != (theirs.answer is None):
                return False
            if mine.answer is not None and not np.array_equal(
                mine.answer, theirs.answer
            ):
                return False
        return True

    def __len__(self) -> int:
        return len(self.cells)


def run_cell(
    system: str,
    workload_name: str,
    dataset: Dataset,
    cluster_size: int,
    chaos: Optional[ChaosPlan] = None,
) -> RunResult:
    """Run one experiment cell (optionally under a chaos plan)."""
    engine = make_engine(system)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(
        dataset, workload, ClusterSpec(cluster_size, fault_plan=chaos)
    )


def run_grid(
    spec: ExperimentSpec,
    verbose: bool = False,
    progress: Optional[Callable[["CellEvent"], None]] = None,
    jobs: int = 1,
    cache_dir: Union[None, str, Path] = None,
    resume: bool = False,
) -> ResultGrid:
    """Run the full matrix described by ``spec``.

    The default call (``jobs=1``, no cache) is the classic sequential
    loop; ``jobs=N`` fans independent cells out over ``N`` worker
    processes and ``cache_dir`` memoizes finished cells on disk (see
    :func:`repro.exec.execute_grid`, which also returns the execution
    report when you need it). Progress reporting goes through one
    callback for every mode; ``verbose=True`` installs the default
    printer.
    """
    from ..exec import execute_grid, print_progress

    if progress is None and verbose:
        progress = print_progress
    execution = execute_grid(
        spec, jobs=jobs, cache=cache_dir, resume=resume, progress=progress
    )
    return execution.grid


def paper_grid(
    workload_name: str,
    datasets: Sequence[str] = ("twitter", "uk0705", "wrn"),
    cluster_sizes: Sequence[int] = CLUSTER_SIZES,
    dataset_size: str = "small",
    **run_kwargs,
) -> ResultGrid:
    """The result grid of one of Figures 6-9: one workload, all systems.

    Extra keyword arguments (``jobs``, ``cache_dir``, ``resume``,
    ``progress``, ``verbose``) pass through to :func:`run_grid`.
    """
    spec = ExperimentSpec(
        systems=systems_for_workload(workload_name),
        workloads=(workload_name,),
        datasets=tuple(datasets),
        cluster_sizes=tuple(cluster_sizes),
        dataset_size=dataset_size,
    )
    return run_grid(spec, **run_kwargs)
