"""The experiment matrix runner (§4, Table 2).

Runs system x workload x dataset x cluster-size cells and collects them
into a :class:`ResultGrid` — the in-memory form of the paper's result
figures, from which the bench harness prints each figure's rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cluster import CLUSTER_SIZES, ClusterSpec
from ..datasets.registry import Dataset, load_dataset
from ..engines import make_engine, systems_for_workload, workload_for
from ..engines.base import RunResult

__all__ = ["ExperimentSpec", "ResultGrid", "run_cell", "run_grid"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One slice of the experiment matrix."""

    systems: Tuple[str, ...]
    workloads: Tuple[str, ...]
    datasets: Tuple[str, ...]
    cluster_sizes: Tuple[int, ...] = CLUSTER_SIZES
    dataset_size: str = "small"


@dataclass
class ResultGrid:
    """All cells of one experiment, addressable like the paper's figures."""

    cells: Dict[Tuple[str, str, str, int], RunResult] = field(default_factory=dict)

    def put(self, result: RunResult) -> None:
        """Store one run."""
        key = (result.system, result.workload, result.dataset, result.cluster_size)
        self.cells[key] = result

    def get(
        self, system: str, workload: str, dataset: str, cluster_size: int
    ) -> Optional[RunResult]:
        """Fetch one cell, or None when it was not run."""
        return self.cells.get((system, workload, dataset, cluster_size))

    def cell_text(
        self, system: str, workload: str, dataset: str, cluster_size: int
    ) -> str:
        """The printable cell: seconds, a failure code, or '-'."""
        result = self.get(system, workload, dataset, cluster_size)
        return result.cell() if result is not None else "-"

    def completed(self) -> List[RunResult]:
        """All successful runs."""
        return [r for r in self.cells.values() if r.ok]

    def failures(self) -> List[RunResult]:
        """All failed runs."""
        return [r for r in self.cells.values() if not r.ok]

    def best_system(
        self, workload: str, dataset: str, cluster_size: int,
        end_to_end: bool = True,
    ) -> Optional[RunResult]:
        """The winning system for one (workload, dataset, size) column."""
        candidates = [
            r for (s, w, d, c), r in self.cells.items()
            if w == workload and d == dataset and c == cluster_size and r.ok
        ]
        if not candidates:
            return None
        metric = (lambda r: r.total_time) if end_to_end else (lambda r: r.execute_time)
        return min(candidates, key=metric)

    def __len__(self) -> int:
        return len(self.cells)


def run_cell(
    system: str,
    workload_name: str,
    dataset: Dataset,
    cluster_size: int,
) -> RunResult:
    """Run one experiment cell."""
    engine = make_engine(system)
    workload = workload_for(engine, workload_name, dataset)
    return engine.run(dataset, workload, ClusterSpec(cluster_size))


def run_grid(spec: ExperimentSpec, verbose: bool = False) -> ResultGrid:
    """Run the full matrix described by ``spec``."""
    grid = ResultGrid()
    for dataset_name in spec.datasets:
        dataset = load_dataset(dataset_name, spec.dataset_size)
        for workload_name in spec.workloads:
            for cluster_size in spec.cluster_sizes:
                for system in spec.systems:
                    result = run_cell(system, workload_name, dataset, cluster_size)
                    grid.put(result)
                    if verbose:
                        print(
                            f"{system:>9s} {workload_name:>8s} {dataset_name:>8s} "
                            f"@{cluster_size:<3d} -> {result.cell()}"
                        )
    return grid


def paper_grid(
    workload_name: str,
    datasets: Sequence[str] = ("twitter", "uk0705", "wrn"),
    cluster_sizes: Sequence[int] = CLUSTER_SIZES,
    dataset_size: str = "small",
) -> ResultGrid:
    """The result grid of one of Figures 6-9: one workload, all systems."""
    spec = ExperimentSpec(
        systems=systems_for_workload(workload_name),
        workloads=(workload_name,),
        datasets=tuple(datasets),
        cluster_sizes=tuple(cluster_sizes),
        dataset_size=dataset_size,
    )
    return run_grid(spec)
