"""The COST experiment (§5.13, Table 9).

COST — "Configuration that Outperforms a Single Thread" (McSherry et
al.) — divides the single-thread response time by a parallel system's
response time. COST < 1 means the cluster is *slower* than one good
thread. The paper's headline: PageRank's best parallel systems reach
COST 2-3, but reachability workloads on the road network fall to
0.03-0.04 — two orders of magnitude *slower* than one thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..datasets.registry import load_dataset
from ..engines import make_engine, workload_for
from ..engines.base import RunResult
from .runner import run_cell

__all__ = ["CostRow", "cost_factor", "cost_experiment"]


@dataclass(frozen=True)
class CostRow:
    """One Table 9 row-cell: single thread vs best parallel system."""

    dataset: str
    workload: str
    single_thread_seconds: float
    best_parallel_seconds: Optional[float]
    best_parallel_system: Optional[str]

    @property
    def cost(self) -> Optional[float]:
        """single-thread time / parallel time (> 1: cluster wins)."""
        if not self.best_parallel_seconds:
            return None
        return self.single_thread_seconds / self.best_parallel_seconds


def cost_factor(single_seconds: float, parallel_seconds: float) -> float:
    """The COST ratio for one pairing."""
    if parallel_seconds <= 0:
        raise ValueError("parallel time must be positive")
    return single_seconds / parallel_seconds


def cost_experiment(
    datasets: Sequence[str] = ("twitter", "uk0705", "wrn"),
    workloads: Sequence[str] = ("pagerank", "sssp", "wcc"),
    systems: Sequence[str] = ("BV", "BB", "G", "GL-S-R-I", "GL-S-A-I", "FG"),
    cluster_size: int = 16,
    dataset_size: str = "small",
) -> List[CostRow]:
    """Table 9: best 16-machine parallel system vs the single thread.

    The single-thread engine runs the GAP-style optimized algorithms on
    the 512 GB machine regardless of ``cluster_size``.
    """
    rows: List[CostRow] = []
    single = make_engine("ST")
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, dataset_size)
        for workload_name in workloads:
            st_result = single.run(
                dataset, workload_for(single, workload_name, dataset), None
            )
            best: Optional[RunResult] = None
            for system in systems:
                result = run_cell(system, workload_name, dataset, cluster_size)
                if result.ok and (best is None or result.total_time < best.total_time):
                    best = result
            rows.append(
                CostRow(
                    dataset=dataset_name,
                    workload=workload_name,
                    single_thread_seconds=st_result.total_time,
                    best_parallel_seconds=best.total_time if best else None,
                    best_parallel_system=best.system if best else None,
                )
            )
    return rows
