"""Experiment core: matrix runner, COST analysis, tuning, scalability."""

from .cost import CostRow, cost_experiment, cost_factor
from .findings import EXTENSION_FINDINGS, FINDINGS, Finding, verify_all_findings
from .runner import ExperimentSpec, ResultGrid, paper_grid, run_cell, run_grid
from .scalability import ScalingCurve, scaling_classification, scaling_curves
from .sensitivity import (
    PERTURBABLE_CONSTANTS,
    SensitivityResult,
    perturbed_costs,
    sensitivity_analysis,
)
from .vertical_scaling import VerticalPoint, vertical_scaling_experiment
from .weak_scaling import (
    WeakScalingPoint,
    weak_efficiency,
    weak_scaling_dataset,
    weak_scaling_experiment,
)
from .tuning import (
    CoreStudyResult,
    graphlab_core_study,
    graphx_partition_sweep,
    recommended_graphx_partitions,
)

__all__ = [
    "ExperimentSpec",
    "ResultGrid",
    "run_cell",
    "run_grid",
    "paper_grid",
    "CostRow",
    "cost_factor",
    "cost_experiment",
    "Finding",
    "FINDINGS",
    "EXTENSION_FINDINGS",
    "verify_all_findings",
    "VerticalPoint",
    "PERTURBABLE_CONSTANTS",
    "SensitivityResult",
    "perturbed_costs",
    "sensitivity_analysis",
    "vertical_scaling_experiment",
    "ScalingCurve",
    "scaling_curves",
    "scaling_classification",
    "CoreStudyResult",
    "graphlab_core_study",
    "graphx_partition_sweep",
    "recommended_graphx_partitions",
    "WeakScalingPoint",
    "weak_scaling_dataset",
    "weak_scaling_experiment",
    "weak_efficiency",
]
