"""The paper's major findings (§1), verified programmatically.

Each :class:`Finding` runs the experiment cells behind one bullet of
the paper's findings list and reports whether the reproduced data
supports it, with the evidence attached. ``verify_all_findings`` is the
one-call answer to "does this reproduction actually reproduce the
paper?" — used by the CLI's ``findings`` command and the final
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..cluster import ClusterSpec, FailureKind
from ..datasets import load_dataset
from ..engines import GRID_SYSTEMS, make_engine, workload_for
from .cost import cost_experiment

__all__ = ["Finding", "verify_all_findings", "FINDINGS", "EXTENSION_FINDINGS"]


@dataclass
class Finding:
    """One verified claim from the paper's findings list."""

    key: str
    claim: str
    section: str
    supported: bool = False
    evidence: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        mark = "SUPPORTED" if self.supported else "NOT SUPPORTED"
        return f"Finding({self.key}: {mark})"


def _run(key: str, workload: str, dataset_name: str, machines: int = 16):
    dataset = load_dataset(dataset_name, "small")
    engine = make_engine(key)
    return engine.run(
        dataset, workload_for(engine, workload, dataset), ClusterSpec(machines)
    )


def _blogel_winner() -> Finding:
    finding = Finding(
        key="blogel-winner",
        claim=("Blogel is the overall winner: Blogel-B has the shortest "
               "execution, Blogel-V the best end-to-end time"),
        section="§5.1",
    )
    results = {k: _run(k, "sssp", "uk0705") for k in GRID_SYSTEMS}
    ok = {k: r for k, r in results.items() if r.ok}
    exec_winner = min(ok, key=lambda k: ok[k].execute_time)
    total_winner = min(ok, key=lambda k: ok[k].total_time)
    finding.evidence = {
        "execution_winner": exec_winner,
        "end_to_end_winner": total_winner,
        "execution_seconds": {k: round(r.execute_time, 1) for k, r in ok.items()},
    }
    finding.supported = exec_winner == "BB" and total_winner == "BV"
    return finding


def _large_diameter() -> Finding:
    finding = Finding(
        key="large-diameter",
        claim=("Existing systems are inefficient over graphs with large "
               "diameters, such as the road network"),
        section="§5.3, §5.6, §5.8",
    )
    outcomes = {k: _run(k, "wcc", "wrn").cell() for k in GRID_SYSTEMS}
    failures = sum(1 for v in outcomes.values() if v in ("OOM", "TO", "MPI", "SHFL"))
    finding.evidence = {"wrn_wcc_at_16": outcomes, "failures": failures}
    finding.supported = failures >= len(GRID_SYSTEMS) - 1
    return finding


def _graphlab_sensitivity() -> Finding:
    finding = Finding(
        key="graphlab-cluster-sensitivity",
        claim="GraphLab performance is sensitive to cluster size",
        section="§5.4",
    )
    loads = {
        m: _run("GL-S-A-I", "pagerank", "uk0705", m).load_time
        for m in (16, 32, 64)
    }
    finding.evidence = {"auto_load_seconds": {m: round(t, 1) for m, t in loads.items()}}
    # Oblivious at 32 loads slower than Grid at both 16 and 64
    finding.supported = loads[32] > loads[16] and loads[32] > loads[64]
    return finding


def _giraph_vs_graphlab() -> Finding:
    finding = Finding(
        key="giraph-graphlab-parity",
        claim=("Giraph performs like GraphLab under random partitioning: "
               "faster on small clusters, loses at 128"),
        section="§5.5",
    )
    times = {}
    for machines in (16, 128):
        times[machines] = {
            k: _run(k, "pagerank", "twitter", machines).total_time
            for k in ("G", "GL-S-R-I")
        }
    finding.evidence = {
        m: {k: round(v, 1) for k, v in row.items()} for m, row in times.items()
    }
    finding.supported = (
        times[16]["G"] < times[16]["GL-S-R-I"]
        and times[128]["GL-S-R-I"] < times[128]["G"]
    )
    return finding


def _graphx_iterations() -> Finding:
    finding = Finding(
        key="graphx-iterations",
        claim=("GraphX is not suitable for workloads or datasets needing "
               "large iteration counts"),
        section="§5.6",
    )
    wrn = {m: _run("S", "wcc", "wrn", m).cell() for m in (16, 64)}
    twitter = _run("S", "pagerank", "twitter")
    others = min(
        _run(k, "pagerank", "twitter").total_time
        for k in ("BV", "G", "GL-S-R-I", "FG")
    )
    finding.evidence = {
        "wrn_wcc_cells": wrn,
        "twitter_pagerank_vs_best": (round(twitter.total_time, 1), round(others, 1)),
    }
    finding.supported = (
        all(v in ("OOM", "TO") for v in wrn.values())
        and twitter.total_time > 3 * others
    )
    return finding


def _framework_overhead() -> Finding:
    finding = Finding(
        key="framework-overhead",
        claim=("Hadoop/Spark frameworks add computation overhead that "
               "carries into Giraph and GraphX, but out-of-core systems "
               "finish when memory is constrained"),
        section="§5.7, §5.9, §5.10",
    )
    overheads = {
        k: _run(k, "khop", "twitter").overhead_time
        for k in ("G", "S", "BV", "GL-S-R-I")
    }
    clueweb_hadoop = _run("HD", "khop", "clueweb", 128)
    clueweb_giraph = _run("G", "khop", "clueweb", 128)
    finding.evidence = {
        "overhead_seconds": {k: round(v, 1) for k, v in overheads.items()},
        "clueweb_hadoop": clueweb_hadoop.cell(),
        "clueweb_giraph": clueweb_giraph.cell(),
    }
    finding.supported = (
        overheads["G"] > 5 * overheads["BV"]
        and overheads["S"] > 5 * overheads["GL-S-R-I"]
        and clueweb_hadoop.ok
        and not clueweb_giraph.ok
    )
    return finding


def _vertica_slow() -> Finding:
    finding = Finding(
        key="vertica-uncompetitive",
        claim=("Vertica is significantly slower than native graph systems; "
               "small memory, high I/O wait and network"),
        section="§5.11",
    )
    vertica = _run("V", "pagerank", "uk0705", 64)
    blogel = _run("BV", "pagerank", "uk0705", 64)
    finding.evidence = {
        "vertica_seconds": round(vertica.total_time, 1),
        "blogel_seconds": round(blogel.total_time, 1),
        "vertica_peak_memory_gb": round(vertica.peak_memory_bytes / 2**30, 1),
        "blogel_network_gb": round(blogel.network_bytes / 1e9, 1),
        "vertica_network_gb": round(vertica.network_bytes / 1e9, 1),
    }
    finding.supported = (
        vertica.total_time > 2 * blogel.total_time
        and vertica.peak_memory_bytes < blogel.peak_memory_bytes * 2
        and vertica.network_bytes > blogel.network_bytes
    )
    return finding


def _cost_metric() -> Finding:
    finding = Finding(
        key="cost-metric",
        claim=("PageRank's COST is 2-3; reachability on the road network "
               "is two orders of magnitude slower than a single thread"),
        section="§5.13",
    )
    rows = cost_experiment(
        datasets=("twitter", "wrn"), workloads=("pagerank", "sssp"),
        systems=("BV", "BB", "G", "GL-S-R-I"),
    )
    by_key = {(r.dataset, r.workload): r.cost for r in rows}
    finding.evidence = {
        f"{d}/{w}": round(c, 3) for (d, w), c in by_key.items() if c
    }
    finding.supported = (
        1.5 < by_key[("twitter", "pagerank")] < 4.5
        and by_key[("wrn", "sssp")] < 0.1
    )
    return finding


def _chaos_recovery_tradeoff() -> Finding:
    finding = Finding(
        key="chaos-checkpoint-tradeoff",
        claim=("[extension] The checkpoint interval trades steady-state "
               "overhead against replay cost, and Vertica's restart-from-"
               "zero recovery dominates past the first fault"),
        section="extension of Table 1 (repro.chaos)",
    )
    from ..chaos import ChaosPlan, MachineCrash

    def run_chaos(key: str, plan: "ChaosPlan", machines: int = 16):
        dataset = load_dataset("twitter", "small")
        engine = make_engine(key)
        return engine.run(
            dataset, workload_for(engine, "pagerank", dataset),
            ClusterSpec(machines, fault_plan=plan),
        )

    clean = {k: _run(k, "pagerank", "twitter") for k in ("BV", "HD", "V")}

    def crash_plan(key: str, fractions: Tuple[float, ...], interval: int = 10):
        return ChaosPlan(
            events=tuple(
                MachineCrash(
                    time=clean[key].load_time + clean[key].execute_time * f
                )
                for f in fractions
            ),
            checkpoint_interval=interval,
        )

    # the interval tradeoff, on the checkpointing BSP winner: a dense
    # interval pays more steady-state checkpoint time but replays less
    # after a mid-run crash; a sparse interval is the mirror image
    dense_quiet = run_chaos("BV", ChaosPlan(checkpoint_interval=2))
    sparse_quiet = run_chaos("BV", ChaosPlan(checkpoint_interval=40))
    dense = run_chaos("BV", crash_plan("BV", (0.5,), interval=2))
    sparse = run_chaos("BV", crash_plan("BV", (0.5,), interval=40))

    # restart-from-zero: every extra crash repeats ALL completed work,
    # so two crashes cost well over twice one crash
    v_one = run_chaos("V", crash_plan("V", (0.5,)))
    v_two = run_chaos("V", crash_plan("V", (0.4, 0.7)))
    hadoop = run_chaos("HD", crash_plan("HD", (0.5,)))

    def overhead(faulted, key: str) -> float:
        return faulted.total_time - clean[key].total_time

    steady_dense = overhead(dense_quiet, "BV")
    steady_sparse = overhead(sparse_quiet, "BV")
    replay_dense = float(dense.extras.get("recovery_seconds", 0.0))
    replay_sparse = float(sparse.extras.get("recovery_seconds", 0.0))
    exact = all(
        run.ok and np.array_equal(run.answer, clean[key].answer)
        for run, key in (
            (dense, "BV"), (sparse, "BV"), (v_one, "V"), (v_two, "V"),
            (hadoop, "HD"),
        )
    )
    finding.evidence = {
        "bv_steady_overhead_seconds": {
            "interval_2": round(steady_dense, 1),
            "interval_40": round(steady_sparse, 1),
        },
        "bv_crash_recovery_seconds": {
            "interval_2": round(replay_dense, 1),
            "interval_40": round(replay_sparse, 1),
        },
        "crash_overhead_seconds": {
            "V_x1": round(overhead(v_one, "V"), 1),
            "V_x2": round(overhead(v_two, "V"), 1),
            "HD_x1": round(overhead(hadoop, "HD"), 1),
            "BV_x1": round(overhead(dense, "BV"), 1),
        },
        "faulted_answers_exact": exact,
    }
    finding.supported = (
        steady_dense > steady_sparse
        and replay_dense < replay_sparse
        and overhead(v_two, "V") > 1.5 * overhead(v_one, "V")
        and overhead(v_one, "V") > overhead(dense, "BV")
        and overhead(v_one, "V") > overhead(hadoop, "HD")
        and exact
    )
    return finding


def _elastic_rescale_tolerance() -> Finding:
    finding = Finding(
        key="elastic-rescale-tolerance",
        claim=("[extension] Every mechanism survives mid-run rescaling "
               "with bit-equal answers, but the bills differ: migrate-only "
               "re-execution is cheapest, checkpoint systems pay a replay, "
               "and restart-from-zero grows with completed progress; "
               "scale-in always costs more end-to-end than scale-out"),
        section="extension of Table 1 (repro.elastic)",
    )
    from ..elastic import elasticity_experiment

    report = elasticity_experiment(systems=("BV", "G", "HD", "V"))
    cells = report.cells
    out = [c for c in cells if c.direction == "out"]
    scale_in = [c for c in cells if c.direction == "in"]
    exact = bool(cells) and all(c.tolerated for c in cells)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    rescale_bill = {
        mech: mean([c.rescale_seconds for c in cells if c.mechanism == mech])
        for mech in ("reexecution", "checkpoint", "none")
    }
    # restart-from-zero repeats everything completed so far, so a late
    # rescale must bill more recovery time than an early one
    restart = sorted(
        (c for c in cells if c.mechanism == "none"), key=lambda c: c.timing
    )
    restart_monotone = all(
        earlier.rescale_seconds <= later.rescale_seconds
        for earlier, later in zip(restart, restart[1:])
    )
    finding.evidence = {
        "cells": {
            f"{c.system}/{c.direction}@{c.timing}": c.cell_text()
            for c in cells
        },
        "rescale_seconds_by_mechanism": {
            k: round(v, 1) for k, v in rescale_bill.items()
        },
        "dollars_per_rescale_by_mechanism": {
            k: round(v, 2) for k, v in report.dollars_by_mechanism().items()
        },
        "mean_overhead_seconds": {
            "out": round(mean([c.overhead_seconds for c in out]), 1),
            "in": round(mean([c.overhead_seconds for c in scale_in]), 1),
        },
        "rescaled_answers_exact": exact,
    }
    finding.supported = (
        exact
        and bool(out) and bool(scale_in)
        and rescale_bill["reexecution"] < rescale_bill["checkpoint"]
        and rescale_bill["checkpoint"] < rescale_bill["none"]
        and restart_monotone
        and mean([c.overhead_seconds for c in scale_in])
        > mean([c.overhead_seconds for c in out])
    )
    return finding


FINDINGS: Tuple[Callable[[], Finding], ...] = (
    _blogel_winner,
    _large_diameter,
    _graphlab_sensitivity,
    _giraph_vs_graphlab,
    _graphx_iterations,
    _framework_overhead,
    _vertica_slow,
    _cost_metric,
)


#: beyond-the-paper findings, measured by the chaos layer — kept out of
#: ``FINDINGS`` so the default verification stays the paper's 8 bullets
EXTENSION_FINDINGS: Tuple[Callable[[], Finding], ...] = (
    _chaos_recovery_tradeoff,
    _elastic_rescale_tolerance,
)


def verify_all_findings(include_extensions: bool = False) -> List[Finding]:
    """Run every finding check; returns them in the paper's order.

    ``include_extensions=True`` appends the paper-extension findings
    (e.g. the chaos checkpoint-interval tradeoff) after the paper's own.
    """
    checks = FINDINGS + (EXTENSION_FINDINGS if include_extensions else ())
    return [check() for check in checks]
