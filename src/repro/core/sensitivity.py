"""Sensitivity analysis: are the findings artifacts of the calibration?

A simulation-based reproduction owes its reader an answer to the
obvious objection: *you chose the cost constants — of course the
results match.* This module perturbs the calibration constants (one at
a time, by a configurable factor) and re-checks a chosen set of
finding predicates. Findings that survive ±2x perturbations of every
constant are properties of the computation models; findings that flip
are calibration-dependent and are reported as such.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from ..engines.common import COSTS

__all__ = [
    "PERTURBABLE_CONSTANTS",
    "SensitivityResult",
    "perturbed_costs",
    "sensitivity_analysis",
]

#: the shared cost constants a reviewer would poke at
PERTURBABLE_CONSTANTS: Tuple[str, ...] = (
    "cpp_edge_cost",
    "jvm_edge_cost",
    "jvm_vertex_cost",
    "giraph_sweep_cost",
    "spark_edge_cost",
    "hadoop_record_cost",
    "combine_efficiency",
    "cpp_parse_cost",
    "jvm_parse_cost",
)


@contextmanager
def perturbed_costs(**overrides: float) -> Iterator[None]:
    """Temporarily scale COSTS attributes by the given factors.

    ``perturbed_costs(jvm_edge_cost=2.0)`` doubles the constant inside
    the block and restores it afterwards (also clearing nothing else —
    cost constants are read at charge time, not cached).
    """
    saved: Dict[str, float] = {}
    try:
        for name, factor in overrides.items():
            if not hasattr(COSTS, name):
                raise KeyError(f"unknown cost constant {name!r}")
            saved[name] = getattr(COSTS, name)
            setattr(COSTS, name, saved[name] * factor)
        yield
    finally:
        for name, value in saved.items():
            setattr(COSTS, name, value)


@dataclass
class SensitivityResult:
    """One predicate's survival across all perturbations."""

    predicate: str
    baseline: bool
    flips: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def robust(self) -> bool:
        """True when the predicate held at baseline and never flipped."""
        return self.baseline and not self.flips


def sensitivity_analysis(
    predicates: Dict[str, Callable[[], bool]],
    constants: Sequence[str] = PERTURBABLE_CONSTANTS,
    factors: Sequence[float] = (0.5, 2.0),
) -> List[SensitivityResult]:
    """Evaluate predicates under single-constant perturbations.

    ``predicates`` maps a label to a zero-argument callable returning
    whether the finding holds. Every (constant, factor) pair is applied
    alone; a predicate that returns a different value than at baseline
    records a flip.

    Note: engines cache *partitions*, not costs, so perturbing COSTS
    between runs is safe; predicates should construct fresh runs.
    """
    results = [
        SensitivityResult(predicate=name, baseline=check())
        for name, check in predicates.items()
    ]
    by_name = {r.predicate: r for r in results}
    for constant in constants:
        for factor in factors:
            with perturbed_costs(**{constant: factor}):
                for name, check in predicates.items():
                    outcome = check()
                    if outcome != by_name[name].baseline:
                        by_name[name].flips.append((constant, factor))
    return results
