"""Vertical scalability: the second dimension the paper declines.

§5.12: "Our study does not include vertical scalability experiments
because all our systems were introduced as parallel shared-nothing
systems." In the simulator nothing stops us: hold the cluster at a
fixed machine count and vary the per-machine resources (cores, and
optionally memory), LDBC-style.

The interesting output is where vertical scaling stops helping: compute
-bound phases shrink with cores, but barriers, network, and disk do
not — so the speedup saturates hardest for the systems whose cost is
coordination (the road-network traversals) and least for pure
computation (PageRank on a fat power-law graph).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from ..cluster import ClusterSpec, R3_XLARGE
from ..datasets import load_dataset
from ..engines import make_engine, workload_for
from ..engines.base import RunResult

__all__ = ["VerticalPoint", "vertical_scaling_experiment"]


@dataclass(frozen=True)
class VerticalPoint:
    """One (cores per machine) measurement at a fixed machine count."""

    cores: int
    memory_gb: float
    result: RunResult

    @property
    def time(self) -> float:
        """Total response time (inf on failure)."""
        return self.result.total_time if self.result.ok else float("inf")


def vertical_scaling_experiment(
    system: str,
    workload_name: str,
    dataset_name: str,
    cores_options: Sequence[int] = (2, 4, 8, 16),
    machines: int = 16,
    scale_memory: bool = False,
    dataset_size: str = "small",
) -> List[VerticalPoint]:
    """Vary per-machine cores (instance size) at a fixed machine count.

    ``scale_memory=True`` also scales memory with the core count, like
    moving up the r3 instance family (r3.xlarge → r3.2xlarge → ...).
    """
    dataset = load_dataset(dataset_name, dataset_size)
    points: List[VerticalPoint] = []
    for cores in cores_options:
        if cores < 1:
            raise ValueError("cores must be positive")
        factor = cores / R3_XLARGE.cores
        machine = replace(
            R3_XLARGE,
            name=f"r3-like-{cores}core",
            cores=cores,
            memory_bytes=(
                int(R3_XLARGE.memory_bytes * factor)
                if scale_memory else R3_XLARGE.memory_bytes
            ),
        )
        engine = make_engine(system)
        workload = workload_for(engine, workload_name, dataset)
        result = engine.run(
            dataset, workload, ClusterSpec(machines, machine=machine)
        )
        points.append(
            VerticalPoint(
                cores=cores,
                memory_gb=machine.memory_bytes / 1024**3,
                result=result,
            )
        )
    return points
