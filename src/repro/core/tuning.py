"""The paper's system-tuning experiments and heuristics (§4.4, §5).

Three tuning studies get first-class functions here:

* :func:`graphlab_core_study` — Figure 1: give GraphLab's compute path
  all 4 cores instead of the default 2 (synchronous gains ~40 %,
  asynchronous does not benefit).
* :func:`graphx_partition_sweep` — Figure 2 / Table 5: how GraphX's
  partition count changes PageRank time on a given cluster.
* :func:`recommended_graphx_partitions` — the paper's tuning rule:
  one partition per HDFS block, capped at twice the core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cluster import ClusterSpec
from ..datasets.registry import Dataset, load_dataset
from ..engines import workload_for
from ..engines.base import RunResult
from ..engines.graphlab import GraphLabEngine
from ..engines.spark import GraphXEngine, default_partitions, tuned_partitions

__all__ = [
    "CoreStudyResult",
    "graphlab_core_study",
    "graphx_partition_sweep",
    "recommended_graphx_partitions",
]


@dataclass(frozen=True)
class CoreStudyResult:
    """Figure 1's bars: execution time by (mode, compute cores)."""

    mode: str
    compute_cores: int
    execute_seconds: float


def graphlab_core_study(
    dataset_name: str = "twitter",
    cluster_size: int = 16,
    iterations: int = 30,
    dataset_size: str = "small",
) -> List[CoreStudyResult]:
    """Figure 1: sync/async x {2 default cores, all 4 cores}."""
    dataset = load_dataset(dataset_name, dataset_size)
    results: List[CoreStudyResult] = []
    for mode in ("sync", "async"):
        for cores in (2, 4):
            engine = GraphLabEngine(
                mode=mode, partitioning="random", stop="iterations",
                compute_cores=cores,
            )
            workload = workload_for(engine, "pagerank", dataset)
            workload.max_iterations = iterations
            run = engine.run(dataset, workload, ClusterSpec(cluster_size))
            results.append(
                CoreStudyResult(
                    mode=mode, compute_cores=cores,
                    execute_seconds=run.execute_time,
                )
            )
    return results


def graphx_partition_sweep(
    dataset_name: str,
    cluster_size: int,
    partition_counts: Sequence[int],
    dataset_size: str = "small",
) -> Dict[int, RunResult]:
    """Figure 2: PageRank response time vs the partition count."""
    dataset = load_dataset(dataset_name, dataset_size)
    results: Dict[int, RunResult] = {}
    for count in partition_counts:
        engine = GraphXEngine(num_partitions=count, partition_policy="fixed")
        workload = workload_for(engine, "pagerank", dataset)
        results[count] = engine.run(dataset, workload, ClusterSpec(cluster_size))
    return results


def recommended_graphx_partitions(
    dataset: Dataset, cluster_size: int, cores_per_machine: int = 4
) -> int:
    """The paper's rule (§5.6): #blocks, but at most twice the cores.

    Below the core count the cluster is under-utilized; far above the
    block count Spark re-reads blocks. Table 5 records the counts this
    rule produced.
    """
    total_cores = (cluster_size - 1) * cores_per_machine
    return tuned_partitions(dataset, total_cores)
