"""Weak scalability: the experiment the paper leaves on the table.

§5.12 adopts LDBC's taxonomy — strong vs weak, horizontal vs vertical —
and runs only strong/horizontal scaling ("We only consider real
datasets whose sizes are fixed"). With synthetic generators that
restriction disappears: this module grows the dataset *with* the
cluster, keeping the per-machine load constant, so each system's weak
scaling efficiency (ideal: flat response time) becomes measurable.

The scaled datasets reuse the real datasets' shape; at 128 machines the
paper-scale profile matches the real dataset, and smaller clusters get
proportionally smaller stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import List, Sequence, Tuple

from ..cluster import CLUSTER_SIZES, ClusterSpec
from ..datasets.generators import (
    powerlaw_social_graph,
    road_network_graph,
    web_host_graph,
)
from ..datasets.registry import PAPER_PROFILES, Dataset, register_dataset
from ..engines import make_engine, workload_for
from ..engines.base import RunResult

__all__ = ["WeakScalingPoint", "weak_scaling_dataset", "weak_scaling_experiment"]

#: the cluster size at which the scaled profile equals the real dataset
FULL_SCALE_MACHINES = 128


@dataclass(frozen=True)
class WeakScalingPoint:
    """One (cluster size, proportionally sized dataset) measurement."""

    machines: int
    paper_edges: int
    result: RunResult

    @property
    def time(self) -> float:
        """Total response time (or inf on failure)."""
        return self.result.total_time if self.result.ok else float("inf")


@lru_cache(maxsize=None)
def weak_scaling_dataset(kind: str, machines: int) -> Dataset:
    """A dataset sized for ``machines`` with constant per-machine load.

    ``kind`` is one of the registry names; at ``machines == 128`` the
    paper-scale profile equals the real dataset's.
    """
    if kind not in PAPER_PROFILES:
        raise KeyError(f"unknown dataset kind {kind!r}")
    if machines < 2:
        raise ValueError("machines must be >= 2")
    fraction = machines / FULL_SCALE_MACHINES
    base = PAPER_PROFILES[kind]
    profile = replace(
        base,
        name=f"{kind}-weak{machines}",
        num_vertices=max(2, int(base.num_vertices * fraction)),
        num_edges=max(2, int(base.num_edges * fraction)),
        raw_size_bytes=max(1, int(base.raw_size_bytes * fraction)),
    )

    # synthetic size grows with the cluster too (shape-preserving)
    if base.kind == "road":
        width = max(2, int(round(220 * fraction ** 0.5 * 2)))
        height = max(2, int(round(18 * fraction ** 0.5 * 2)))
        graph = road_network_graph(width, height, seed=70 + machines,
                                   name=profile.name)
        # the scaled road network's diameter shrinks with its area
        profile = replace(profile, diameter=max(64.0, base.diameter * fraction))
        metadata = (("grid_shape", (height, width)),)
    elif base.kind == "social":
        n = max(64, int(3000 * fraction))
        graph = powerlaw_social_graph(n, avg_degree=33.0, seed=70 + machines,
                                      name=profile.name)
        metadata = ()
    else:
        hosts = max(4, int(80 * fraction))
        graph = web_host_graph(hosts, 60, seed=70 + machines, name=profile.name)
        metadata = (("pages_per_host", 60),)
    return register_dataset(Dataset(
        name=profile.name,
        size="weak",
        graph=graph,
        profile=profile,
        sssp_source=1,
        metadata=metadata,
    ))


def weak_scaling_experiment(
    system: str,
    workload_name: str,
    kind: str = "twitter",
    cluster_sizes: Sequence[int] = CLUSTER_SIZES,
) -> List[WeakScalingPoint]:
    """Run one system at constant per-machine load across cluster sizes."""
    points: List[WeakScalingPoint] = []
    for machines in cluster_sizes:
        dataset = weak_scaling_dataset(kind, machines)
        engine = make_engine(system)
        workload = workload_for(engine, workload_name, dataset)
        result = engine.run(dataset, workload, ClusterSpec(machines))
        points.append(
            WeakScalingPoint(
                machines=machines,
                paper_edges=dataset.profile.num_edges,
                result=result,
            )
        )
    return points


def weak_efficiency(points: Sequence[WeakScalingPoint]) -> List[Tuple[int, float]]:
    """Efficiency per point: base time / time (1.0 = perfect weak scaling)."""
    completed = [p for p in points if p.result.ok]
    if not completed:
        return []
    base = completed[0].time
    return [(p.machines, base / p.time) for p in completed]
