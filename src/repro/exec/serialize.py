"""Cell results as bytes: the cache's and the worker wire's one format.

A finished :class:`~repro.engines.base.RunResult` crosses two
boundaries: back from a worker process to the scheduler, and onto disk
as a cache entry. Both use the same payload — the JSONL-log record the
analysis layer already defines, plus the answer array (exact bytes, so
a cached cell's answer is bit-identical to a fresh run's) and the run's
canonical journal text (so ``--trace`` on a warm cache still writes
byte-identical per-cell journals).

Deserialized results carry a :class:`FrozenJournalObservation` instead
of a live tracer: it replays the recorded journal on demand, which is
all any consumer (``repro trace``, ``--trace`` exports) ever asks of a
finished run's observation.
"""

from __future__ import annotations

import base64
from typing import Optional

import numpy as np

from ..analysis.logs import record_to_result, result_to_record
from ..engines.base import RunResult
from ..obs import Journal

__all__ = [
    "FrozenJournalObservation",
    "result_to_payload",
    "payload_to_result",
]

#: bump when the payload layout changes incompatibly (part of cache keys)
#: v2: journals carry the cost record + memory_byte_seconds metric
PAYLOAD_VERSION = 2


class FrozenJournalObservation:
    """A finished run's observation, reconstituted from journal text.

    Quacks like :class:`~repro.obs.RunObservation` for consumers of
    finished runs: :meth:`journal` returns the event stream (whose
    canonical dump is byte-identical to the original — JSON float
    round-tripping is exact) and :attr:`meta` exposes the run metadata.
    """

    def __init__(self, journal_text: str) -> None:
        self._text = journal_text

    def journal(self) -> Journal:
        """The recorded event stream."""
        return Journal.loads(self._text)

    @property
    def meta(self) -> dict:
        """The run's metadata event."""
        return dict(self.journal().meta)

    def __repr__(self) -> str:
        return f"FrozenJournalObservation({len(self._text)} bytes)"


def _encode_answer(answer: Optional[np.ndarray]) -> Optional[dict]:
    if answer is None:
        return None
    arr = np.ascontiguousarray(answer)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_answer(encoded: Optional[dict]) -> Optional[np.ndarray]:
    if encoded is None:
        return None
    raw = base64.b64decode(encoded["data"].encode("ascii"))
    arr = np.frombuffer(raw, dtype=np.dtype(encoded["dtype"]))
    return arr.reshape(encoded["shape"]).copy()


def result_to_payload(result: RunResult) -> dict:
    """Serialize a finished run for the cache and the worker wire."""
    journal_text = None
    if result.observation is not None:
        journal_text = result.observation.journal().dumps()
    return {
        "version": PAYLOAD_VERSION,
        "record": result_to_record(result),
        "answer": _encode_answer(result.answer),
        "journal": journal_text,
    }


def payload_to_result(payload: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from its payload form."""
    result = record_to_result(payload["record"])
    result.answer = _decode_answer(payload.get("answer"))
    journal_text = payload.get("journal")
    if journal_text is not None:
        result.observation = FrozenJournalObservation(journal_text)  # type: ignore[assignment]
    return result
