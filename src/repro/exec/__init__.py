"""repro.exec: the parallel, cached, resumable experiment executor.

The paper's results are one big matrix of independent cells (8 systems
× 4 workloads × 4 datasets × 4 cluster sizes, §4); this package is the
driver that runs such matrices the way the paper's EC2 harness had to:

* :mod:`~repro.exec.plan` expands a spec into independent cell tasks,
* :mod:`~repro.exec.executor` fans them out over a process pool
  (``jobs=1`` is the classic sequential loop, bit-for-bit),
* :mod:`~repro.exec.cache` memoizes finished cells on disk, keyed by
  content (dataset bytes + simulation-code digest), which is also what
  makes interrupted grids resumable,
* :mod:`~repro.exec.retry` bounds re-attempts of crashed workers —
  simulated failure cells (TO/OOM/MPI/SHFL) are results, never retried,
* :mod:`~repro.exec.progress` is the one progress path the CLI, the
  runner, and the tests share.

This package is also the repo's single concurrency door: RPL009 bans
``threading`` / ``multiprocessing`` / ``concurrent.futures`` everywhere
else in the source tree, mirroring RPL001's one-wall-clock-door rule.
"""

from .cache import ResultCache, cell_key, code_fingerprint, dataset_fingerprint
from .executor import ExecutionReport, GridExecution, execute_grid, execute_specs
from .plan import CellTask, plan_grid, plan_grids
from .progress import CellEvent, ProgressFn, print_progress
from .retry import ExecutorError, RetryPolicy
from .serialize import FrozenJournalObservation, payload_to_result, result_to_payload

__all__ = [
    "CellTask",
    "plan_grid",
    "plan_grids",
    "ResultCache",
    "cell_key",
    "code_fingerprint",
    "dataset_fingerprint",
    "ExecutionReport",
    "GridExecution",
    "execute_grid",
    "execute_specs",
    "CellEvent",
    "ProgressFn",
    "print_progress",
    "ExecutorError",
    "RetryPolicy",
    "FrozenJournalObservation",
    "payload_to_result",
    "result_to_payload",
]
