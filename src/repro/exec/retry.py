"""Bounded retry with exponential backoff for worker-process failures.

The policy governs *host-level* failures only: a worker raising an
unexpected exception or its process dying. Simulated failure cells
(TO/OOM/MPI/SHFL) are deterministic results of the model — rerunning
one can only reproduce it — so they flow through as completed runs and
are never retried. Backoff sleeps are host time and go through the
:mod:`repro.obs.hostclock` door like every other wall-clock need.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "ExecutorError"]


class ExecutorError(RuntimeError):
    """A cell exhausted its attempts; the last worker error is chained."""


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a crashed cell is re-attempted."""

    #: total tries per cell (1 means no retries)
    max_attempts: int = 3
    #: host seconds before the first retry
    base_delay: float = 0.05
    #: backoff factor applied per subsequent retry
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.multiplier < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def delay(self, failed_attempts: int) -> float:
        """Host seconds to wait after the ``failed_attempts``-th failure."""
        return self.base_delay * self.multiplier ** (failed_attempts - 1)
