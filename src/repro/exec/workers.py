"""The worker-process entry point: one cell in, one payload out.

Workers receive a :class:`~repro.exec.plan.CellTask` payload, rebuild
the (deterministic) dataset in their own process, run the cell, and
ship the serialized result back. Simulated failures — TO/OOM/MPI/SHFL —
are *results* and come back inside the payload like any completed run;
only a real exception escaping the simulation (a bug, a dying
interpreter) propagates to the scheduler, where the retry policy deals
with it.

``_REPRO_EXEC_FAULT`` is the retry path's failure drill (the process-
level counterpart of :mod:`repro.cluster.faults`): set it to
``SYSTEM:N`` and every cell of that system crashes its first ``N``
attempts, deterministically, in the worker — which is how the tests
exercise backoff and retry exhaustion without a flaky dependency.
"""

from __future__ import annotations

import os

from ..chaos.plan import ChaosPlan
from ..core.runner import run_cell
from ..datasets.registry import load_dataset
from .serialize import result_to_payload

__all__ = ["run_cell_task", "WorkerCrash"]

#: env hook injecting deterministic worker crashes: ``"SYSTEM:attempts"``
FAULT_ENV = "_REPRO_EXEC_FAULT"


class WorkerCrash(RuntimeError):
    """An injected worker-process failure (the retry drill)."""


def _maybe_inject_fault(task: dict) -> None:
    drill = os.environ.get(FAULT_ENV, "")
    if not drill:
        return
    system, _, attempts = drill.partition(":")
    if task["system"] == system and task["attempt"] <= int(attempts or 0):
        raise WorkerCrash(
            f"injected worker crash for {task['system']} "
            f"(attempt {task['attempt']})"
        )


def run_cell_task(task: dict) -> dict:
    """Execute one planned cell; returns the serialized result payload."""
    _maybe_inject_fault(task)
    dataset = load_dataset(task["dataset"], task["size"])
    chaos_dict = task.get("chaos")
    result = run_cell(
        task["system"], task["workload"], dataset, task["cluster_size"],
        chaos=None if chaos_dict is None else ChaosPlan.from_dict(chaos_dict),
    )
    return result_to_payload(result)
