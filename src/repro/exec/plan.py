"""Grid planning: an :class:`ExperimentSpec` becomes a DAG of cell tasks.

Every cell of the experiment matrix — (system, workload, dataset,
cluster size) — is independent of every other cell: engines are
constructed per run, datasets are deterministic pure functions of
(name, size), and no cell reads another's output. The plan is therefore
the degenerate DAG with no edges, which is exactly what makes the
matrix embarrassingly parallel (the paper's own EC2 harness exploited
the same structure by launching clusters side by side, §4.1).

Planning is deterministic: tasks come out in the same nested order the
sequential runner has always used (datasets → workloads → cluster
sizes → systems), so a ``jobs=1`` execution of the plan is the old
``run_grid`` loop verbatim and result grids assemble in identical
insertion order regardless of completion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..chaos.plan import ChaosPlan
from ..datasets.registry import DATASET_NAMES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.runner import ExperimentSpec

__all__ = ["CellTask", "plan_grid", "plan_grids"]


@dataclass(frozen=True)
class CellTask:
    """One independent cell of the experiment matrix."""

    index: int          # position in plan order (grid assembly order)
    system: str
    workload: str
    dataset: str
    size: str
    cluster_size: int
    #: fault schedule this cell runs under (None = failure-free)
    chaos: Optional[ChaosPlan] = None

    @property
    def cell_id(self) -> str:
        """Human-readable cell address used in errors and progress."""
        base = (f"{self.system}:{self.workload}:{self.dataset}/"
                f"{self.size}@{self.cluster_size}")
        return base if self.chaos is None else f"{base}+{self.chaos.label()}"

    @property
    def portable(self) -> bool:
        """True when a worker process can rebuild this cell's dataset.

        Built-in datasets regenerate deterministically from (name, size)
        in any process; ad-hoc datasets registered at runtime only exist
        in the registering process, so their cells must run inline.
        """
        return self.dataset in DATASET_NAMES

    def payload(self, attempt: int = 1) -> dict:
        """The picklable work order a worker process receives."""
        return {
            "system": self.system,
            "workload": self.workload,
            "dataset": self.dataset,
            "size": self.size,
            "cluster_size": self.cluster_size,
            "chaos": None if self.chaos is None else self.chaos.to_dict(),
            "attempt": attempt,
        }


def plan_grid(spec: "ExperimentSpec") -> List[CellTask]:
    """Expand a spec into its cell tasks, in the sequential loop order."""
    return plan_grids([spec])


def plan_grids(specs: Sequence["ExperimentSpec"]) -> List[CellTask]:
    """Expand several specs into one plan with a running task index.

    Specs stay in caller order, each expanded in the sequential loop
    order — this is how chaos experiments schedule the same coordinates
    under many different fault plans in a single execution.
    """
    tasks: List[CellTask] = []
    for spec in specs:
        for dataset_name in spec.datasets:
            for workload_name in spec.workloads:
                for cluster_size in spec.cluster_sizes:
                    for system in spec.systems:
                        tasks.append(CellTask(
                            index=len(tasks),
                            system=system,
                            workload=workload_name,
                            dataset=dataset_name,
                            size=spec.dataset_size,
                            cluster_size=cluster_size,
                            chaos=getattr(spec, "chaos", None),
                        ))
    return tasks
