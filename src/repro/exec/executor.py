"""The grid scheduler: plan → cache scan → fan-out → ordered assembly.

This is the driver-level machinery the paper's EC2 harness needed for
its 8 systems × 4 workloads × 4 datasets × 4 cluster-sizes matrix
(§4.1): every cell is independent, so the executor fans the plan's
cache misses out over a process pool, memoizes each finished cell in
the content-addressed :class:`~repro.exec.cache.ResultCache`, and
re-attempts crashed *workers* under a bounded exponential-backoff
:class:`~repro.exec.retry.RetryPolicy`. Simulated failure cells
(TO/OOM/MPI/SHFL) are results and are cached, reported, and never
retried.

Two guarantees shape the implementation:

* **Bit-equivalence.** ``jobs=N`` produces the same
  :class:`~repro.core.runner.ResultGrid` as ``jobs=1`` — cells are
  deterministic, grids assemble in plan order regardless of completion
  order, and per-cell journals are canonical JSONL, so they byte-match
  across modes (and across cache replay).
* **Resumability.** Cells land in the cache the moment they finish, so
  a killed grid re-run with ``resume=True`` executes only the missing
  cells.

The executor observes itself: scheduler spans (plan, one per cell) and
cache hit/miss/retry counters land in a host-clock
:class:`~repro.obs.RunObservation`, journalable next to the per-cell
simulated-clock journals.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..datasets.registry import Dataset, load_dataset
from ..engines.base import RunResult
from ..obs import Journal, RunObservation, Tracer
from ..obs.hostclock import host_now, host_sleep
from .cache import ResultCache, cell_key
from .plan import CellTask, plan_grids
from .progress import (
    SOURCE_CACHE,
    SOURCE_INLINE,
    SOURCE_RUN,
    CellEvent,
    ProgressFn,
)
from .retry import ExecutorError, RetryPolicy
from .serialize import payload_to_result, result_to_payload
from .workers import _maybe_inject_fault, run_cell_task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.runner import ExperimentSpec, ResultGrid

__all__ = ["ExecutionReport", "GridExecution", "execute_grid", "execute_specs"]


@dataclass
class ExecutionReport:
    """What one grid execution did, for progress lines and benchmarks."""

    cells: int
    cache_hits: int
    executed: int
    retries: int
    jobs: int
    resumed: bool
    host_seconds: float

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cells served from the cache."""
        return self.cache_hits / self.cells if self.cells else 0.0

    def summary(self) -> str:
        """The one-line account printed after ``repro grid``."""
        return (
            f"exec: {self.cells} cells · {self.cache_hits} cached · "
            f"{self.executed} executed · {self.retries} retries · "
            f"jobs={self.jobs} · {self.host_seconds:.2f}s host"
        )


@dataclass
class GridExecution:
    """An executed grid: the results plus the scheduler's own story."""

    grid: "ResultGrid"
    report: ExecutionReport
    observation: RunObservation
    #: every cell's result in plan order — unlike ``grid`` (keyed by
    #: coordinates) this keeps cells distinct when several specs run the
    #: same coordinates under different chaos plans
    results: List[RunResult] = field(default_factory=list)

    def scheduler_journal(self) -> Journal:
        """The executor's host-clock journal (spans + cache counters)."""
        return self.observation.journal()


def _resolve_cache(
    cache: Union[None, str, Path, ResultCache]
) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


class _GridRun:
    """One execution's mutable state (kept off the public API)."""

    def __init__(
        self,
        specs: Sequence["ExperimentSpec"],
        jobs: int,
        cache: Optional[ResultCache],
        resume: bool,
        progress: Optional[ProgressFn],
        retry: RetryPolicy,
    ) -> None:
        self.specs = list(specs)
        self.jobs = jobs
        self.cache = cache
        self.resume = resume
        self.progress = progress
        self.retry = retry
        self.start = host_now()
        self.obs = RunObservation(
            tracer=Tracer(lambda: host_now() - self.start)
        )
        self.results: Dict[int, RunResult] = {}
        self.hits = 0
        self.executed = 0
        self.retries = 0
        self.done = 0
        self.tasks: List[CellTask] = []
        self.datasets: Dict[Tuple[str, str], Dataset] = {}
        self.keys: Dict[int, str] = {}

    # -- bookkeeping -------------------------------------------------------

    def _finish(
        self,
        task: CellTask,
        result: RunResult,
        source: str,
        attempts: int,
        host_seconds: float,
    ) -> None:
        """Record one finished cell: span, counters, progress, result."""
        span = self.obs.tracer.start(
            "cell", cat="scheduler", cell=task.cell_id, source=source,
            attempts=attempts,
        )
        self.obs.tracer.end(span, host_seconds=host_seconds)
        counter = "exec.cache_hits" if source == SOURCE_CACHE else "exec.cells_executed"
        self.obs.metrics.counter(counter).inc()
        if source == SOURCE_CACHE:
            self.hits += 1
        else:
            self.executed += 1
        self.results[task.index] = result
        self.done += 1
        if self.progress is not None:
            self.progress(CellEvent(
                task=task, result=result, source=source, attempts=attempts,
                done=self.done, total=len(self.tasks),
            ))

    def _count_retry(self, failed_attempt: int) -> None:
        """Back off after a crashed attempt (or raise via the caller)."""
        self.retries += 1
        self.obs.metrics.counter("exec.retries").inc()
        host_sleep(self.retry.delay(failed_attempt))

    def _exhausted(self, task: CellTask, attempt: int, exc: Exception) -> ExecutorError:
        return ExecutorError(
            f"cell {task.cell_id} failed after {attempt} attempt(s): "
            f"{type(exc).__name__}: {exc}"
        )

    # -- phases ------------------------------------------------------------

    def plan(self) -> List[Tuple[CellTask, Optional[str]]]:
        """Expand the spec; compute cache keys; serve the cache hits."""
        with self.obs.tracer.span("plan", cat="scheduler") as span:
            self.tasks = plan_grids(self.specs)
            for task in self.tasks:
                ds_key = (task.dataset, task.size)
                if ds_key not in self.datasets:
                    self.datasets[ds_key] = load_dataset(*ds_key)
            if self.cache is not None:
                for task in self.tasks:
                    self.keys[task.index] = cell_key(
                        task, self.datasets[(task.dataset, task.size)]
                    )
            span.attrs["cells"] = len(self.tasks)

        misses: List[Tuple[CellTask, Optional[str]]] = []
        for task in self.tasks:
            key = self.keys.get(task.index)
            payload = self.cache.get(key) if (self.cache and key) else None
            if payload is not None:
                self._finish(
                    task, payload_to_result(payload), SOURCE_CACHE,
                    attempts=1, host_seconds=0.0,
                )
            else:
                misses.append((task, key))
        return misses

    def run_inline(self, task: CellTask, key: Optional[str]) -> None:
        """Execute one cell in this process (the ``jobs=1`` path)."""
        from ..core.runner import run_cell

        dataset = self.datasets[(task.dataset, task.size)]
        attempt = 1
        while True:
            t0 = host_now()
            try:
                _maybe_inject_fault(task.payload(attempt))
                result = run_cell(
                    task.system, task.workload, dataset, task.cluster_size,
                    chaos=task.chaos,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # worker-equivalent failure: retry
                if attempt >= self.retry.max_attempts:
                    raise self._exhausted(task, attempt, exc) from exc
                self._count_retry(attempt)
                attempt += 1
                continue
            if self.cache is not None and key is not None:
                self.cache.put(key, result_to_payload(result))
            self._finish(
                task, result, SOURCE_INLINE, attempt, host_now() - t0
            )
            return

    def run_pool(self, misses: List[Tuple[CellTask, Optional[str]]]) -> None:
        """Fan portable cells out over a process pool, with retry."""
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        pending: Dict[Future, Tuple[CellTask, Optional[str], int, float]] = {}

        def submit(task: CellTask, key: Optional[str], attempt: int) -> None:
            future = pool.submit(run_cell_task, task.payload(attempt))
            pending[future] = (task, key, attempt, host_now())

        def retry_or_raise(
            task: CellTask, key: Optional[str], attempt: int, exc: Exception
        ) -> None:
            if attempt >= self.retry.max_attempts:
                raise self._exhausted(task, attempt, exc) from exc
            self._count_retry(attempt)
            submit(task, key, attempt + 1)

        try:
            for task, key in misses:
                submit(task, key, 1)
            while pending:
                completed, _ = wait(
                    list(pending), return_when=FIRST_COMPLETED
                )
                pool_broke = False
                for future in completed:
                    task, key, attempt, submitted = pending.pop(future)
                    try:
                        payload = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BrokenProcessPool as exc:
                        # The pool is dead: rebuild it, re-queue this cell
                        # and everything still in flight (their results,
                        # if any, died with the workers).
                        pool.shutdown(wait=False)
                        pool = ProcessPoolExecutor(max_workers=self.jobs)
                        requeue = [(task, key, attempt)] + [
                            (t, k, a) for (t, k, a, _) in pending.values()
                        ]
                        pending.clear()
                        for t, k, a in requeue:
                            retry_or_raise(t, k, a, exc)
                        pool_broke = True
                        break
                    except Exception as exc:
                        retry_or_raise(task, key, attempt, exc)
                    else:
                        if self.cache is not None and key is not None:
                            self.cache.put(key, payload)
                        self._finish(
                            task, payload_to_result(payload), SOURCE_RUN,
                            attempt, host_now() - submitted,
                        )
                if pool_broke:
                    continue
        finally:
            pool.shutdown(wait=False)

    def _aggregate_costs(self, ordered: List[RunResult]) -> None:
        """Fold every cell's cost record into the scheduler's metrics.

        Each run journal ends with a ``cost`` event (live and cached
        cells alike — the frozen journal replays it), so the grid's
        bill lands in ``_scheduler.jsonl`` as ``cost.*`` counters next
        to the cache-hit/retry story.
        """
        from ..obs.cost import CostReport, aggregate_costs

        reports = []
        for result in ordered:
            if result.observation is None:
                continue
            event = result.observation.journal().cost()
            if event is not None:
                reports.append(CostReport.from_event(event))
        if not reports:
            return
        totals = aggregate_costs(reports)
        for name in sorted(totals):
            self.obs.metrics.counter(f"cost.{name}").inc(totals[name])

    def build(self) -> GridExecution:
        """Assemble the grid in plan order and close the scheduler story."""
        from ..core.runner import ResultGrid

        grid = ResultGrid()
        ordered = [self.results[task.index] for task in self.tasks]
        for result in ordered:
            grid.put(result)
        elapsed = host_now() - self.start
        self.obs.metrics.gauge("exec.jobs").set(self.jobs)
        self._aggregate_costs(ordered)
        report = ExecutionReport(
            cells=len(self.tasks),
            cache_hits=self.hits,
            executed=self.executed,
            retries=self.retries,
            jobs=self.jobs,
            resumed=self.resume,
            host_seconds=elapsed,
        )
        self.obs.meta = {
            "kind": "scheduler",
            "cells": report.cells,
            "cache_hits": report.cache_hits,
            "executed": report.executed,
            "retries": report.retries,
            "jobs": report.jobs,
            "resume": report.resumed,
            "cache": self.cache is not None,
        }
        return GridExecution(
            grid=grid, report=report, observation=self.obs, results=ordered
        )


def execute_grid(
    spec: "ExperimentSpec",
    *,
    jobs: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    retry: Optional[RetryPolicy] = None,
) -> GridExecution:
    """Run one experiment grid: parallel, cached, resumable.

    Parameters
    ----------
    spec:
        The experiment matrix to run.
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``. ``1`` runs
        every cell inline in this process (the classic sequential loop).
    cache:
        A :class:`ResultCache`, a cache directory path, or ``None`` to
        disable caching entirely.
    resume:
        Pick up an interrupted grid: requires an existing cache
        directory (so a mistyped path fails loudly instead of silently
        recomputing everything).
    progress:
        Per-cell callback (see :mod:`repro.exec.progress`); the CLI,
        the runner's ``verbose`` mode, and the tests all share it.
    retry:
        Bounded backoff policy for crashed workers.
    """
    return execute_specs(
        [spec], jobs=jobs, cache=cache, resume=resume, progress=progress,
        retry=retry,
    )


def execute_specs(
    specs: Sequence["ExperimentSpec"],
    *,
    jobs: Optional[int] = None,
    cache: Union[None, str, Path, ResultCache] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    retry: Optional[RetryPolicy] = None,
) -> GridExecution:
    """Run several specs as one pooled, cached execution.

    The plan concatenates each spec's cells in caller order; everything
    else — cache scan, fan-out, retry, plan-order assembly — behaves
    exactly like :func:`execute_grid`. This is how the chaos experiment
    runs the same (system, workload, dataset, size) coordinates under
    many fault plans at once: consume ``GridExecution.results`` (plan
    order) rather than the coordinate-keyed ``grid``, where cells that
    share coordinates overwrite each other.
    """
    resolved_cache = _resolve_cache(cache)
    if resume:
        if resolved_cache is None:
            raise ExecutorError("resume requires a result cache")
        if not resolved_cache.cache_dir.is_dir():
            raise ExecutorError(
                f"nothing to resume: cache directory "
                f"{resolved_cache.cache_dir} does not exist"
            )
    run = _GridRun(
        specs=specs,
        jobs=max(1, jobs if jobs is not None else (os.cpu_count() or 1)),
        cache=resolved_cache,
        resume=resume,
        progress=progress,
        retry=retry if retry is not None else RetryPolicy(),
    )
    root = run.obs.tracer.start(
        "grid", cat="scheduler", jobs=run.jobs, resume=resume,
        cache=resolved_cache is not None,
    )
    try:
        misses = run.plan()
        if run.jobs > 1:
            parallel = [(t, k) for t, k in misses if t.portable]
            inline = [(t, k) for t, k in misses if not t.portable]
        else:
            parallel, inline = [], misses
        if parallel:
            run.run_pool(parallel)
        for task, key in inline:
            run.run_inline(task, key)
    finally:
        run.obs.tracer.end(
            root, cells=len(run.tasks), cache_hits=run.hits,
            executed=run.executed, retries=run.retries,
        )
    return run.build()
