"""The grid-executor benchmark: seed of the repo's perf trajectory.

Times one fixed PageRank grid (the Figure 6 lineup on two cluster
sizes) through the executor's three operating points —

* ``jobs1``       — the sequential baseline, cache disabled,
* ``jobsN_cold``  — ``--jobs N`` fan-out into an empty cache,
* ``jobsN_warm``  — ``--jobs N`` over the now-populated cache (a
  resumed or repeated grid; every cell is a hit),

— and writes the measurements to ``BENCH_grid.json``. ``speedup`` is
the executor's end-to-end win at ``--jobs N`` over the sequential
baseline: the best of cold parallel fan-out and warm cache replay. The
two components are reported separately (``speedup_parallel``,
``speedup_warm_cache``) with ``host_cpus``, because a single-core host
caps cold parallel speedup at ~1× — there the cache carries the win,
while multi-core CI sees both.

Runnable as ``repro bench-grid`` or ``python -m benchmarks.bench_grid``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import List, Optional

from ..obs.hostclock import host_now
from .executor import ExecutionReport, execute_grid

__all__ = ["run_bench", "main", "BENCH_SCHEMA_VERSION"]

#: bump when the BENCH_grid.json record layout changes
#: v2: schema_version + speedup_warm + grid cost block + history append
BENCH_SCHEMA_VERSION = 2

#: the fixed benchmark grid: Figure 6's PageRank lineup, two sizes
BENCH_DATASETS = ("twitter", "uk0705", "wrn")
BENCH_CLUSTER_SIZES = (16, 64)
BENCH_DATASET_SIZE = "small"


def _bench_spec():
    from ..core.runner import ExperimentSpec
    from ..engines import systems_for_workload

    return ExperimentSpec(
        systems=systems_for_workload("pagerank"),
        workloads=("pagerank",),
        datasets=BENCH_DATASETS,
        cluster_sizes=BENCH_CLUSTER_SIZES,
        dataset_size=BENCH_DATASET_SIZE,
    )


def _timed(label: str, **kwargs) -> dict:
    start = host_now()
    execution = execute_grid(_bench_spec(), **kwargs)
    seconds = host_now() - start
    report: ExecutionReport = execution.report
    print(f"  {label:<11s} {seconds:7.2f}s  ({report.summary()})")
    return {
        "jobs": report.jobs,
        "seconds": seconds,
        "executed": report.executed,
        "cache_hit_rate": report.cache_hit_rate,
        # the grid's aggregated simulated bill (repro.obs.cost): unlike
        # the host timings above this is deterministic across hosts
        "cost_dollars": _scheduler_metric(execution, "cost.dollars"),
        "cost_answers": _scheduler_metric(execution, "cost.answers"),
    }


def _scheduler_metric(execution, name: str) -> float:
    try:
        return float(execution.observation.metrics.value(name))
    except KeyError:
        return 0.0


def run_bench(
    jobs: Optional[int] = None,
    output: str = "BENCH_grid.json",
    history: Optional[str] = None,
) -> dict:
    """Run the benchmark matrix; write its JSON record + history line.

    ``output`` holds only the latest record; each run also appends one
    canonical JSON line to ``history`` (default: ``BENCH_history.jsonl``
    next to ``output``), so the perf trajectory accumulates and
    ``repro report --diff`` can compare any two points on it. Pass an
    empty string to skip the history append.
    """
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    jobs = max(2, jobs)  # the point is jobs=N vs jobs=1; N=1 measures nothing
    spec = _bench_spec()
    cells = (len(spec.systems) * len(spec.workloads) * len(spec.datasets)
             * len(spec.cluster_sizes))
    print(f"bench-grid: {cells} PageRank cells, jobs=1 vs jobs={jobs}")

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        modes = {
            "jobs1": _timed("jobs=1", jobs=1, cache=None),
            "jobsN_cold": _timed(f"jobs={jobs}", jobs=jobs, cache=cache_dir),
            "jobsN_warm": _timed("warm cache", jobs=jobs, cache=cache_dir),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    base = modes["jobs1"]["seconds"]
    cold = modes["jobsN_cold"]["seconds"]
    warm = modes["jobsN_warm"]["seconds"]
    record = {
        "bench": "grid",
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": "pagerank",
        "systems": len(spec.systems),
        "datasets": list(BENCH_DATASETS),
        "cluster_sizes": list(BENCH_CLUSTER_SIZES),
        "dataset_size": BENCH_DATASET_SIZE,
        "cells": cells,
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "modes": modes,
        "speedup_parallel": base / cold if cold else 0.0,
        "speedup_warm": base / warm if warm else 0.0,
        # legacy alias of speedup_warm (schema v1 name), kept so older
        # readers of BENCH_grid.json keep working
        "speedup_warm_cache": base / warm if warm else 0.0,
        # the executor's end-to-end win at --jobs N vs --jobs 1: cold
        # fan-out where cores exist, cache replay on a repeated grid
        "speedup": base / min(cold, warm) if min(cold, warm) else 0.0,
        "cache_hit_rate": modes["jobsN_warm"]["cache_hit_rate"],
        # perf provenance for the cold mode: before memoization the
        # planner hashed each dataset's edge bytes once per cell (78
        # digests; 11.29s cold at jobs=4 on the 1-cpu record host);
        # dataset_fingerprint is now lru_cached (RPL016) so the
        # O(edges) digest runs once per dataset per process.
        "notes": {
            "dataset_digest": (
                "cell keys memoize dataset_fingerprint per process — "
                "one bulk digest per dataset, not per grid cell"
            ),
        },
    }
    Path(output).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="ascii"
    )
    if history is None:
        history = str(Path(output).with_name("BENCH_history.jsonl"))
    if history:
        with open(history, "a", encoding="ascii") as fh:
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    print(
        f"speedup: parallel {record['speedup_parallel']:.2f}x · "
        f"warm-cache {record['speedup_warm_cache']:.2f}x · "
        f"best {record['speedup']:.2f}x -> {output}"
        + (f" (+ history {history})" if history else "")
    )
    return record


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point shared by ``repro bench-grid`` and benchmarks/."""
    parser = argparse.ArgumentParser(
        prog="bench-grid",
        description="Time the benchmark PageRank grid at jobs=1 vs jobs=N.",
    )
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: cpu count, min 2)")
    parser.add_argument("-o", "--output", default="BENCH_grid.json",
                        help="where the JSON record goes")
    parser.add_argument("--history", default=None, metavar="FILE",
                        help="append the record here as one JSON line "
                             "(default: BENCH_history.jsonl next to the "
                             "output; pass '' to skip)")
    args = parser.parse_args(argv)
    run_bench(jobs=args.jobs, output=args.output, history=args.history)
    return 0
