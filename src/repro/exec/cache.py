"""The content-addressed result cache and its canonical cell keys.

A cell's key is a SHA-256 over everything that can change its result:

* the cell coordinates (system, workload, cluster size),
* the dataset's *content* — name, size, generator output (the exact
  edge array, so changing a generator seed changes the key even though
  the dataset keeps its name), SSSP source, and paper profile, and
* the simulation code version: a digest of every source file in the
  result-determining packages (engines, workloads, cluster, chaos,
  core, datasets, graph, partitioning, obs). Editing a cost model
  invalidates every cached cell; editing the CLI or this executor does
  not.

Entries are one JSON file each under ``<cache-dir>/<k[:2]>/<k>.json``,
written via temp-file + atomic rename so a killed run never leaves a
truncated entry for ``--resume`` to trip over. Unreadable or corrupt
entries degrade to cache misses, never to errors.

A cache may carry a ``max_cells`` budget: entries are then tracked in
LRU order (by cells — each entry is one cell payload) and the
least-recently-used entries are evicted from disk when a put would
exceed the budget, with the count kept in :attr:`ResultCache.evictions`
(the serve daemon journals it). The order is in-process state, which is
sound exactly where the budget is used — the daemon is the cache's
single writer; unbounded caches skip the tracking entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from functools import lru_cache
from pathlib import Path
from typing import Optional, Union

from ..datasets.registry import Dataset
from .plan import CellTask
from .serialize import PAYLOAD_VERSION

__all__ = ["ResultCache", "cell_key", "code_fingerprint", "dataset_fingerprint"]

#: repro subpackages whose source determines simulated results
_RESULT_PACKAGES = (
    "chaos", "cluster", "core", "datasets", "engines", "graph", "obs",
    "partitioning", "workloads",
)


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the result-determining simulation source, this install."""
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for package in _RESULT_PACKAGES:
        base = root / package
        for path in sorted(base.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


@lru_cache(maxsize=None)
def dataset_fingerprint(dataset: Dataset) -> str:
    """Digest of a dataset's identity *and* generated content.

    Hashing the edge array (not just the name) means a changed generator
    seed or a re-shaped synthetic graph busts every dependent cache
    entry, exactly like a new copy of a real dataset would.

    Memoized per process (RPL016): datasets are immutable and the
    registry returns the same object for the same (name, size), so the
    O(edges) SHA-256 runs once per dataset, not once per grid cell.
    """
    digest = hashlib.sha256()
    digest.update(_canonical({
        "name": dataset.name,
        "size": dataset.size,
        "num_vertices": dataset.graph.num_vertices,
        "num_edges": dataset.graph.num_edges,
        "sssp_source": dataset.sssp_source,
        "metadata": repr(dataset.metadata),
        "profile": repr(dataset.profile),
    }).encode("utf-8"))
    edges = dataset.graph.edge_array()
    digest.update(str(edges.dtype).encode("ascii"))
    digest.update(edges.tobytes())
    return digest.hexdigest()


def cell_key(
    task: CellTask,
    dataset: Dataset,
    code_version: Optional[str] = None,
) -> str:
    """The cell's content-addressed cache key."""
    if code_version is None:
        code_version = code_fingerprint()
    return hashlib.sha256(_canonical({
        "payload_version": PAYLOAD_VERSION,
        "system": task.system,
        "workload": task.workload,
        "cluster_size": task.cluster_size,
        "dataset": dataset_fingerprint(dataset),
        "code": code_version,
        # the full fault schedule, seed included: a different chaos plan
        # is a different cell
        "chaos": None if task.chaos is None else task.chaos.to_dict(),
    }).encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk memo of finished cells, keyed by :func:`cell_key`.

    ``max_cells`` bounds the cache in cells (one entry each): exceeding
    it evicts the least-recently-used entries from disk and counts them
    in :attr:`evictions`. ``None`` (the default) keeps the cache
    unbounded with zero tracking overhead.
    """

    def __init__(self, cache_dir: Union[str, Path],
                 max_cells: Optional[int] = None) -> None:
        if max_cells is not None and max_cells <= 0:
            raise ValueError("max_cells must be positive (or None)")
        self.cache_dir = Path(cache_dir)
        self.max_cells = max_cells
        self.evictions = 0
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        if self.max_cells is not None and self.cache_dir.is_dir():
            # adopt pre-existing entries, oldest-position first by key
            # (deterministic: no usable access order survives a restart)
            for path in sorted(self.cache_dir.glob("*/*.json")):
                self._lru[path.stem] = None

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached payload, or None on miss or a corrupt entry."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="ascii")
            payload = json.loads(text)
        except (OSError, ValueError):
            if self.max_cells is not None:
                self._lru.pop(key, None)
            return None
        if not isinstance(payload, dict) or payload.get("version") != PAYLOAD_VERSION:
            if self.max_cells is not None:
                self._lru.pop(key, None)
            return None
        if self.max_cells is not None:
            self._lru[key] = None
            self._lru.move_to_end(key)
        return payload

    def put(self, key: str, payload: dict) -> Path:
        """Store a payload atomically; concurrent writers are safe.

        Under a ``max_cells`` budget, the put that exceeds it evicts
        the least-recently-used entries from disk first.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(_canonical(payload), encoding="ascii")
        os.replace(tmp, path)
        if self.max_cells is not None:
            self._lru[key] = None
            self._lru.move_to_end(key)
            while len(self._lru) > self.max_cells:
                victim, _ = self._lru.popitem(last=False)
                try:
                    self.path_for(victim).unlink()
                except OSError:
                    pass
                self.evictions += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.cache_dir)!r}, {len(self)} entries)"
