"""One progress path for every way a grid runs.

The sequential runner used to print progress lines from inside its
loop; the CLI, the executor, and the tests now share this module
instead: execution emits one :class:`CellEvent` per finished cell (in
completion order — plan order when ``jobs=1``) into whatever callback
the caller passed, and :func:`print_progress` is the default printer
that reproduces the classic ``run_grid(verbose=True)`` line, extended
with the cell's provenance (cache hit, retry count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .plan import CellTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..engines.base import RunResult

__all__ = ["CellEvent", "ProgressFn", "print_progress"]

#: where a finished cell came from
SOURCE_RUN = "run"        # executed by a worker process
SOURCE_INLINE = "inline"  # executed in the scheduler process (jobs=1 path)
SOURCE_CACHE = "cache"    # replayed from the result cache


@dataclass(frozen=True)
class CellEvent:
    """One finished cell, as reported to the progress callback."""

    task: CellTask
    result: "RunResult"
    source: str      # SOURCE_RUN | SOURCE_INLINE | SOURCE_CACHE
    attempts: int    # 1 unless the retry policy re-ran the cell
    done: int        # cells finished so far, this one included
    total: int       # cells in the plan


ProgressFn = Callable[[CellEvent], None]


def print_progress(event: CellEvent) -> None:
    """The default reporter: the classic verbose grid line, annotated."""
    result = event.result
    notes = ""
    if event.source == SOURCE_CACHE:
        notes = " (cached)"
    elif event.attempts > 1:
        notes = f" (attempt {event.attempts})"
    print(
        f"{result.system:>9s} {result.workload:>8s} {result.dataset:>8s} "
        f"@{result.cluster_size:<3d} -> {result.cell()}{notes}"
    )
