"""Log persistence, text tables, and ASCII charts (the viz-tool stand-in)."""

from .charts import bar_chart, histogram, line_chart
from .logs import read_log, record_to_result, result_to_record, write_log
from .report import grid_report
from .tables import render_grid, render_table

__all__ = [
    "render_table",
    "render_grid",
    "bar_chart",
    "line_chart",
    "histogram",
    "write_log",
    "read_log",
    "result_to_record",
    "record_to_result",
    "grid_report",
]
