"""Experiment report generation — the paper's analysis pipeline.

The authors condensed "more than 20 GB of log files" into the paper's
tables and discussion with a custom tool (§1). This module is that
tool's equivalent: it takes a :class:`ResultGrid` (fresh or re-read
from a JSONL log) and emits a self-contained Markdown report — result
tables per workload, failure census, per-column winners, and
strong-scaling classification.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..core.runner import ResultGrid
from ..core.scalability import scaling_classification, scaling_curves
from .tables import render_table

__all__ = ["grid_report"]


def _workloads(grid: ResultGrid) -> List[str]:
    return sorted({w for (_s, w, _d, _c) in grid.cells})


def _datasets(grid: ResultGrid) -> List[str]:
    return sorted({d for (_s, _w, d, _c) in grid.cells})


def _systems(grid: ResultGrid) -> List[str]:
    return sorted({s for (s, _w, _d, _c) in grid.cells})


def _sizes(grid: ResultGrid) -> List[int]:
    return sorted({c for (_s, _w, _d, c) in grid.cells})


def _result_section(grid: ResultGrid, workload: str) -> str:
    sizes = _sizes(grid)
    rows = []
    for dataset in _datasets(grid):
        for system in _systems(grid):
            if not any(
                (system, workload, dataset, size) in grid.cells for size in sizes
            ):
                continue
            row: Dict[str, object] = {"dataset": dataset, "system": system}
            for size in sizes:
                row[f"{size} mach"] = grid.cell_text(system, workload, dataset, size)
            rows.append(row)
    return render_table(rows, title=f"### {workload}")


def _failure_census(grid: ResultGrid) -> str:
    counts = Counter(str(r.failure) for r in grid.failures())
    total = len(grid)
    lines = [f"### Failures ({len(grid.failures())} of {total} runs)"]
    for kind, count in counts.most_common():
        lines.append(f"- **{kind}**: {count}")
    if not counts:
        lines.append("- none")
    return "\n".join(lines)


def _winners(grid: ResultGrid) -> str:
    rows = []
    for workload in _workloads(grid):
        for dataset in _datasets(grid):
            for size in _sizes(grid):
                best = grid.best_system(workload, dataset, size)
                if best is not None:
                    rows.append({
                        "workload": workload,
                        "dataset": dataset,
                        "machines": size,
                        "winner": best.system,
                        "seconds": round(best.total_time, 1),
                    })
    return render_table(rows, title="### Best system per column (end-to-end)")


def _scaling_section(grid: ResultGrid) -> str:
    lines = ["### Strong-scaling classification (§5.12)"]
    sizes = _sizes(grid)
    for workload in _workloads(grid):
        for dataset in _datasets(grid):
            curves = scaling_curves(grid, workload, dataset, cluster_sizes=sizes)
            labels = scaling_classification(curves)
            if labels:
                summary = ", ".join(f"{s}: {label}" for s, label in sorted(labels.items()))
                lines.append(f"- {workload} / {dataset}: {summary}")
    return "\n".join(lines)


def grid_report(grid: ResultGrid, title: str = "Experiment report") -> str:
    """A self-contained Markdown report for one result grid."""
    if not grid.cells:
        return f"# {title}\n\n(no runs)"
    parts = [f"# {title}", ""]
    parts.append(
        f"{len(grid)} runs: {len(grid.completed())} completed, "
        f"{len(grid.failures())} failed. Systems: "
        f"{', '.join(_systems(grid))}. Datasets: {', '.join(_datasets(grid))}. "
        f"Cluster sizes: {', '.join(map(str, _sizes(grid)))}."
    )
    parts.append("")
    for workload in _workloads(grid):
        parts.append(_result_section(grid, workload))
        parts.append("")
    parts.append(_failure_census(grid))
    parts.append("")
    parts.append(_winners(grid))
    parts.append("")
    parts.append(_scaling_section(grid))
    return "\n".join(parts)
