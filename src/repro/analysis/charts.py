"""ASCII charts — the stand-in for the paper's visualization tool.

The authors built a tool that parses system logs and renders comparison
figures; here the same roles are filled by text renderers: grouped bar
charts (the result figures), line series (Figure 10's memory traces),
and histograms (Figure 11's partition placement).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

__all__ = ["bar_chart", "line_chart", "histogram"]

_BAR = "█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    title: Optional[str] = None,
    unit: str = "s",
) -> str:
    """Horizontal bar chart; labels may map to None for failed cells."""
    lines = [title] if title else []
    numeric = {k: v for k, v in values.items() if v is not None}
    peak = max(numeric.values()) if numeric else 1.0
    label_w = max((len(k) for k in values), default=0)
    for label, value in values.items():
        if value is None:
            lines.append(f"{label.ljust(label_w)} | (failed)")
            continue
        bar = _BAR * max(1, int(round(width * value / peak))) if peak else ""
        lines.append(f"{label.ljust(label_w)} | {bar} {value:,.1f}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Plot (x, y) series as an ASCII grid; one symbol per series."""
    symbols = "*o+x#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    lines = [title] if title else []
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        sym = symbols[idx % len(symbols)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = sym
    lines.append(f"y: {y_lo:,.1f} .. {y_hi:,.1f}")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_lo:,.1f} .. {x_hi:,.1f}")
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Counts-per-bin bar rendering (Figure 11's placement histogram)."""
    lines = [title] if title else []
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / span * bins))
        counts[idx] += 1
    peak = max(counts) or 1
    for i, count in enumerate(counts):
        lower = lo + span * i / bins
        upper = lo + span * (i + 1) / bins
        bar = _BAR * max(0, int(round(width * count / peak)))
        lines.append(f"[{lower:8.1f}, {upper:8.1f}) {bar} {count}")
    return "\n".join(lines)
