"""Run logs: JSONL persistence of experiment results.

The paper's experiments produced "more than 20 GB of log files that
were used for analysis" (§1). Here every :class:`RunResult` serializes
to one JSON line; grids can be written, re-read, and re-analysed
without re-running the simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from ..cluster import FailureKind
from ..engines.base import RunResult
from ..core.runner import ResultGrid

__all__ = ["result_to_record", "record_to_result", "write_log", "read_log"]


def result_to_record(result: RunResult) -> dict:
    """A JSON-safe dict for one run (answers are not serialized)."""
    return {
        "system": result.system,
        "workload": result.workload,
        "dataset": result.dataset,
        "cluster_size": result.cluster_size,
        "load_time": result.load_time,
        "execute_time": result.execute_time,
        "save_time": result.save_time,
        "overhead_time": result.overhead_time,
        "iterations": result.iterations,
        "failure": str(result.failure) if result.failure else None,
        "failure_detail": result.failure_detail,
        "network_bytes": result.network_bytes,
        "peak_memory_bytes": result.peak_memory_bytes,
        "total_memory_bytes": result.total_memory_bytes,
        "per_iteration_time": result.per_iteration_time,
        "extras": dict(result.extras),
    }


def record_to_result(record: dict) -> RunResult:
    """Rebuild a :class:`RunResult` (without the answer array)."""
    failure = record.get("failure")
    return RunResult(
        system=record["system"],
        workload=record["workload"],
        dataset=record["dataset"],
        cluster_size=record["cluster_size"],
        load_time=record.get("load_time", 0.0),
        execute_time=record.get("execute_time", 0.0),
        save_time=record.get("save_time", 0.0),
        overhead_time=record.get("overhead_time", 0.0),
        iterations=record.get("iterations", 0),
        failure=FailureKind(failure) if failure else None,
        failure_detail=record.get("failure_detail", ""),
        network_bytes=record.get("network_bytes", 0.0),
        peak_memory_bytes=record.get("peak_memory_bytes", 0.0),
        total_memory_bytes=record.get("total_memory_bytes", 0.0),
        per_iteration_time=record.get("per_iteration_time", 0.0),
        extras=record.get("extras", {}),
    )


def write_log(results: Iterable[RunResult], path: Union[str, Path]) -> int:
    """Append results to a JSONL log file; returns lines written."""
    count = 0
    with open(path, "a", encoding="ascii") as fh:
        for result in results:
            fh.write(json.dumps(result_to_record(result)) + "\n")
            count += 1
    return count


def read_log(path: Union[str, Path]) -> ResultGrid:
    """Load a JSONL log back into a :class:`ResultGrid`."""
    grid = ResultGrid()
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                grid.put(record_to_result(json.loads(line)))
    return grid
