"""Plain-text table rendering for the bench harness.

The paper's figures are bar charts and tables; the harness prints them
as aligned text so every table/figure reproduction is diffable output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["render_table", "render_grid"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}" if abs(value) < 1e6 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_grid(
    grid,   # ResultGrid
    workload: str,
    datasets: Sequence[str],
    cluster_sizes: Sequence[int],
    systems: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render one of the paper's result grids (Figs 5-9) as text.

    Rows are (dataset, system); columns are cluster sizes; cells are
    total response seconds or the failure code.
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for system in systems:
            row: Dict[str, object] = {"dataset": dataset, "system": system}
            for size in cluster_sizes:
                row[f"{size} mach"] = grid.cell_text(system, workload, dataset, size)
            rows.append(row)
    return render_table(rows, title=title or f"{workload} results")
