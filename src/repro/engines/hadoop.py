"""Hadoop MapReduce and HaLoop (§2.4, §2.5.1, §5.10).

Hadoop executes every superstep as a full MapReduce job: read the graph
*and* the current state from HDFS, shuffle both the messages and the
invariant graph structure, reduce, and write everything back — the
canonical reason MapReduce is wrong for iterative graph workloads. It
never runs out of memory (processing is streaming) but times out on
anything with many iterations. CPU spends much of its time in I/O wait
(§5.10, Figure 13a).

HaLoop keeps the loop structure but caches loop-invariant data on local
disk after the first iteration (no HDFS graph re-read, no graph
re-shuffle), caches the previous reducer output for fixpoint checks,
and co-schedules mappers with their cached shards. The paper measured
*less* than the advertised 2x speedup, and hit a bug where mapper
output is deleted before reducers consume it on 64- and 128-machine
clusters, after a few iterations — the ``SHFL`` cells (the bug spares
K-hop, whose 3 iterations stay under the trigger).
"""

from __future__ import annotations

from types import MappingProxyType

from ..cluster import GB, Cluster, ShuffleError
from ..datasets.registry import Dataset
from .base import Engine, RunResult
from .bsp import BspExecutionMixin
from .common import COSTS

__all__ = ["HadoopEngine", "HaLoopEngine"]


class HadoopEngine(BspExecutionMixin, Engine):
    """Hadoop MapReduce (``HD``): 4 mappers + 2 reducers per machine."""

    key = "HD"
    display_name = "Hadoop"
    language = "Java"
    input_format = "adj"
    uses_all_machines = False
    fault_tolerance = "reexecution"
    trace_model = "mapreduce"     # each superstep is a full MR job
    #: RPL011 contract: all communication through shuffle + HDFS
    #: round-trips; no direct message passing
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    features = MappingProxyType({
        "memory_disk": "Disk",
        "paradigm": "BSP (MapReduce)",
        "declarative": "no",
        "partitioning": "Random",
        "synchronization": "Synchronous",
        "fault_tolerance": "re-execution",
    })

    streaming_buffer_bytes = 2.0 * GB   # sort buffers etc., per worker
    job_start_overhead = 12.0           # JVM spin-up + scheduling per job
    task_wave_overhead = 1.5            # per wave of map tasks
    mappers_per_machine = 4

    def _state_bytes(self, dataset: Dataset) -> float:
        return dataset.profile.num_vertices * 16.0

    def _graph_bytes(self, dataset: Dataset) -> float:
        return float(dataset.profile.raw_size_bytes)

    def _load(self, dataset, workload, cluster, result):
        """No load phase to speak of: data stays in HDFS."""
        cluster.memory.allocate_even(
            cluster.num_workers * self.streaming_buffer_bytes, "buffers", skew=0.0
        )
        cluster.sample_memory()

    # -- per-iteration job structure ------------------------------------------

    def _iteration_io(self, dataset, cluster, first, scale_fixed=1.0):
        """(input bytes, shuffle bytes, output bytes) for one iteration."""
        graph = self._graph_bytes(dataset) * scale_fixed
        state = self._state_bytes(dataset) * scale_fixed
        return graph + state, graph + state, graph + state

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """One full MapReduce job: map, shuffle+sort, reduce, write.

        Everything here is per-job fixed cost (the invariant graph is
        re-read, re-shuffled, and re-written every iteration), so it all
        multiplies by ``scale_fixed``; only the message payload scales
        with volume.
        """
        sf = self.scale_fixed
        in_bytes, shuffle_bytes, out_bytes = self._iteration_io(
            dataset, cluster, first, scale_fixed=sf
        )
        messages = dataset.scaled_edges(stats.messages) * self.scale_messages
        shuffle_bytes += messages * COSTS.msg_bytes

        cluster.advance(self.job_start_overhead * sf)
        map_tasks = cluster.hdfs.num_blocks(in_bytes / sf)
        slots = cluster.num_workers * self.mappers_per_machine
        waves = -(-map_tasks // slots)   # ceil
        cluster.advance(waves * self.task_wave_overhead * sf)

        cluster.hdfs_read(in_bytes)
        records = (
            dataset.profile.num_vertices * sf
            + dataset.profile.num_edges * sf
            + messages
        )
        # map + sort + reduce record handling; mappers stream records
        # from disk, so CPUs spend comparable time in I/O wait (§5.10)
        work = records * COSTS.hadoop_record_cost
        per_machine = work / (cluster.num_workers * cluster.spec.machine.cores)
        cluster.uniform_compute(
            work,
            system_fraction=0.25,
            iowait_seconds=per_machine * 0.7,
        )
        cluster.shuffle(shuffle_bytes, skew=0.05, local_fraction=None)
        cluster.uniform_compute(records * COSTS.hadoop_record_cost * 0.5,
                                system_fraction=0.25)
        cluster.hdfs_write(out_bytes)
        self._post_iteration(dataset, cluster, stats)

    def _post_iteration(self, dataset, cluster, stats) -> None:
        """Hook for HaLoop's failure injection and cache maintenance."""

    def _execute(self, dataset, workload, cluster, result, scale):
        return self.run_superstep_loop(
            self.graph_for(dataset, workload), dataset, workload, cluster,
            result, scale,
        )

    def _save(self, dataset, workload, cluster, result, state):
        """The last job's output *is* the result; only a rename remains."""
        cluster.advance(1.0)

    def _overhead(self, dataset, cluster, result):
        cluster.advance(10.0 + 0.2 * cluster.spec.num_machines)


class HaLoopEngine(HadoopEngine):
    """HaLoop (``HL``): loop-aware Hadoop with local-disk caching."""

    key = "HL"
    display_name = "HaLoop"
    #: RPL011 contract: Hadoop's set plus the loop-aware local-disk
    #: cache that skips the invariant-data HDFS re-read
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "local_disk_io", "sample_memory",
    })
    features = MappingProxyType(
        dict(HadoopEngine.features, paradigm="BSP-extension (MapReduce)")
    )

    #: the mapper-output deletion bug triggers here (§5.10 footnote 12)
    shuffle_bug_min_machines = 64
    shuffle_bug_iteration = 4

    def _iteration_io(self, dataset, cluster, first, scale_fixed=1.0):
        """After iteration 1 the graph comes from the local cache."""
        graph = self._graph_bytes(dataset)
        state = self._state_bytes(dataset) * scale_fixed
        if first:
            # builds the invariant-data cache on local disks
            cluster.local_disk_io(graph, write=True)
            return graph + state, graph + state, graph + state
        # cached graph: local read, no graph shuffle, state-only output
        cluster.local_disk_io(graph * scale_fixed)
        return state, state, state

    def _post_iteration(self, dataset, cluster, stats) -> None:
        """Reproduce the shuffle bug on large clusters."""
        if (
            cluster.spec.num_machines >= self.shuffle_bug_min_machines
            and stats.iteration >= self.shuffle_bug_iteration
        ):
            raise ShuffleError(
                f"mapper output deleted before reduce at iteration "
                f"{stats.iteration} on {cluster.spec.num_machines} machines",
                # the mapper whose spill directory was reaped
                machine=stats.iteration % cluster.num_workers,
            )
