"""Engine abstraction: how a system runs a workload on the cluster.

Every system under study becomes an :class:`Engine` subclass that
executes the *same* workload supersteps (so answers are exact) while
charging simulated time, memory, and network according to its own
computation model. A run produces a :class:`RunResult` with the
paper's four performance metrics (§4.2): data-loading time,
execution time, result-saving time, and total response time — plus the
resource-utilization summary and the failure cell (OOM/TO/MPI/SHFL)
when the run dies.

Scaling: counts observed on the small synthetic graph are converted to
paper units through the dataset's vertex/edge scale factors, and —
for the O(diameter) traversal workloads — superstep costs are charged
``iteration_scale`` times, the ratio of the real dataset's diameter to
the synthetic one's, so a 48 000-hop road network times out exactly
where the paper's does.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import lru_cache
from types import MappingProxyType
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from ..cluster import Cluster, ClusterSpec, FailureKind, SimulatedFailure

if TYPE_CHECKING:
    from ..chaos.events import ChaosEvent, NetworkPartition
    from ..chaos.plan import ChaosPlan
from ..datasets.registry import Dataset
from ..graph.stats import estimate_diameter
from ..obs import ExtrasView, MetricsRegistry, RunObservation
from ..graph.structures import Graph
from ..workloads.base import Workload, WorkloadKind, WorkloadState
from ..workloads.pagerank import INITIAL_RANK, PageRank
from ..workloads.khop import KHop
from ..workloads.sssp import SSSP
from ..workloads.wcc import WCC

__all__ = [
    "RunResult",
    "Engine",
    "RecoveryContext",
    "RecoveryModel",
    "make_workload",
    "iteration_scale",
    "WORKLOAD_NAMES",
    "EXTENSION_WORKLOADS",
    "MODEL_PRIMITIVES",
]

WORKLOAD_NAMES = ("pagerank", "wcc", "sssp", "khop")
#: extension workloads runnable on every engine but outside the paper's grids
EXTENSION_WORKLOADS = ("cdlp",)

#: computation model → the Cluster primitives that model may charge.
#: RPL011 (the deep lint pass) statically verifies that every primitive
#: call site reachable from an engine's ``run`` is covered by the
#: engine's declared ``model_primitives``, and that the declaration
#: stays inside this table for the engine's ``trace_model``. Keep the
#: values literal frozensets — the linter reads this dict from the AST
#: without importing the module. The table encodes Section 3's model
#: boundaries: BSP/GAS/dataflow communicate through synchronized
#: shuffles and persist via HDFS; block-centric additionally gathers
#: block state to the master (Blogel's global computation); MapReduce
#: spills iterations through local disk and HDFS round-trips;
#: relational (Vertica) scans local storage and shuffles join traffic,
#: never HDFS; the single-thread baseline touches no distributed
#: communication primitive at all.
MODEL_PRIMITIVES: Mapping[str, FrozenSet[str]] = {
    "bsp": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
    }),
    "gas": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
    }),
    "dataflow": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
    }),
    "block-centric": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
        "gather_to_master",
    }),
    "mapreduce": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "local_disk_io", "sample_memory",
    }),
    "relational": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "local_disk_io", "sample_memory",
    }),
    "single-thread": frozenset({
        "advance", "uniform_compute", "local_disk_io", "sample_memory",
    }),
}


@dataclass
class RunResult:
    """One cell of the paper's result grids.

    Quantities live in a typed :class:`~repro.obs.MetricsRegistry`
    shared with the run's cluster; ``extras`` stays available as a
    backward-compatible mutable-mapping view over that registry (a dict
    passed to the constructor — e.g. by the JSONL log reader — is
    folded into the registry on init).

    ``per_iteration_time`` is the Table 6 derivation: simulated seconds
    per *paper* superstep. The denominator is ``iterations * scale``
    (observed supersteps times the diameter ratio each one stands in
    for); the numerator is the superstep loop's time only — the same
    interval the journal's superstep spans cover — so engines with
    pre-loop execute work (Blogel-B's block PageRank step 1) don't
    smear it across their iterations.
    """

    system: str                   # the figure abbreviation, e.g. "BV", "GL-S-R-I"
    workload: str
    dataset: str
    cluster_size: int
    load_time: float = 0.0
    execute_time: float = 0.0
    save_time: float = 0.0
    overhead_time: float = 0.0
    iterations: int = 0
    failure: Optional[FailureKind] = None
    failure_detail: str = ""
    answer: Optional[np.ndarray] = None
    network_bytes: float = 0.0
    peak_memory_bytes: float = 0.0
    total_memory_bytes: float = 0.0
    per_iteration_time: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)
    metrics: MetricsRegistry = field(
        default_factory=MetricsRegistry, repr=False, compare=False
    )
    #: the run's tracer+metrics bundle, when the engine produced one
    observation: Optional[RunObservation] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.extras, ExtrasView):
            seed = self.extras
            self.extras = ExtrasView(self.metrics)  # type: ignore[assignment]
            for key, value in seed.items():
                self.extras[key] = value

    @property
    def ok(self) -> bool:
        """True when the run completed."""
        return self.failure is None

    @property
    def total_time(self) -> float:
        """End-to-end response time (load + execute + save + overhead)."""
        return self.load_time + self.execute_time + self.save_time + self.overhead_time

    def cell(self) -> str:
        """The grid cell the paper would print: seconds or a failure code."""
        return f"{self.total_time:.0f}" if self.ok else str(self.failure)

    def __repr__(self) -> str:
        status = "ok" if self.ok else str(self.failure)
        return (
            f"RunResult({self.system} {self.workload}/{self.dataset}"
            f"@{self.cluster_size}: {status}, total={self.total_time:.1f}s)"
        )


@lru_cache(maxsize=None)
def _measured_diameter(name: str, size: str) -> int:
    from ..datasets.registry import load_dataset

    return max(1, estimate_diameter(load_dataset(name, size).graph))


def iteration_scale(dataset: Dataset, workload: Workload) -> float:
    """Paper supersteps per synthetic superstep.

    Traversal workloads (SSSP, WCC) need O(diameter) supersteps; our
    synthetic graphs have the paper datasets' shape but not their hop
    counts, so each observed superstep stands in for
    ``paper_diameter / synthetic_diameter`` paper supersteps. Analytic
    workloads and the fixed-K K-hop are diameter-independent (scale 1).
    """
    if workload.kind is not WorkloadKind.TRAVERSAL or isinstance(workload, KHop):
        return 1.0
    measured = _measured_diameter(dataset.name, dataset.size)
    return max(1.0, dataset.profile.diameter / measured)


def make_workload(
    name: str,
    dataset: Dataset,
    stop_mode: str = "tolerance",
    approximate: bool = False,
    pagerank_iterations: int = 30,
    wcc_variant: str = "hashmin",
) -> Workload:
    """Build a workload instance configured for a dataset.

    The paper's PageRank tolerance is the initial rank (1.0) *at paper
    scale*; ranks on the synthetic graph are smaller by the vertex scale
    factor, so the tolerance shrinks by the same factor to preserve the
    iteration count.
    """
    if name == "pagerank":
        tol = INITIAL_RANK / dataset.vertex_scale
        return PageRank(
            stop_mode=stop_mode,
            max_iterations=pagerank_iterations,
            tolerance=tol,
            approximate=approximate,
        )
    if name == "wcc":
        if wcc_variant == "hash-to-min":
            from ..workloads.wcc import HashToMinWCC

            return HashToMinWCC()
        return WCC()
    if name == "sssp":
        return SSSP(source=dataset.sssp_source)
    if name == "khop":
        return KHop(source=dataset.sssp_source, k=3)
    if name == "cdlp":
        from ..workloads.cdlp import CDLP

        return CDLP()
    raise KeyError(
        f"unknown workload {name!r}; expected one of "
        f"{WORKLOAD_NAMES + EXTENSION_WORKLOADS}"
    )


def workload_for(engine: "Engine", name: str, dataset: Dataset) -> Workload:
    """Build a workload configured the way ``engine`` runs it."""
    return make_workload(
        name,
        dataset,
        stop_mode=engine.pagerank_stop,
        approximate=engine.pagerank_approximate and engine.pagerank_stop == "tolerance",
        wcc_variant=engine.wcc_variant,
    )


@dataclass
class RecoveryContext:
    """Everything a :class:`RecoveryModel` needs to charge recovery cost.

    Built once per superstep loop; the loop refreshes the per-superstep
    fields (``iteration``, ``superstep_start``, ``superstep_shuffled``)
    before each chaos round. ``checkpoints`` is the run's checkpoint
    history as ``(simulated_time, iteration)`` pairs — corruption events
    pop entries so the next crash falls back further.
    """

    cluster: Cluster
    dataset: Dataset
    result: "RunResult"
    #: when the superstep loop started (restart-from-zero replays to here)
    loop_start: float
    #: bytes one global state checkpoint writes
    state_bytes: float
    iteration: int = 0
    superstep_start: float = 0.0
    #: bytes the superstep just run shuffled (message-loss redelivery base)
    superstep_shuffled: float = 0.0
    checkpoints: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def last_checkpoint(self) -> Tuple[float, int]:
        """Latest usable checkpoint, or the loop start when none exist."""
        return self.checkpoints[-1] if self.checkpoints else (self.loop_start, 0)

    def count_replayed(self, supersteps: int) -> None:
        """Record supersteps a recovery re-executed (journal metric)."""
        self.cluster.metrics.counter("supersteps_replayed").inc(supersteps)


class RecoveryModel(abc.ABC):
    """Table 1's fault-tolerance mechanism as chargeable behaviour.

    One instance per run, produced by :meth:`Engine.recovery_model`.
    The superstep loop calls :meth:`maybe_checkpoint` every round and
    routes crash/partition/corruption events here; each method charges
    simulated time through the context's cluster (concrete models live
    in :mod:`repro.chaos.recovery`).
    """

    #: mechanism tag recorded on recover spans ("checkpoint",
    #: "reexecution", or "none")
    name: str = ""

    def maybe_checkpoint(self, ctx: RecoveryContext) -> None:
        """Write a global checkpoint if this round is due (default: never)."""

    @abc.abstractmethod
    def recover_crash(
        self, ctx: RecoveryContext, event: "ChaosEvent", machine: int
    ) -> None:
        """Charge the cost of recovering from a dead worker."""

    def recover_partition(
        self, ctx: RecoveryContext, event: "NetworkPartition", machine: int
    ) -> None:
        """A machine group is unreachable: stall at the barrier until it
        heals (systems that cannot wait override and restart)."""
        ctx.cluster.advance(event.seconds)

    def corrupt_checkpoint(
        self, ctx: RecoveryContext, event: "ChaosEvent"
    ) -> None:
        """The latest checkpoint became unreadable (no-op without one)."""

    @abc.abstractmethod
    def rescale(
        self,
        ctx: RecoveryContext,
        event: "ChaosEvent",
        old_workers: int,
        new_workers: int,
    ) -> None:
        """Charge the cost of repartitioning onto a resized cluster.

        Fired on a superstep boundary by a ``scaleout``/``scalein``
        event, *before* :meth:`~repro.cluster.cluster.Cluster.rescale`
        changes the worker count — the bill is paid on the old cluster,
        the next superstep runs on the new one. Each Table 1 mechanism
        prices elasticity with the machinery it already has: checkpoint
        systems reload and replay, re-execution systems migrate only
        the moved partitions, restart-from-zero systems start over.
        """


class Engine(abc.ABC):
    """A distributed graph processing system under evaluation."""

    #: PageRank stop criterion this system uses by default ("tolerance"
    #: or "iterations"; Giraph runs a fixed iteration count, §5.5)
    pagerank_stop: str = "tolerance"
    #: whether this system's tolerance-mode PageRank is the approximate,
    #: opt-out variant (only GraphLab, §5.2)
    pagerank_approximate: bool = False
    #: WCC algorithm: "hashmin" (the default everywhere) or
    #: "hash-to-min" (GraphFrames' fewer-iterations variant, §5.6)
    wcc_variant: str = "hashmin"
    #: Table 1's fault-tolerance mechanism: "checkpoint" (BSP systems),
    #: "reexecution" (MapReduce family), or "none" (Vertica)
    fault_tolerance: str = "checkpoint"
    #: abbreviation used in the paper's figures ("BV", "G", "S", ...)
    key: str = ""
    #: full system name ("Giraph", "Blogel-V", ...)
    display_name: str = ""
    #: implementation language, for Table 1 and the §7 discussion
    language: str = ""
    #: Table 1 feature row (immutable: class attributes are shared by
    #: every run in the process, so subclasses wrap theirs the same way)
    features: Mapping[str, str] = MappingProxyType({})
    #: MPI engines run a rank on every machine including the master
    uses_all_machines: bool = False
    #: dataset text format the system ingests (§4.3)
    input_format: str = "adj"
    #: computation model tag used as the category of superstep spans, so
    #: traces show each paradigm's characteristic shape ("bsp", "gas",
    #: "mapreduce", "block-centric", "dataflow", ...)
    trace_model: str = "bsp"
    #: the Cluster primitives this engine's call graph may reach — every
    #: concrete engine must declare this as a literal frozenset, and it
    #: must be a subset of ``MODEL_PRIMITIVES[trace_model]``; RPL011
    #: verifies both statically (no value here: forgetting the
    #: declaration is itself a finding, not an empty contract)
    model_primitives: FrozenSet[str]

    # -- template ---------------------------------------------------------

    def workers_for(self, spec: ClusterSpec) -> int:
        """Worker count on a given cluster."""
        return spec.num_machines if self.uses_all_machines else spec.num_workers

    def recovery_model(self, plan: "ChaosPlan") -> RecoveryModel:
        """This system's Table 1 mechanism, ready to charge recovery cost."""
        from ..chaos.recovery import recovery_model_for

        return recovery_model_for(self.fault_tolerance, plan.checkpoint_interval)

    def run(
        self,
        dataset: Dataset,
        workload: Workload,
        cluster_spec: ClusterSpec,
        obs: Optional[RunObservation] = None,
    ) -> RunResult:
        """Execute one experiment cell; failures become result codes.

        The run's tracer records run → phase spans here (engines add
        superstep and cluster-op spans below); everything lands in one
        :class:`~repro.obs.RunObservation` shared by the cluster and the
        result, journalable afterwards via ``result.observation``.
        """
        if obs is None:
            obs = RunObservation()
        cluster = Cluster(
            cluster_spec, num_workers=self.workers_for(cluster_spec), obs=obs
        )
        result = RunResult(
            system=self.key,
            workload=workload.name,
            dataset=dataset.name,
            cluster_size=cluster_spec.num_machines,
            metrics=obs.metrics,
            observation=obs,
        )
        scale = iteration_scale(dataset, workload)
        tracer = obs.tracer
        phase_start = 0.0
        phase = "load"
        run_span = tracer.start(
            "run", cat="run", system=self.key, workload=workload.name,
            dataset=dataset.name, machines=cluster_spec.num_machines,
            model=self.trace_model,
        )
        try:
            with tracer.span("load", cat="phase"):
                self._load(dataset, workload, cluster, result)
            result.load_time = cluster.now - phase_start

            phase, phase_start = "execute", cluster.now
            with tracer.span("execute", cat="phase"):
                state = self._execute(dataset, workload, cluster, result, scale)
            result.execute_time = cluster.now - phase_start
            result.answer = workload.answer(state)
            result.iterations = state.iteration
            if state.iteration and not result.per_iteration_time:
                # Fallback for engines without a superstep loop: the
                # loop-based engines already set the span-accurate value
                # (see RunResult's docstring for the denominator).
                result.per_iteration_time = result.execute_time / (
                    state.iteration * scale
                )

            phase, phase_start = "save", cluster.now
            with tracer.span("save", cat="phase"):
                self._save(dataset, workload, cluster, result, state)
            result.save_time = cluster.now - phase_start

            phase, phase_start = "overhead", cluster.now
            with tracer.span("overhead", cat="phase"):
                self._overhead(dataset, cluster, result)
            result.overhead_time += cluster.now - phase_start
        except SimulatedFailure as failure:
            result.failure = failure.kind
            result.failure_detail = f"{phase}: {failure}"
            elapsed = cluster.now - phase_start
            if phase == "load":
                result.load_time = elapsed
            elif phase == "execute":
                result.execute_time = elapsed
            elif phase == "save":
                result.save_time = elapsed
        finally:
            cluster.sample_memory()
            result.network_bytes = cluster.tracker.network_total_bytes()
            result.peak_memory_bytes = max(
                (cluster.memory.peak_bytes(m) for m in range(cluster.num_workers)),
                default=0.0,
            )
            result.total_memory_bytes = cluster.memory.total_peak_bytes()
            result.extras["tracker_peak_total"] = float(
                cluster.tracker.total_memory_bytes()
            )
            # memory×time integral accrued by the cluster primitives —
            # journaled as a metric so the cost record can bill GB-hours
            result.extras["memory_byte_seconds"] = float(
                cluster.tracker.memory_byte_seconds()
            )
            cpu = cluster.tracker.cpu_totals()
            result.extras["cpu_user_seconds"] = cpu["user"]
            result.extras["cpu_system_seconds"] = cpu["system"]
            result.extras["cpu_iowait_seconds"] = cpu["iowait"]
            util = cluster.tracker.max_cpu_utilization()
            result.extras["max_user_utilization"] = util["user"]
            result.extras["max_iowait_utilization"] = util["iowait"]
            tracer.end(
                run_span,
                status="ok" if result.ok else str(result.failure),
                total_time=result.total_time,
                iterations=result.iterations,
            )
            obs.meta = {
                "system": result.system,
                "workload": result.workload,
                "dataset": result.dataset,
                # a mid-run scale-out bills every machine the run ever
                # held (cloud billing convention); machines_joined is 0
                # unless a rescale fired
                "machines": result.cluster_size + cluster.tracker.machines_joined,
                "status": "ok" if result.ok else str(result.failure),
                "failure_detail": result.failure_detail,
                "iterations": result.iterations,
                "total_time": result.total_time,
                "model": self.trace_model,
            }
        return result

    # -- phases implemented per engine -------------------------------------

    @abc.abstractmethod
    def _load(
        self, dataset: Dataset, workload: Workload, cluster: Cluster,
        result: RunResult,
    ) -> None:
        """Read the dataset, partition it, build in-memory structures."""

    @abc.abstractmethod
    def _execute(
        self, dataset: Dataset, workload: Workload, cluster: Cluster,
        result: RunResult, scale: float,
    ) -> WorkloadState:
        """Run the workload to completion; return its final state."""

    def _save(
        self, dataset: Dataset, workload: Workload, cluster: Cluster,
        result: RunResult, state: WorkloadState,
    ) -> None:
        """Write results to HDFS (default: plain parallel write)."""
        nbytes = workload.result_bytes_from_state(dataset.graph, state)
        cluster.hdfs_write(nbytes * dataset.vertex_scale)

    def _overhead(
        self, dataset: Dataset, cluster: Cluster, result: RunResult
    ) -> None:
        """Framework start/stop cost outside the three main phases."""

    # -- helpers ------------------------------------------------------------

    def graph_for(self, dataset: Dataset, workload: Workload) -> Graph:
        """The graph this engine actually computes on (quirks live here)."""
        return dataset.graph

    def __repr__(self) -> str:
        return f"{type(self).__name__}(key={self.key!r})"
