"""GraphLab / PowerGraph: the GAS vertex-cut engine (§2.1.2, §2.2).

Six configurations appear in the paper's figures, identified as
``GL-{A|S}-{A|R}-{T|I}``: (a)synchronous execution, (a)uto or (r)andom
partitioning, and (t)olerance or (i)teration stopping. Model
highlights:

* **Vertex-cut** partitioning with measured replication factors
  (Table 4); memory scales with the replica count, which is what kills
  the road network on 16 machines and ClueWeb everywhere (§5.2, §5.9).
* **C++/MPI**: no framework job overhead, cheap per-edge costs.
* **Cores**: by default 2 of the 4 cores compute and 2 handle
  communication; Figure 1's tuning experiment (all 4 cores → ~40 %
  faster synchronous, slightly *slower* asynchronous) is exposed via
  ``compute_cores``.
* **Asynchronous mode**: no barriers, but distributed locking adds
  contention that grows with cluster size (§5.3), and lock queues hold
  memory that is not released promptly — the Figure 10 blow-up that
  OOMs PageRank on WRN at 128 machines.
* **Self-edges** are dropped (GraphLab cannot represent them), so its
  PageRank is wrong on real graphs (§3.1.1) — reproduced by running on
  :meth:`Graph.without_self_edges`.
* **Approximate PageRank** (§5.2): tolerance mode lets converged
  vertices deactivate; gathers still read inactive neighbours.
"""

from __future__ import annotations

from functools import lru_cache
from types import MappingProxyType

from ..cluster import GB, Cluster
from ..datasets.registry import Dataset
from ..graph.structures import Graph
from ..workloads.base import Workload
from .base import Engine, RunResult
from .bsp import BspExecutionMixin
from .common import COSTS, cached_edge_partition

__all__ = ["GraphLabEngine"]


class GraphLabEngine(BspExecutionMixin, Engine):
    """GraphLab with a fixed (mode, partitioning, stop) configuration."""

    display_name = "GraphLab"
    language = "C++"
    trace_model = "gas"           # gather-apply-scatter over a vertex cut
    #: RPL011 contract: every primitive reachable from run()
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    input_format = "adj"
    uses_all_machines = True    # MPI rank on every machine
    features = MappingProxyType({
        "memory_disk": "Memory",
        "paradigm": "Vertex-Centric (GAS)",
        "declarative": "no",
        "partitioning": "Random / Vertex-cut",
        "synchronization": "(A)synchronous",
        "fault_tolerance": "global checkpoint",
    })

    # memory model (paper-scale bytes)
    edge_bytes = 95.0            # edge with endpoint refs, data, index
    replica_bytes = 140.0        # vertex replica (data + mirror bookkeeping)
    framework_bytes = 0.5 * GB   # MPI + runtime baseline per machine

    # time model
    mpi_superstep_base = 0.05   # all-to-all flush; grows ~sqrt(ranks)
    oblivious_edge_cost = 4.0e-7        # greedy placement, coordinated
    async_lock_cost = 2.0e-7            # per-update distributed-lock overhead
    async_contention_per_machine = 0.01
    #: bytes of unreleased lock-queue memory per vertex per superstep-
    #: equivalent at 128 machines (super-quadratic in cluster size; Fig 10)
    async_leak_bytes = 110.0
    async_leak_exponent = 2.5

    def __init__(
        self,
        mode: str = "sync",
        partitioning: str = "random",
        stop: str = "iterations",
        compute_cores: int = 2,
    ) -> None:
        if mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {mode!r}")
        if partitioning not in ("random", "auto"):
            raise ValueError(f"unknown partitioning {partitioning!r}")
        if stop not in ("tolerance", "iterations"):
            raise ValueError(f"unknown stop {stop!r}")
        if not 1 <= compute_cores <= 4:
            raise ValueError("compute_cores must be 1..4")
        self.mode = mode
        self.partitioning = partitioning
        self.stop = stop
        self.compute_cores = compute_cores
        self.pagerank_stop = stop
        self.pagerank_approximate = stop == "tolerance"
        self.key = (
            f"GL-{'S' if mode == 'sync' else 'A'}-"
            f"{'R' if partitioning == 'random' else 'A'}-"
            f"{'T' if stop == 'tolerance' else 'I'}"
        )

    # -- quirks -----------------------------------------------------------

    def graph_for(self, dataset: Dataset, workload: Workload) -> Graph:
        """GraphLab silently drops self-edges (§3.1.1)."""
        return _noself(dataset.name, dataset.size)

    def _partition(self, dataset: Dataset, num_workers: int):
        return cached_edge_partition(
            dataset.name, dataset.size, self.partitioning, num_workers
        )

    # -- phases -----------------------------------------------------------

    def _load(self, dataset, workload, cluster, result):
        """Read, place edges (scheme-dependent cost), build replicas."""
        raw = dataset.profile.raw_size_bytes
        cluster.hdfs_read(raw)
        cluster.uniform_compute(raw * COSTS.cpp_parse_cost)

        partition = self._partition(dataset, cluster.num_workers)
        scaled_e = dataset.profile.num_edges
        if partition.method == "oblivious":
            # Greedy placement needs replica-set coordination: one
            # effective core per machine, far slower than hashing (§5.4).
            cluster.uniform_compute(
                scaled_e * self.oblivious_edge_cost * cluster.spec.machine.cores,
                cores_per_machine=1,
            )
        else:
            cluster.uniform_compute(scaled_e * 2.0e-8)
        cluster.shuffle(raw)   # edges move to their assigned machines

        rf = partition.replication_factor()
        result.extras["replication_factor"] = rf
        # Small-graph partitions overstate imbalance; see GiraphEngine.
        skew = min(max(partition.balance_skew(), 0.05), 0.15)
        cluster.memory.allocate_even(
            cluster.num_workers * self.framework_bytes, "framework", skew=0.0
        )
        cluster.memory.allocate_even(
            scaled_e * self.edge_bytes, "edges", skew=skew
        )
        cluster.memory.allocate_even(
            rf * dataset.profile.num_vertices * self.replica_bytes,
            "replicas", skew=skew,
        )
        # replica construction touches every edge twice (in+out views)
        cluster.uniform_compute(
            (scaled_e + rf * dataset.profile.num_vertices) * 1.2e-7
        )
        cluster.sample_memory()

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """One GAS round: gather + apply + scatter + replica sync."""
        partition = self._partition(dataset, cluster.num_workers)
        rf = partition.replication_factor()
        skew = min(max(partition.balance_skew(), 0.02), 0.15)
        active = dataset.scaled_vertices(stats.active_vertices)
        gathered = dataset.scaled_edges(stats.messages)

        work = gathered * COSTS.cpp_edge_cost + active * COSTS.cpp_vertex_cost
        if self.mode == "sync":
            cluster.uniform_compute(
                work * self.scale_messages,
                cores_per_machine=self.compute_cores, skew=skew,
            )
            # replica synchronization: each active vertex updates its mirrors
            cluster.shuffle(active * max(0.0, rf - 1.0) * COSTS.msg_bytes
                            * self.scale_messages,
                            skew=skew, local_fraction=0.0)
            cluster.advance(
                (self.mpi_superstep_base * cluster.num_workers ** 0.5
                 + cluster.network.barrier_time()) * self.scale_fixed
            )
        else:
            contention = 1.0 + self.async_contention_per_machine * cluster.num_workers
            # Asynchronous progress is communication- and lock-bound:
            # extra compute cores only add context switching (Fig 1).
            core_penalty = 1.1 if self.compute_cores > 2 else 1.0
            lock_work = dataset.scaled_vertices(stats.updates) * self.async_lock_cost
            cluster.uniform_compute(
                (work + lock_work) * contention * core_penalty
                * self.scale_messages,
                cores_per_machine=2,
            )
            cluster.shuffle(active * max(0.0, rf - 1.0) * COSTS.msg_bytes
                            * self.scale_messages,
                            skew=skew, local_fraction=0.0)
            # Lock queues hold memory that is not promptly released; the
            # effect grows quadratically with cluster size (Fig 10).
            m = cluster.spec.num_machines
            leak = (
                dataset.profile.num_vertices * self.async_leak_bytes
                * (m / 128.0) ** self.async_leak_exponent * self.scale_fixed
            )
            cluster.memory.allocate_even(leak, "async-locks", skew=0.3)
        cluster.sample_memory()

    def _execute(self, dataset, workload, cluster, result, scale):
        return self.run_superstep_loop(
            self.graph_for(dataset, workload), dataset, workload, cluster,
            result, scale,
        )


@lru_cache(maxsize=None)
def _noself(name: str, size: str) -> Graph:
    from ..datasets.registry import load_dataset

    return load_dataset(name, size).graph.without_self_edges()
