"""Giraph: vertex-centric BSP as a map-only Hadoop application (§2.1.1).

Model highlights, each traceable to the paper:

* Random edge-cut partitioning; the whole graph must fit in memory
  before execution starts.
* JVM object overhead: Table 8 shows Giraph using 15x the raw dataset
  size in memory, growing with cluster size (per-worker JVM baseline).
* Per-superstep cost has a partition-sweep component proportional to
  |V| / cores — the Table 6 anchor (WRN SSSP: ~6 s/iteration on 16
  machines, ~3 s on 32).
* Hadoop job start/stop overhead grows with cluster size (§5.5, §5.7).
* WCC doubles edge memory (reverse edges) and its first superstep
  cannot use the message combiner (§5.8) — big, uncombined discovery
  messages are what push UK0705 loads over the memory cliff on small
  clusters.
"""

from __future__ import annotations

from types import MappingProxyType

from ..cluster import GB, Cluster
from ..datasets.registry import Dataset
from ..workloads.base import Workload, WorkloadState
from .base import Engine, RunResult
from .bsp import BspExecutionMixin
from .common import COSTS, cached_vertex_partition

__all__ = ["GiraphEngine"]


class GiraphEngine(BspExecutionMixin, Engine):
    """Giraph (the paper's ``G``)."""

    key = "G"
    display_name = "Giraph"
    pagerank_stop = "iterations"   # Giraph runs a fixed iteration count (§5.5)
    language = "Java"
    trace_model = "bsp"            # vertex-centric supersteps + global barrier
    #: RPL011 contract: every primitive reachable from run()
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    input_format = "adj"
    uses_all_machines = False   # runs as Hadoop mappers; master excluded
    features = MappingProxyType({
        "memory_disk": "Memory",
        "paradigm": "Vertex-Centric",
        "declarative": "no",
        "partitioning": "Random",
        "synchronization": "Synchronous",
        "fault_tolerance": "global checkpoint",
    })

    # memory model (paper-scale bytes)
    jvm_base_bytes = 6.0 * GB     # per-worker JVM + framework baseline
    vertex_bytes = 360.0          # vertex object + partition overhead
    edge_bytes = 60.0             # adjacency entry as JVM object
    combiner_buffer_bytes = 24.0  # per-vertex combined-message slot

    # time model
    job_overhead_base = 8.0       # Hadoop job start/stop (seconds)
    job_overhead_per_machine = 0.45
    superstep_coordination = 0.3  # ZooKeeper barrier + worker sync
    memory_skew = 0.10            # JVM variance on top of partition balance

    def _partition(self, dataset: Dataset, num_workers: int):
        return cached_vertex_partition(dataset.name, dataset.size, num_workers)

    def _load(self, dataset, workload, cluster, result):
        """Read the adj dataset, shuffle vertices to partitions, build objects."""
        raw = dataset.profile.raw_size_bytes
        cluster.hdfs_read(raw)
        cluster.uniform_compute(raw * COSTS.jvm_parse_cost, system_fraction=0.3)
        # Random partitioning moves nearly all data across the wire.
        cluster.shuffle(raw)

        scaled_v = dataset.profile.num_vertices
        scaled_e = dataset.profile.num_edges
        edge_factor = 2.0 if workload.needs_reverse_edges else 1.0
        partition = self._partition(dataset, cluster.num_workers)
        skew = max(partition.balance_skew(), self.memory_skew)
        cluster.memory.allocate_even(
            cluster.num_workers * self.jvm_base_bytes, "jvm", skew=0.0
        )
        cluster.memory.allocate_even(
            scaled_v * self.vertex_bytes, "vertices", skew=skew
        )
        cluster.memory.allocate_even(
            scaled_e * self.edge_bytes * edge_factor, "edges", skew=skew
        )
        # building the in-memory representation costs JVM-object time
        cluster.uniform_compute(
            (scaled_v + scaled_e * edge_factor) * COSTS.jvm_vertex_cost * 0.2,
            system_fraction=0.2,
        )
        cluster.sample_memory()

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """Compute + message shuffle + barrier for one superstep."""
        partition = self._partition(dataset, cluster.num_workers)
        # Small-graph partitions overstate imbalance; at paper scale a
        # random hash over hundreds of millions of vertices is tight.
        skew = min(max(partition.balance_skew(), 0.02), 0.15)
        active = dataset.scaled_vertices(stats.active_vertices)
        messages = dataset.scaled_edges(stats.messages)

        # Message buffers: combinable workloads reduce to one slot per
        # vertex; WCC's first superstep ships raw discovery messages.
        if first and workload.needs_reverse_edges:
            buffer_bytes = messages * COSTS.wcc_first_msg_bytes
        elif workload.combinable:
            buffer_bytes = dataset.profile.num_vertices * self.combiner_buffer_bytes
        else:
            buffer_bytes = messages * COSTS.msg_bytes
        cluster.memory.allocate_even(buffer_bytes, "messages", skew=self.memory_skew)
        cluster.sample_memory()

        sweep = dataset.profile.num_vertices * COSTS.giraph_sweep_cost
        work = (
            active * COSTS.jvm_vertex_cost + messages * COSTS.jvm_edge_cost
        ) * self.scale_messages + sweep * self.scale_fixed
        cluster.uniform_compute(work, skew=skew, system_fraction=0.15)
        combinable = workload.combinable and not (first and workload.needs_reverse_edges)
        combine = COSTS.combine_efficiency if combinable else 1.0
        wire_bytes = (messages * COSTS.msg_bytes * partition.cut_fraction()
                      * combine * self.scale_messages)
        cluster.shuffle(wire_bytes, skew=skew, local_fraction=0.0)
        cluster.advance(
            (self.superstep_coordination + cluster.network.barrier_time())
            * self.scale_fixed
        )
        cluster.memory.free_label("messages")

    def _execute(self, dataset, workload, cluster, result, scale):
        return self.run_superstep_loop(
            self.graph_for(dataset, workload), dataset, workload, cluster,
            result, scale,
        )

    def _overhead(self, dataset, cluster, result):
        """MapReduce resource allocation/release grows with cluster size."""
        machines = cluster.spec.num_machines
        cluster.advance(
            self.job_overhead_base + self.job_overhead_per_machine * machines
        )
