"""Vertica: graph analytics on a relational column store (§2.6, §5.11).

The graph is an edge table plus a vertex table; one superstep is a
distributed self-join (edge ⋈ vertex) followed by an aggregate, and —
per the optimizations of Jindal et al. — the new vertex states land in
a *fresh table* that replaces the old one (sequential instead of random
I/O), with traversal workloads keeping a small "active vertices"
temporary table instead.

Why it loses on big clusters (§5.11): every iteration creates and
deletes distributed temporary tables, and the self-join shuffles rows
across all machines; both costs grow with the cluster. Its memory
footprint stays small (the engine streams from disk), but I/O wait and
network volume dominate — Figure 13's profile.
"""

from __future__ import annotations

from types import MappingProxyType

from ..cluster import GB, Cluster
from ..workloads.base import WorkloadKind
from .base import Engine, RunResult
from .bsp import BspExecutionMixin

__all__ = ["VerticaEngine"]


class VerticaEngine(BspExecutionMixin, Engine):
    """Vertica (``V``)."""

    key = "V"
    display_name = "Vertica"
    language = "SQL"
    input_format = "edge"
    trace_model = "relational"    # join + aggregate + temp-table swap
    #: RPL011 contract: table scans hit local storage and joins shuffle
    #: segment traffic — a relational engine never touches HDFS
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "local_disk_io", "sample_memory",
    })
    uses_all_machines = True    # shared-nothing database on every node
    fault_tolerance = "none"
    features = MappingProxyType({
        "memory_disk": "Disk",
        "paradigm": "Relational",
        "declarative": "yes (SQL)",
        "partitioning": "Random",
        "synchronization": "Synchronous",
        "fault_tolerance": "N/A",
    })

    edge_row_bytes = 16.0        # (src, dst) columns, compressed on disk
    vertex_row_bytes = 16.0
    working_memory_bytes = 1.0 * GB   # execution memory per node
    table_create_overhead = 1.5       # distributed DDL, seconds
    table_drop_overhead = 0.5
    join_row_cost = 4.0e-7            # per joined row, per core
    per_machine_connection_cost = 0.05

    def _load(self, dataset, workload, cluster, result):
        """COPY the edge list into the distributed edge table."""
        raw_rows = dataset.profile.num_edges * self.edge_row_bytes
        cluster.local_disk_io(raw_rows, write=True)
        cluster.shuffle(raw_rows)    # segmentation across nodes
        cluster.memory.allocate_even(
            cluster.num_workers * self.working_memory_bytes, "exec-memory",
            skew=0.0,
        )
        cluster.sample_memory()

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """One iteration = join + aggregate + temp-table swap."""
        messages = dataset.scaled_edges(stats.messages)
        machines = cluster.num_workers

        if workload.kind is WorkloadKind.TRAVERSAL:
            # Active-vertex temp table: the join probes only the frontier,
            # but the edge table is still scanned from disk.
            joined_rows = messages
            new_table_rows = dataset.scaled_vertices(stats.updates)
        else:
            joined_rows = messages
            new_table_rows = dataset.profile.num_vertices

        sf, sm = self.scale_fixed, self.scale_messages
        # Edge-table scan is disk-bound: the I/O-wait signature of Fig 13a.
        scan_bytes = dataset.profile.num_edges * self.edge_row_bytes * sf
        scan_time = scan_bytes / (
            machines * cluster.spec.machine.cores
            * cluster.spec.machine.disk_read_bps
        )
        cluster.uniform_compute(
            joined_rows * self.join_row_cost * sm,
            system_fraction=0.1,
            iowait_seconds=scan_time,
        )
        # the scan's seconds are charged above as iowait; its bytes get
        # their own span so trace exports see the disk-bound signature
        with cluster.tracer.span("table-scan", cat="cluster", bytes=scan_bytes):
            cluster.tracker.record_disk(read=scan_bytes)

        # The distributed self-join reshuffles the joined rows; larger
        # clusters shuffle a larger share and pay more connections.
        cluster.shuffle(joined_rows * self.edge_row_bytes * sm, skew=0.05,
                        local_fraction=1.0 / machines)
        cluster.advance(self.per_machine_connection_cost * machines * sf)

        # New-table swap: create, fill (sequential write), drop the old.
        cluster.advance(self.table_create_overhead * sf)
        cluster.local_disk_io(new_table_rows * self.vertex_row_bytes * sm,
                              write=True)
        cluster.advance(self.table_drop_overhead * sf)

    def _execute(self, dataset, workload, cluster, result, scale):
        return self.run_superstep_loop(
            self.graph_for(dataset, workload), dataset, workload, cluster,
            result, scale,
        )

    def _save(self, dataset, workload, cluster, result, state):
        """Results stay in a table; export is a parallel scan + write."""
        nbytes = workload.result_bytes_from_state(dataset.graph, state)
        cluster.local_disk_io(nbytes * dataset.vertex_scale, write=True)
