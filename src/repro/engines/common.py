"""Shared cost constants and cached partitioning for the engines.

All calibration constants live here and in the engine classes, in one
visible place (DESIGN.md, "Calibration notes"). They encode the
qualitative cost hierarchy the paper measures — C++/MPI engines beat
JVM engines, Hadoop-family engines pay per-iteration I/O and job
overheads, Spark pays scheduling and lineage — with anchors taken from
the paper's own numbers (Table 6 per-iteration times, Table 8 memory,
Table 9 single-thread times).

Partitioning a dataset is deterministic and reused across many runs, so
partitions are memoized per (dataset, scheme, machine count).
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from typing import Iterator

from ..cluster import Cluster
from ..datasets.registry import load_dataset
from ..obs import Span
from ..workloads.base import SuperstepStats
from ..partitioning.edge_cut import VertexPartition, random_vertex_partition
from ..partitioning.vertex_cut import (
    EdgePartition,
    auto_partition,
    random_edge_partition,
)
from ..partitioning.voronoi import BlockPartition, voronoi_partition

__all__ = [
    "CostConstants",
    "COSTS",
    "observed_superstep",
    "cached_vertex_partition",
    "cached_edge_partition",
    "cached_block_partition",
]


@contextmanager
def observed_superstep(
    cluster: Cluster,
    stats: SuperstepStats,
    model: str = "bsp",
) -> Iterator[Span]:
    """Span + metrics for one observed superstep, shared by every engine.

    Wrap the engine's charging code in this: the span (category =
    the engine's ``trace_model``, so BSP/GAS/MapReduce/block-centric/
    dataflow traces each show their shape) carries the superstep's
    workload stats, its shuffle-byte delta, and the cluster-wide memory
    peak; the registry accumulates ``messages_sent``, ``supersteps``,
    and the per-superstep histograms. A simulated failure mid-superstep
    closes the span with an ``error`` attr and skips the metrics —
    half-charged supersteps never pollute the series.
    """
    metrics = cluster.metrics
    shuffled_before = metrics.counter("bytes_shuffled").value
    start = cluster.now
    # plain-int casts: workload stats may carry numpy scalars, which
    # would break the journal's JSON serialization
    with cluster.tracer.span(
        "superstep", cat=model,
        iteration=int(stats.iteration),
        active_vertices=int(stats.active_vertices),
        messages=int(stats.messages),
        updates=int(stats.updates),
    ) as span:
        yield span
        peak = max(
            (cluster.memory.peak_bytes(m) for m in range(cluster.num_workers)),
            default=0.0,
        )
        span.attrs["bytes_shuffled"] = (
            metrics.counter("bytes_shuffled").value - shuffled_before
        )
        span.attrs["peak_memory_bytes"] = peak
        metrics.counter("supersteps").inc()
        metrics.counter("messages_sent").inc(int(stats.messages))
        metrics.histogram("active_vertices").observe(float(stats.active_vertices))
        metrics.histogram("superstep_seconds").observe(cluster.now - start)
        metrics.histogram("superstep_memory_bytes").observe(peak)


class CostConstants:
    """Per-item simulated costs, in seconds and paper-scale bytes."""

    # -- compute rates (seconds per item, per core) -------------------------
    #: C++ engines (Blogel, GraphLab): ~12M edge ops per second per core
    cpp_edge_cost = 8.0e-8
    #: C++ per-vertex update
    cpp_vertex_cost = 1.5e-7
    #: JVM engines (Giraph, Gelly): ~5M edge/message ops per second per core
    #: (calibrated so Giraph tracks GraphLab under random partitioning, §5.5)
    jvm_edge_cost = 1.0e-7
    #: JVM per-vertex update (object overhead)
    jvm_vertex_cost = 5.0e-7
    #: Giraph per-superstep partition sweep, per vertex (Table 6 anchor:
    #: ~6 s per iteration on WRN at 16 machines, ~3 s at 32)
    giraph_sweep_cost = 4.5e-7
    #: Spark RDD scan, per edge (interpreter + serialization overhead)
    spark_edge_cost = 5.0e-6
    #: Hadoop record processing, per record (parse + serialize + sort share)
    hadoop_record_cost = 2.0e-6

    # -- message sizes (bytes, paper scale) ---------------------------------
    msg_bytes = 16
    #: WCC's uncombinable first-superstep discovery message (id + payload
    #: + JVM object overhead)
    wcc_first_msg_bytes = 36

    #: fraction of combinable message bytes that actually cross the wire
    #: after sender-side combining (sum/min collapse most duplicates)
    combine_efficiency = 0.15

    # -- parsing (load phase) ------------------------------------------------
    #: text parse + in-memory build, per input byte per core. Anchored to
    #: Table 7: Blogel-V reads+builds ClueWeb (784 GB adj-long) on 128
    #: machines in ~130 s, i.e. ~50 MB/s per machine through 4 cores.
    cpp_parse_cost = 8.0e-8
    jvm_parse_cost = 1.4e-7


COSTS = CostConstants()


@lru_cache(maxsize=None)
def cached_vertex_partition(
    dataset_name: str, size: str, num_parts: int, seed: int = 0
) -> VertexPartition:
    """Random edge-cut partition, memoized per dataset and machine count."""
    graph = load_dataset(dataset_name, size).graph
    return random_vertex_partition(graph, num_parts, seed=seed)


@lru_cache(maxsize=None)
def cached_edge_partition(
    dataset_name: str, size: str, scheme: str, num_parts: int, seed: int = 0
) -> EdgePartition:
    """Vertex-cut partition ('random' or 'auto'), memoized."""
    graph = load_dataset(dataset_name, size).graph
    if scheme == "random":
        return random_edge_partition(graph, num_parts, seed=seed)
    if scheme == "auto":
        return auto_partition(graph, num_parts, seed=seed)
    raise KeyError(f"unknown vertex-cut scheme {scheme!r}")


@lru_cache(maxsize=None)
def cached_block_partition(
    dataset_name: str, size: str, num_parts: int, seed: int = 0
) -> BlockPartition:
    """Blogel Voronoi block partition, memoized."""
    graph = load_dataset(dataset_name, size).graph
    return voronoi_partition(graph, num_parts, seed=seed)
