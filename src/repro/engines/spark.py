"""Spark / GraphX (§2.5.2, §4.4.3, §5.6).

GraphX expresses each Pregel superstep as several Spark jobs over
immutable RDDs. The model captures the four behaviours the paper
documents:

* **Partition count** rules everything (Figure 2 / Table 5). The
  default equals the number of 64 MB HDFS blocks of the input; the
  paper tunes it to ``min(#blocks, 2 x total cores)``. Tasks run in
  waves of (cores) per machine, so the *most loaded* machine's wave
  count sets the pace.
* **Placement imbalance** (Figure 11): Spark's locality-driven
  scheduling lands very uneven partition counts per machine — one
  machine got 54 of 1200 partitions where 9.4 was the fair share.
  Modelled as a seeded heavy-tailed multinomial.
* **Lineage growth** (§5.6): every iteration extends RDD lineage;
  memory grows with the iteration count, which is what kills WCC on
  the road network at every cluster size (OOM or, when per-iteration
  time is large, TO first).
* **Framework overhead** (§5.7): per-job scheduling plus job
  start/stop that grows with cluster size.
"""

from __future__ import annotations

from types import MappingProxyType

from functools import lru_cache
from typing import Optional

import numpy as np

from ..cluster import GB, Cluster
from ..datasets.registry import Dataset
from .base import Engine, RunResult
from .bsp import BspExecutionMixin
from .common import COSTS, cached_edge_partition

__all__ = ["GraphXEngine", "partition_placement", "default_partitions",
           "tuned_partitions"]

EDGE_LIST_SIZE_FACTOR = 1.7   # edge format vs adj (ClueWeb: 1.2 TB vs 700 GB)


def default_partitions(dataset: Dataset, block_size: int = 64 * 1024 * 1024) -> int:
    """Spark's default: one partition per HDFS block of the input."""
    edge_bytes = dataset.profile.raw_size_bytes * EDGE_LIST_SIZE_FACTOR
    return max(1, -(-int(edge_bytes) // block_size))


def tuned_partitions(dataset: Dataset, total_cores: int) -> int:
    """The paper's heuristic: #blocks capped at twice the core count."""
    return max(total_cores // 2, min(default_partitions(dataset), 2 * total_cores))


@lru_cache(maxsize=None)
def partition_placement(
    dataset_name: str, num_partitions: int, num_workers: int, seed: int = 5
) -> np.ndarray:
    """Partitions per machine under Spark's skewed placement (Fig 11).

    Locality-driven scheduling concentrates partitions: machine weights
    are drawn from a heavy-tailed distribution, so the maximum is
    several times the fair share — matching the paper's 54-of-1200
    observation on 128 machines.
    """
    import zlib

    key = f"{dataset_name}|{num_workers}|{seed}".encode("ascii")
    rng = np.random.default_rng(zlib.crc32(key))
    weights = rng.pareto(2.2, size=num_workers) + 1.0
    weights /= weights.sum()
    counts = rng.multinomial(num_partitions, weights)
    return counts


class GraphXEngine(BspExecutionMixin, Engine):
    """GraphX on Spark standalone (``S``)."""

    key = "S"
    trace_model = "dataflow"      # Pregel-on-RDDs: join/aggregate stages
    #: RPL011 contract: GraphX's skewed executors charge per-partition
    #: parallel_compute on top of the shared BSP surface
    model_primitives = frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    display_name = "GraphX"
    language = "Scala"
    input_format = "edge"
    uses_all_machines = False   # one machine runs the driver
    features = MappingProxyType({
        "memory_disk": "Memory/Disk",
        "paradigm": "BSP-extension",
        "declarative": "no",
        "partitioning": "Random / Vertex-cut",
        "synchronization": "Synchronous",
        "fault_tolerance": "global checkpoint (lineage)",
    })

    # memory model
    rdd_edge_bytes = 40.0
    rdd_vertex_bytes = 56.0
    executor_base_bytes = 3.0 * GB
    #: lineage + shipped closures retained per vertex per (paper) iteration
    lineage_bytes_per_vertex_iter = 2.0

    # time model
    jobs_per_superstep = 3
    job_scheduling_overhead = 1.2
    task_launch_overhead = 0.2
    memory_skew = 0.10

    def __init__(self, num_partitions: Optional[int] = None,
                 partition_policy: str = "tuned",
                 wcc_variant: str = "hashmin") -> None:
        if partition_policy not in ("tuned", "default", "fixed"):
            raise ValueError(f"unknown partition_policy {partition_policy!r}")
        if partition_policy == "fixed" and num_partitions is None:
            raise ValueError("fixed policy needs num_partitions")
        if wcc_variant not in ("hashmin", "hash-to-min"):
            raise ValueError(f"unknown wcc_variant {wcc_variant!r}")
        self.partition_policy = partition_policy
        self.num_partitions = num_partitions
        self.wcc_variant = wcc_variant
        if wcc_variant == "hash-to-min":
            # GraphFrames' variant (§5.6): fewer, heavier iterations
            self.key = "S-h2m"

    def partitions_for(self, dataset: Dataset, cluster: Cluster) -> int:
        """Resolve the partition count for this run."""
        if self.partition_policy == "fixed":
            assert self.num_partitions is not None
            return self.num_partitions
        if self.partition_policy == "default":
            return default_partitions(dataset)
        cores = cluster.num_workers * cluster.spec.machine.cores
        return tuned_partitions(dataset, cores)

    def _vertex_cut(self, dataset: Dataset, num_workers: int):
        return cached_edge_partition(dataset.name, dataset.size, "random",
                                     num_workers)

    def _load(self, dataset, workload, cluster, result):
        """Read the edge list, build the edge/vertex RDDs."""
        raw = dataset.profile.raw_size_bytes * EDGE_LIST_SIZE_FACTOR
        cluster.hdfs_read(raw)
        cluster.uniform_compute(raw * COSTS.jvm_parse_cost, system_fraction=0.3)
        cluster.shuffle(raw)   # vertex-cut repartitioning

        parts = self.partitions_for(dataset, cluster)
        result.extras["num_partitions"] = float(parts)
        placement = partition_placement(dataset.name, parts, cluster.num_workers)
        skew = float(placement.max() / max(placement.mean(), 1e-9) - 1.0)
        result.extras["placement_skew"] = skew

        cluster.memory.allocate_even(
            cluster.num_workers * self.executor_base_bytes, "executors", skew=0.0
        )
        # HDFS block placement spreads storage more evenly than task
        # scheduling spreads work; cap the storage skew.
        storage_skew = min(skew, 0.35)
        cluster.memory.allocate_even(
            dataset.profile.num_edges * self.rdd_edge_bytes, "edge-rdd",
            skew=storage_skew,
        )
        rf = self._vertex_cut(dataset, cluster.num_workers).replication_factor()
        cluster.memory.allocate_even(
            rf * dataset.profile.num_vertices * self.rdd_vertex_bytes,
            "vertex-rdd", skew=storage_skew,
        )
        cluster.sample_memory()

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """Several Spark jobs: full RDD scans in skewed task waves."""
        parts = self.partitions_for(dataset, cluster)
        placement = partition_placement(dataset.name, parts, cluster.num_workers)
        cores = cluster.spec.machine.cores
        # Work stealing rebalances placement skew while the partition
        # count stays near the core count; far beyond 2x cores,
        # locality scheduling pins tasks and the skew bites in full —
        # the paper's partition-count tuning rule (§4.4.3, Figure 2).
        total_cores = cluster.num_workers * cores
        skew_weight = min(1.0, parts / (2.0 * total_cores))
        mean = placement.mean()
        effective_max = mean + (placement.max() - mean) * skew_weight
        waves = max(1, int(-(-effective_max // cores)))
        per_partition_edges = dataset.profile.num_edges / parts
        task_time = (
            per_partition_edges * COSTS.spark_edge_cost
            + self.task_launch_overhead
        )
        messages = dataset.scaled_edges(stats.messages)

        cluster.advance(self.jobs_per_superstep * self.job_scheduling_overhead
                        * self.scale_fixed)
        # The busiest machine's waves set the superstep's pace; full RDD
        # scans are invariant work, one per paper superstep.
        cluster.parallel_compute(
            [waves * task_time * self.scale_fixed] * cluster.num_workers,
            system_fraction=0.3,
        )
        cluster.shuffle(messages * COSTS.msg_bytes * self.scale_messages,
                        skew=float(placement.max() / max(placement.mean(), 1e-9) - 1),
                        local_fraction=None)

        # Lineage grows every paper iteration until something gives (§5.6).
        cluster.memory.allocate_even(
            dataset.profile.num_vertices * self.lineage_bytes_per_vertex_iter
            * self.scale_fixed,
            "lineage", skew=self.memory_skew,
        )
        cluster.sample_memory()

    def _execute(self, dataset, workload, cluster, result, scale):
        return self.run_superstep_loop(
            self.graph_for(dataset, workload), dataset, workload, cluster,
            result, scale,
        )

    def _overhead(self, dataset, cluster, result):
        """Spark application start/stop (§5.7)."""
        cluster.advance(20.0 + 0.3 * cluster.spec.num_machines)
