"""The eight systems under study (plus the single-thread COST baseline).

``make_engine`` builds an engine from its figure abbreviation;
``systems_for_workload`` returns the lineup each result grid uses
(PageRank adds the tolerance-mode GraphLab variants, the other grids
use the iteration-mode lineup).
"""

from .base import (Engine, RunResult, WORKLOAD_NAMES, EXTENSION_WORKLOADS,
                   iteration_scale,
                   make_workload, workload_for)
from .blogel import BlogelBEngine, BlogelVEngine
from .gelly import GellyEngine
from .giraph import GiraphEngine
from .giraphpp import GiraphPlusPlusEngine
from .graphlab import GraphLabEngine
from .hadoop import HadoopEngine, HaLoopEngine
from .single_thread import (
    SingleThreadEngine,
    direction_optimizing_bfs,
    gap_pagerank,
    shiloach_vishkin_wcc,
)
from .spark import GraphXEngine, default_partitions, partition_placement, tuned_partitions
from .vertica import VerticaEngine

__all__ = [
    "Engine",
    "RunResult",
    "WORKLOAD_NAMES",
    "EXTENSION_WORKLOADS",
    "make_workload",
    "workload_for",
    "iteration_scale",
    "make_engine",
    "systems_for_workload",
    "ENGINE_KEYS",
    "GRID_SYSTEMS",
    "PAGERANK_SYSTEMS",
    "BlogelVEngine",
    "BlogelBEngine",
    "GiraphEngine",
    "GiraphPlusPlusEngine",
    "GraphLabEngine",
    "HadoopEngine",
    "HaLoopEngine",
    "GraphXEngine",
    "VerticaEngine",
    "GellyEngine",
    "SingleThreadEngine",
    "gap_pagerank",
    "direction_optimizing_bfs",
    "shiloach_vishkin_wcc",
    "default_partitions",
    "tuned_partitions",
    "partition_placement",
]


def _graphlab(mode: str, part: str, stop: str) -> GraphLabEngine:
    return GraphLabEngine(mode=mode, partitioning=part, stop=stop)


_FACTORIES = {
    "BB": BlogelBEngine,
    "BB*": lambda: BlogelBEngine(skip_hdfs_roundtrip=True),
    "BB-coord": lambda: BlogelBEngine(partitioner="coordinate"),
    "BB-url": lambda: BlogelBEngine(partitioner="url-prefix"),
    "G++": GiraphPlusPlusEngine,
    "S-h2m": lambda: GraphXEngine(wcc_variant="hash-to-min"),
    "BV": BlogelVEngine,
    "G": GiraphEngine,
    "GL-S-R-I": lambda: _graphlab("sync", "random", "iterations"),
    "GL-S-A-I": lambda: _graphlab("sync", "auto", "iterations"),
    "GL-S-R-T": lambda: _graphlab("sync", "random", "tolerance"),
    "GL-S-A-T": lambda: _graphlab("sync", "auto", "tolerance"),
    "GL-A-R-T": lambda: _graphlab("async", "random", "tolerance"),
    "GL-A-A-T": lambda: _graphlab("async", "auto", "tolerance"),
    "HD": HadoopEngine,
    "HL": HaLoopEngine,
    "S": GraphXEngine,
    "V": VerticaEngine,
    "FG": GellyEngine,
    "ST": SingleThreadEngine,
}

ENGINE_KEYS = tuple(_FACTORIES)


def make_engine(key: str) -> Engine:
    """Instantiate an engine from its figure abbreviation."""
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise KeyError(
            f"unknown engine {key!r}; expected one of {ENGINE_KEYS}"
        ) from None


#: the lineup of Figures 5, 7, 8, 9 (K-hop, SSSP, WCC and the Twitter grid)
GRID_SYSTEMS = ("BB", "BV", "G", "GL-S-A-I", "GL-S-R-I", "HD", "HL", "S", "FG")

#: Figure 6's PageRank lineup adds the tolerance/async GraphLab variants
PAGERANK_SYSTEMS = (
    "BB", "BV", "G",
    "GL-A-A-T", "GL-A-R-T", "GL-S-A-I", "GL-S-A-T", "GL-S-R-I", "GL-S-R-T",
    "HD", "HL", "S", "FG",
)


def systems_for_workload(workload_name: str) -> tuple:
    """The paper's system lineup for a workload's result grid."""
    return PAGERANK_SYSTEMS if workload_name == "pagerank" else GRID_SYSTEMS
