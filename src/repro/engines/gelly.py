"""Flink Gelly: the stream/dataflow representative (§2.7).

We model Gelly's *batch* mode, the one the paper uses so the read/
prepare time is separable from execution. Characteristics from the
paper:

* Low framework overhead per run (§5.7) — Flink schedules the whole
  iterative dataflow once, unlike Spark's per-iteration jobs — but the
  cluster must be *restarted between workloads* because Flink does not
  reclaim all memory between job executions; that restart is charged to
  overhead.
* Data lives serialized in Flink's managed memory (compact: far less
  than Giraph's JVM objects), so Gelly finishes WCC on UK0705 at every
  cluster size where Giraph OOMs (§5.8).
* Every superstep processes the full vertex set through the dataflow
  (scatter-gather has no frontier index), so per-iteration cost scales
  with |V|/cores — WCC on the road network times out on 16/32/64
  machines and finishes in *slightly under 24 hours* on 128 (§5.8).
* ClueWeb (§5.9): Gelly could not finish. At ~1 B vertices Flink's
  hash-table segment management fails at this memory budget; we encode
  that observed cliff directly (`max_vertices`) rather than deriving it
  — the paper reports the failure without a mechanism, and no linear
  memory model separates ClueWeb-at-128 from UK-at-16 (which succeeds).
"""

from __future__ import annotations

from types import MappingProxyType

from ..cluster import GB, Cluster, SimulatedOOM
from ..datasets.registry import Dataset
from .base import Engine, RunResult
from .bsp import BspExecutionMixin
from .common import COSTS, cached_vertex_partition
from .spark import EDGE_LIST_SIZE_FACTOR

__all__ = ["GellyEngine"]


class GellyEngine(BspExecutionMixin, Engine):
    """Flink Gelly (``FG``), batch mode."""

    key = "FG"
    display_name = "Flink Gelly"
    language = "Java/Scala"
    trace_model = "dataflow"      # BSP iterations lowered onto Flink dataflow
    #: RPL011 contract: every primitive reachable from run()
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    input_format = "edge"
    uses_all_machines = False   # one machine hosts the JobManager
    features = MappingProxyType({
        "memory_disk": "Memory/Disk",
        "paradigm": "Stream/Dataflow (BSP iterations)",
        "declarative": "no",
        "partitioning": "Random",
        "synchronization": "Synchronous",
        "fault_tolerance": "checkpoint",
    })

    # memory model: serialized binary rows in managed memory
    edge_bytes = 16.0
    vertex_bytes = 40.0
    framework_bytes = 2.0 * GB
    #: Flink's observed scale cliff on this hardware budget (§5.9)
    max_vertices = 900_000_000

    # time model
    #: full dataflow sweep per superstep, per vertex (anchor: WRN WCC
    #: finishes just under 24 h on 128 machines, times out on 64)
    sweep_cost = 1.15e-6
    superstep_overhead = 0.15
    #: cluster restart needed after each workload (§5.7)
    restart_overhead = 45.0

    def _partition(self, dataset: Dataset, num_workers: int):
        return cached_vertex_partition(dataset.name, dataset.size, num_workers)

    def _load(self, dataset, workload, cluster, result):
        """Read the edge list into serialized managed-memory datasets."""
        if dataset.profile.num_vertices > self.max_vertices:
            raise SimulatedOOM(
                f"{dataset.profile.num_vertices / 1e6:.0f} M vertices exceed "
                "Flink's workable scale at this memory budget",
                # managed memory fills on the most-loaded worker first
                machine=0,
            )
        raw = dataset.profile.raw_size_bytes * EDGE_LIST_SIZE_FACTOR
        cluster.hdfs_read(raw)
        cluster.uniform_compute(raw * COSTS.jvm_parse_cost, system_fraction=0.25)
        cluster.shuffle(raw)

        edge_factor = 2.0 if workload.needs_reverse_edges else 1.0
        cluster.memory.allocate_even(
            cluster.num_workers * self.framework_bytes, "framework", skew=0.0
        )
        cluster.memory.allocate_even(
            dataset.profile.num_edges * self.edge_bytes * edge_factor,
            "edges", skew=0.08,
        )
        cluster.memory.allocate_even(
            dataset.profile.num_vertices * self.vertex_bytes, "vertices",
            skew=0.08,
        )
        cluster.sample_memory()

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """Scatter-gather round: full dataflow sweep + message exchange."""
        partition = self._partition(dataset, cluster.num_workers)
        messages = dataset.scaled_edges(stats.messages)
        sweep = dataset.profile.num_vertices * self.sweep_cost
        work = sweep * self.scale_fixed + (
            messages * COSTS.jvm_edge_cost
            + dataset.scaled_vertices(stats.active_vertices) * COSTS.jvm_vertex_cost
        ) * self.scale_messages
        cluster.uniform_compute(work, skew=0.05, system_fraction=0.2)
        cluster.shuffle(messages * COSTS.msg_bytes * partition.cut_fraction()
                        * self.scale_messages,
                        skew=0.05, local_fraction=0.0)
        cluster.advance(
            (self.superstep_overhead + cluster.network.barrier_time())
            * self.scale_fixed
        )

    def _execute(self, dataset, workload, cluster, result, scale):
        return self.run_superstep_loop(
            self.graph_for(dataset, workload), dataset, workload, cluster,
            result, scale,
        )

    def _overhead(self, dataset, cluster, result):
        """The forced cluster restart between workloads (§5.7)."""
        cluster.advance(self.restart_overhead)
