"""Giraph++: "think like a graph" on the Hadoop substrate (§2.3).

The paper classifies Giraph++ as the other block-centric system but
excludes it because it forks an old Giraph without the later
optimizations. This engine reconstructs it as the paper describes the
*category*: Blogel-B's serial-within-block / BSP-across-blocks
execution, paying Giraph's costs — JVM object memory, Hadoop job
overhead, ZooKeeper-coordinated supersteps.

Substitution note: Giraph++ partitions with METIS (Table 1). A METIS
build is not available here; the Graph-Voronoi blocks stand in (both
produce connected, locality-preserving blocks). Because the
aggregation runs over Hadoop RPC rather than MPI, Blogel-B's 32-bit
overflow does not apply — Giraph++ fails on big graphs the way Giraph
does, by memory.
"""

from __future__ import annotations

from types import MappingProxyType

from ..cluster import GB, Cluster
from ..datasets.registry import Dataset
from .base import RunResult
from .blogel import BlogelBEngine
from .common import COSTS

__all__ = ["GiraphPlusPlusEngine"]


class GiraphPlusPlusEngine(BlogelBEngine):
    """Giraph++ (``G++``): block-centric execution at JVM prices."""

    key = "G++"
    display_name = "Giraph++"
    language = "Java"
    trace_model = "block-centric"  # Blogel-B's shape at JVM prices
    #: RPL011 contract: narrower than Blogel-B — the Hadoop-based
    #: loader never gathers block state to the master
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    input_format = "adj"
    uses_all_machines = False    # Hadoop mappers; master excluded
    features = MappingProxyType({
        "memory_disk": "Memory",
        "paradigm": "Block-Centric",
        "declarative": "no",
        "partitioning": "METIS (Voronoi stand-in)",
        "synchronization": "(A)synchronous",
        "fault_tolerance": "global checkpoint",
    })

    # Giraph's JVM memory model, plus a block-id per vertex
    jvm_base_bytes = 6.0 * GB
    vertex_bytes = 368.0
    edge_bytes = 60.0
    # Giraph's time model
    job_overhead_base = 8.0
    job_overhead_per_machine = 0.45
    superstep_coordination = 0.5   # ZooKeeper + Hadoop RPC per global round
    #: serial in-block execution still skips message objects, but JVM
    #: iteration is pricier than Blogel's C++ loops
    block_local_discount = 0.4

    def __init__(self) -> None:
        super().__init__(skip_hdfs_roundtrip=True, partitioner="voronoi")
        self.key = "G++"

    def _load(self, dataset, workload, cluster, result):
        """Giraph-style load: HDFS read, JVM parse, in-memory objects."""
        raw = dataset.profile.raw_size_bytes
        cluster.hdfs_read(raw)
        cluster.uniform_compute(raw * COSTS.jvm_parse_cost, system_fraction=0.3)
        cluster.shuffle(raw)

        bp = self._partition(dataset, cluster.num_workers)
        result.extras["num_blocks"] = float(bp.num_blocks)
        # the in-job METIS-like partitioning pass
        cluster.uniform_compute(
            dataset.profile.num_edges * COSTS.jvm_edge_cost * 2.0
        )

        scaled_v = dataset.profile.num_vertices
        scaled_e = dataset.profile.num_edges
        edge_factor = 2.0 if workload.needs_reverse_edges else 1.0
        skew = min(max(bp.balance_skew(), 0.05), 0.15)
        cluster.memory.allocate_even(
            cluster.num_workers * self.jvm_base_bytes, "jvm", skew=0.0
        )
        cluster.memory.allocate_even(
            scaled_v * self.vertex_bytes, "vertices", skew=skew
        )
        cluster.memory.allocate_even(
            scaled_e * self.edge_bytes * edge_factor, "edges", skew=skew
        )
        cluster.sample_memory()

    def _charge_local(self, dataset, cluster, bp, messages, active):
        """Serial in-block work at JVM rates."""
        skew = min(max(bp.balance_skew(), 0.05), 0.15)
        work = (
            dataset.scaled_edges(messages) * COSTS.jvm_edge_cost
            + dataset.scaled_vertices(active) * COSTS.jvm_vertex_cost
        ) * self.block_local_discount
        cluster.uniform_compute(work * self.scale_messages, skew=skew,
                                system_fraction=0.15)

    def _charge_global(self, dataset, cluster, bp, messages, combinable=True):
        """Cross-block exchange through Hadoop RPC + ZooKeeper barrier."""
        combine = COSTS.combine_efficiency if combinable else 1.0
        wire = (
            dataset.scaled_edges(messages) * COSTS.msg_bytes
            * (bp.cut_fraction() / max(bp.block_cut_fraction(), 1e-9))
        )
        cluster.shuffle(
            min(wire, dataset.scaled_edges(messages) * COSTS.msg_bytes)
            * combine * self.scale_messages,
            skew=min(max(bp.balance_skew(), 0.02), 0.15), local_fraction=0.0,
        )
        cluster.advance(
            (self.superstep_coordination + cluster.network.barrier_time())
            * self.scale_fixed
        )

    def _overhead(self, dataset: Dataset, cluster: Cluster,
                  result: RunResult) -> None:
        """Hadoop resource allocation/release, like Giraph's."""
        machines = cluster.spec.num_machines
        cluster.advance(
            self.job_overhead_base + self.job_overhead_per_machine * machines
        )
