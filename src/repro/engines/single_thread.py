"""Single-thread GAP-style implementations for the COST experiment (§5.13).

COST — "Configuration that Outperforms a Single Thread" — compares each
parallel system against an *optimized* single-thread implementation on
one big machine (512 GB). The paper uses the GAP Benchmark Suite:

* PageRank: ordinary power iteration (GAP's default 20 iterations);
* SSSP: direction-optimizing BFS (Beamer et al.) — switches from
  top-down frontier expansion to bottom-up parent search when the
  frontier gets large, the optimization that makes single-thread
  traversals embarrass parallel systems on power-law graphs;
* WCC: the Shiloach–Vishkin hook-and-compress algorithm.

These are real implementations (answers are checked against the
reference oracles); the simulated cost is their *measured operation
count* at paper scale on the COST machine.
"""

from __future__ import annotations

from types import MappingProxyType

from typing import Tuple

import numpy as np

from ..cluster import ClusterSpec, COST_MACHINE
from ..datasets.registry import Dataset
from ..graph.structures import Graph
from ..workloads.base import Workload
from ..workloads.pagerank import DAMPING, PageRank
from ..workloads.khop import KHop
from ..workloads.sssp import SSSP
from ..workloads.wcc import WCC
from .base import Engine, RunResult

__all__ = [
    "SingleThreadEngine",
    "direction_optimizing_bfs",
    "shiloach_vishkin_wcc",
    "gap_pagerank",
]


def gap_pagerank(graph: Graph, iterations: int = 20) -> Tuple[np.ndarray, int]:
    """(ranks, operations): plain power iteration, GAP's fixed 20 rounds."""
    n = graph.num_vertices
    ranks = np.full(n, 1.0)
    out_deg = graph.out_degrees().astype(float)
    src, dst = graph.edge_sources(), graph.edge_targets()
    ops = 0
    for _ in range(iterations):
        contrib = np.zeros(n)
        nz = out_deg > 0
        contrib[nz] = ranks[nz] / out_deg[nz]
        sums = np.zeros(n)
        np.add.at(sums, dst, contrib[src])
        ranks = DAMPING + (1.0 - DAMPING) * sums
        ops += graph.num_edges + n
    return ranks, ops


def direction_optimizing_bfs(
    graph: Graph, source: int, alpha: float = 15.0, beta: float = 18.0
) -> Tuple[np.ndarray, int]:
    """(hop distances, edges examined): Beamer's hybrid BFS.

    Top-down expands the frontier's out-edges; bottom-up scans
    *unvisited* vertices' in-edges looking for a visited parent and
    stops each scan at the first hit — far cheaper when the frontier
    covers most of the graph. Switch thresholds follow GAP (alpha/beta).
    """
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    if n == 0:
        return dist, 0
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    out_deg = graph.out_degrees()
    total_edges = graph.num_edges
    ops = 0
    level = 0
    bottom_up = False
    while frontier.size:
        level += 1
        frontier_edges = int(out_deg[frontier].sum())
        unvisited = np.isinf(dist)
        if not bottom_up and frontier_edges > total_edges / alpha:
            bottom_up = True
        elif bottom_up and frontier.size < n / beta:
            bottom_up = False

        if bottom_up:
            next_mask = np.zeros(n, dtype=bool)
            in_frontier = np.zeros(n, dtype=bool)
            in_frontier[frontier] = True
            for v in np.flatnonzero(unvisited):
                for u in graph.in_neighbors(v):
                    ops += 1
                    if in_frontier[u]:
                        dist[v] = level
                        next_mask[v] = True
                        break
            frontier = np.flatnonzero(next_mask)
        else:
            next_mask = np.zeros(n, dtype=bool)
            for v in frontier:
                nbrs = graph.out_neighbors(v)
                ops += nbrs.size
                for u in nbrs:
                    if np.isinf(dist[u]):
                        dist[u] = level
                        next_mask[u] = True
            frontier = np.flatnonzero(next_mask)
    return dist, ops


def shiloach_vishkin_wcc(graph: Graph) -> Tuple[np.ndarray, int]:
    """(component labels, operations): hook + pointer-jump to a fixpoint.

    Labels equal the minimum vertex id in each weakly connected
    component, matching the HashMin convention.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)
    src, dst = graph.edge_sources(), graph.edge_targets()
    ops = 0
    changed = True
    while changed:
        changed = False
        # Hook: point the larger root at the smaller across every edge.
        ps, pd = parent[src], parent[dst]
        ops += 2 * graph.num_edges
        lo = np.minimum(ps, pd)
        hi = np.maximum(ps, pd)
        mask = ps != pd
        if mask.any():
            # np.minimum.at resolves races deterministically
            np.minimum.at(parent, hi[mask], lo[mask])
            changed = True
        # Compress: full pointer jumping.
        while True:
            grand = parent[parent]
            ops += n
            if np.array_equal(grand, parent):
                break
            parent = grand
    return parent, ops


class SingleThreadEngine(Engine):
    """The COST baseline: one thread on a 512 GB machine."""

    key = "ST"
    display_name = "Single Thread (GAP)"
    language = "C++"
    input_format = "edge"
    trace_model = "single-thread"  # one kernel span, no supersteps
    #: RPL011 contract: the baseline touches no distributed
    #: communication primitive — local disk and compute only
    model_primitives = frozenset({
        "advance", "uniform_compute", "local_disk_io", "sample_memory",
    })
    uses_all_machines = False
    features = MappingProxyType({
        "memory_disk": "Memory",
        "paradigm": "Single-thread",
        "declarative": "no",
        "partitioning": "None",
        "synchronization": "N/A",
        "fault_tolerance": "N/A",
    })

    parse_rate_bps = 45e6        # text parsing, single thread
    op_cost = 5.0e-9             # per edge-examination (optimized C++)
    vertex_op_cost = 4.0e-9
    #: CSR + reverse CSR + work arrays, paper-scale bytes
    vertex_bytes = 56.0
    edge_bytes = 24.0

    def workers_for(self, spec: ClusterSpec) -> int:
        return 1

    def run(self, dataset: Dataset, workload: Workload,
            cluster_spec: ClusterSpec = None,
            obs=None) -> RunResult:   # type: ignore[override]
        """COST runs ignore the cluster: always the one big machine."""
        spec = ClusterSpec(num_machines=2, machine=COST_MACHINE)
        return super().run(dataset, workload, spec, obs=obs)

    def _load(self, dataset, workload, cluster, result):
        """Read and parse the text dataset on one thread."""
        raw = dataset.profile.raw_size_bytes
        cluster.local_disk_io(raw, threads=1)
        cluster.advance(raw / self.parse_rate_bps)
        needed = (
            dataset.profile.num_vertices * self.vertex_bytes
            + dataset.profile.num_edges * self.edge_bytes
        )
        cluster.memory.allocate(0, needed, "graph")
        cluster.sample_memory()

    def _execute(self, dataset, workload, cluster, result, scale):
        """Run the real optimized algorithm; charge its op count."""
        graph = self.graph_for(dataset, workload)
        state = workload.init_state(graph)
        if isinstance(workload, PageRank):
            values, ops = gap_pagerank(graph)
            iterations = 20
        elif isinstance(workload, WCC):
            labels, ops = shiloach_vishkin_wcc(graph)
            values = labels.astype(np.float64)
            iterations = 0
        elif isinstance(workload, (SSSP, KHop)):
            values, ops = direction_optimizing_bfs(graph, workload.source)
            if isinstance(workload, KHop):
                values = values.copy()
                values[values > workload.k] = np.inf
            iterations = 0
        else:
            raise KeyError(f"no single-thread implementation for {workload.name}")
        state.values = values
        state.done = True
        state.iteration = iterations

        scaled_ops = dataset.scaled_edges(ops)
        # traversal op counts also scale with the diameter ratio only in
        # per-level overhead, which is negligible single-threaded.
        with cluster.tracer.span(
            "kernel", cat=self.trace_model,
            algorithm=workload.name, ops=int(ops),
        ):
            cluster.uniform_compute(
                scaled_ops * self.op_cost
                + dataset.profile.num_vertices * self.vertex_op_cost,
                cores_per_machine=1,
            )
        result.extras["ops"] = float(ops)
        return state

    def _save(self, dataset, workload, cluster, result, state):
        nbytes = workload.result_bytes_from_state(dataset.graph, state)
        cluster.local_disk_io(nbytes * dataset.vertex_scale, write=True,
                              threads=1)
