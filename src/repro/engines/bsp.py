"""Shared superstep-loop machinery for the BSP-style engines.

Giraph, Blogel, GraphLab, Gelly, and GraphX all run the workload as a
sequence of synchronized supersteps; what differs is what each
superstep *costs*. :class:`BspExecutionMixin` owns the loop — run the
real superstep on the real graph, then let the engine charge simulated
time/memory/network for it — and applies the iteration scale factor
(see :func:`repro.engines.base.iteration_scale`) so each observed
superstep stands in for the right number of paper-scale supersteps.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..cluster import Cluster
from ..datasets.registry import Dataset
from ..graph.structures import Graph
from ..workloads.base import SuperstepStats, Workload, WorkloadState
from .base import RunResult
from .common import observed_superstep

__all__ = ["BspExecutionMixin"]


class BspExecutionMixin(abc.ABC):
    """Superstep loop + scale bookkeeping for BSP engines."""

    #: hard cap to keep buggy configurations from spinning forever
    max_supersteps: int = 200_000

    @abc.abstractmethod
    def charge_superstep(
        self,
        dataset: Dataset,
        workload: Workload,
        cluster: Cluster,
        stats: SuperstepStats,
        first: bool,
    ) -> None:
        """Charge one superstep's simulated cost (time/memory/network)."""

    #: multiplier for per-superstep *fixed* costs (barriers, sweeps,
    #: per-job overhead, invariant-data I/O): one per paper superstep
    scale_fixed: float = 1.0
    #: multiplier for *message-volume* costs. Message totals grow far
    #: slower than the superstep count when the diameter stretches (a
    #: vertex's label changes like a record process, not once per hop),
    #: so volume costs scale by sqrt of the superstep ratio.
    scale_messages: float = 1.0

    def run_superstep_loop(
        self,
        graph: Graph,
        dataset: Dataset,
        workload: Workload,
        cluster: Cluster,
        result: RunResult,
        scale: float,
        state: Optional[WorkloadState] = None,
    ) -> WorkloadState:
        """Execute the workload with paper-scale superstep charging.

        Each observed superstep stands in for ``scale`` paper
        supersteps: engines multiply their per-superstep fixed costs by
        :attr:`scale_fixed` and their message-volume costs by
        :attr:`scale_messages`. The timeout can therefore fire mid-loop,
        exactly like the paper's 24-hour TO cells.
        """
        if state is None:
            state = workload.init_state(graph)
        self.scale_fixed = scale
        self.scale_messages = scale ** 0.5
        loop_start = cluster.now
        last_checkpoint = cluster.now
        superstep_start = cluster.now
        try:
            first = True
            while not state.done:
                if state.iteration >= self.max_supersteps:
                    raise RuntimeError(
                        f"{workload.name} exceeded {self.max_supersteps} supersteps"
                    )
                superstep_start = cluster.now
                stats = workload.superstep(graph, state)
                with observed_superstep(
                    cluster, stats, model=getattr(self, "trace_model", "bsp")
                ):
                    try:
                        self.charge_superstep(
                            dataset, workload, cluster, stats, first
                        )
                    finally:
                        # progress survives failures: Table 6 reports
                        # per-iteration times for runs that later TO/OOMed.
                        # Numerator is loop time only (the superstep spans'
                        # interval); denominator is paper supersteps —
                        # observed iterations x the diameter scale each
                        # observed superstep stands in for.
                        result.iterations = state.iteration
                        if cluster.now > loop_start:
                            result.per_iteration_time = (
                                (cluster.now - loop_start)
                                / (state.iteration * scale)
                            )
                first = False
                last_checkpoint = self._fault_round(
                    dataset, workload, cluster, result, state,
                    loop_start, last_checkpoint, superstep_start,
                )
        finally:
            self.scale_fixed = 1.0
            self.scale_messages = 1.0
        return state

    # -- failure injection (Table 1's fault-tolerance column) --------------

    def _fault_round(
        self, dataset, workload, cluster, result, state,
        loop_start, last_checkpoint, superstep_start,
    ) -> float:
        """Write checkpoints and recover from injected failures.

        Returns the (possibly updated) time of the last checkpoint.
        Does nothing when the run has no :class:`FaultPlan` — the
        paper's failure-free experiments are untouched.
        """
        plan = cluster.spec.fault_plan
        if plan is None:
            return last_checkpoint

        tolerance = getattr(self, "fault_tolerance", "checkpoint")
        state_bytes = dataset.profile.num_vertices * 16.0
        if (
            tolerance == "checkpoint"
            and state.iteration % plan.checkpoint_interval == 0
        ):
            cluster.hdfs_write(state_bytes)
            last_checkpoint = cluster.now
            result.extras["checkpoints"] = result.extras.get("checkpoints", 0) + 1

        for _fail_time in plan.pop_due(cluster.now):
            result.extras["recoveries"] = result.extras.get("recoveries", 0) + 1
            if tolerance == "checkpoint":
                # reload partitions + redo everything since the checkpoint
                cluster.hdfs_read(dataset.profile.raw_size_bytes + state_bytes)
                cluster.advance(max(0.0, cluster.now - last_checkpoint))
            elif tolerance == "reexecution":
                # only the dead machine's tasks of this iteration re-run
                cluster.advance(max(0.0, cluster.now - superstep_start))
            else:
                # no fault tolerance: the query aborts and restarts
                cluster.advance(max(0.0, cluster.now - loop_start))
        return last_checkpoint
