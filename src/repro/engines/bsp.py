"""Shared superstep-loop machinery for the BSP-style engines.

Giraph, Blogel, GraphLab, Gelly, and GraphX all run the workload as a
sequence of synchronized supersteps; what differs is what each
superstep *costs*. :class:`BspExecutionMixin` owns the loop — run the
real superstep on the real graph, then let the engine charge simulated
time/memory/network for it — and applies the iteration scale factor
(see :func:`repro.engines.base.iteration_scale`) so each observed
superstep stands in for the right number of paper-scale supersteps.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..chaos.events import ChaosEvent
from ..chaos.runtime import ChaosRuntime
from ..cluster import Cluster
from ..datasets.registry import Dataset
from ..graph.structures import Graph
from ..workloads.base import SuperstepStats, Workload, WorkloadState
from .base import RecoveryContext, RecoveryModel, RunResult
from .common import observed_superstep

__all__ = ["BspExecutionMixin"]


class BspExecutionMixin(abc.ABC):
    """Superstep loop + scale bookkeeping for BSP engines."""

    #: hard cap to keep buggy configurations from spinning forever
    max_supersteps: int = 200_000

    @abc.abstractmethod
    def charge_superstep(
        self,
        dataset: Dataset,
        workload: Workload,
        cluster: Cluster,
        stats: SuperstepStats,
        first: bool,
    ) -> None:
        """Charge one superstep's simulated cost (time/memory/network)."""

    #: multiplier for per-superstep *fixed* costs (barriers, sweeps,
    #: per-job overhead, invariant-data I/O): one per paper superstep
    scale_fixed: float = 1.0
    #: multiplier for *message-volume* costs. Message totals grow far
    #: slower than the superstep count when the diameter stretches (a
    #: vertex's label changes like a record process, not once per hop),
    #: so volume costs scale by sqrt of the superstep ratio.
    scale_messages: float = 1.0

    def run_superstep_loop(
        self,
        graph: Graph,
        dataset: Dataset,
        workload: Workload,
        cluster: Cluster,
        result: RunResult,
        scale: float,
        state: Optional[WorkloadState] = None,
    ) -> WorkloadState:
        """Execute the workload with paper-scale superstep charging.

        Each observed superstep stands in for ``scale`` paper
        supersteps: engines multiply their per-superstep fixed costs by
        :attr:`scale_fixed` and their message-volume costs by
        :attr:`scale_messages`. The timeout can therefore fire mid-loop,
        exactly like the paper's 24-hour TO cells.
        """
        if state is None:
            state = workload.init_state(graph)
        self.scale_fixed = scale
        self.scale_messages = scale ** 0.5
        loop_start = cluster.now
        chaos = cluster.chaos
        recovery: Optional[RecoveryModel] = None
        ctx: Optional[RecoveryContext] = None
        if chaos is not None:
            recovery = self.recovery_model(chaos.plan)  # type: ignore[attr-defined]
            ctx = RecoveryContext(
                cluster=cluster,
                dataset=dataset,
                result=result,
                loop_start=loop_start,
                state_bytes=dataset.profile.num_vertices * 16.0,
            )
        trace_model = getattr(self, "trace_model", "bsp")
        try:
            first = True
            while not state.done:
                if state.iteration >= self.max_supersteps:
                    raise RuntimeError(
                        f"{workload.name} exceeded {self.max_supersteps} supersteps"
                    )
                superstep_start = cluster.now
                shuffled_before = (
                    cluster.metrics.counter("bytes_shuffled").value
                    if chaos is not None else 0.0
                )
                stats = workload.superstep(graph, state)
                with observed_superstep(cluster, stats, model=trace_model):
                    try:
                        self.charge_superstep(
                            dataset, workload, cluster, stats, first
                        )
                    finally:
                        # progress survives failures: Table 6 reports
                        # per-iteration times for runs that later TO/OOMed.
                        # Numerator is loop time only (the superstep spans'
                        # interval); denominator is paper supersteps —
                        # observed iterations x the diameter scale each
                        # observed superstep stands in for.
                        result.iterations = state.iteration
                        if cluster.now > loop_start:
                            result.per_iteration_time = (
                                (cluster.now - loop_start)
                                / (state.iteration * scale)
                            )
                first = False
                if chaos is not None:
                    assert ctx is not None and recovery is not None
                    ctx.iteration = state.iteration
                    ctx.superstep_start = superstep_start
                    ctx.superstep_shuffled = (
                        cluster.metrics.counter("bytes_shuffled").value
                        - shuffled_before
                    )
                    self._chaos_round(cluster, chaos, recovery, ctx)
        finally:
            self.scale_fixed = 1.0
            self.scale_messages = 1.0
        return state

    # -- fault injection (Table 1's fault-tolerance column) -----------------

    def _chaos_round(
        self,
        cluster: Cluster,
        chaos: ChaosRuntime,
        recovery: RecoveryModel,
        ctx: RecoveryContext,
    ) -> None:
        """One between-supersteps chaos round.

        Ticks down effects that were active during the superstep just
        run, writes a checkpoint if one is due, fires every event whose
        time has come (a zero-duration ``fault`` marker span each, plus
        a ``recover`` span wherever recovery time is charged), and syncs
        the network-degradation factor for the next superstep. Absent a
        plan the loop never calls this — the paper's failure-free
        experiments are untouched.
        """
        chaos.end_superstep()
        recovery.maybe_checkpoint(ctx)
        for index, event in chaos.pop_due_superstep(ctx.iteration):
            machine = chaos.machine_for(index)
            cluster.metrics.counter("faults_injected").inc()
            with cluster.tracer.span(
                "fault", cat="chaos", kind=event.kind, machine=machine,
                scheduled=event.at_superstep, iteration=ctx.iteration,
            ):
                pass
            self._rescale(cluster, recovery, ctx, event, machine)
        for index, event in chaos.pop_due(cluster.now):
            machine = chaos.machine_for(index)
            cluster.metrics.counter("faults_injected").inc()
            with cluster.tracer.span(
                "fault", cat="chaos", kind=event.kind, machine=machine,
                scheduled=event.time, iteration=ctx.iteration,
            ):
                pass
            if event.kind == "straggler":
                chaos.add_straggler(machine, event.slowdown, event.supersteps)
            elif event.kind == "netdegrade":
                chaos.add_degradation(event.factor, event.supersteps)
            elif event.kind == "ckptcorrupt":
                recovery.corrupt_checkpoint(ctx, event)
            else:
                self._recover(cluster, chaos, recovery, ctx, event, machine)
        cluster.network.degradation = chaos.bandwidth_factor()

    def _rescale(
        self,
        cluster: Cluster,
        recovery: RecoveryModel,
        ctx: RecoveryContext,
        event: ChaosEvent,
        machine: int,
    ) -> None:
        """Resize the cluster on a superstep boundary, billed per model.

        The recovery model charges its repartitioning bill on the *old*
        cluster (under a ``recover`` span, so the time lands in the cost
        record's priced ``recovery_seconds``), then the cluster itself
        rescales and the next superstep runs on the new worker count.
        Answers are untouched by construction — supersteps compute on
        the real graph regardless of cluster size.
        """
        old_workers = cluster.num_workers
        if event.kind == "scaleout":
            new_workers = old_workers + event.n_machines
        else:
            new_workers = max(1, old_workers - event.machines)
        started = cluster.now
        span = cluster.tracer.start(
            "recover", cat="chaos", kind=event.kind, model=recovery.name,
            machine=machine, iteration=ctx.iteration,
            workers_before=old_workers, workers_after=new_workers,
        )
        try:
            if new_workers != old_workers:
                recovery.rescale(ctx, event, old_workers, new_workers)
                cluster.rescale(new_workers)
        finally:
            seconds = cluster.now - started
            cluster.metrics.counter("recovery_seconds").inc(seconds)
            cluster.metrics.counter("rescales").inc()
            ctx.result.extras["recoveries"] = (
                ctx.result.extras.get("recoveries", 0) + 1
            )
            cluster.tracer.end(span, seconds=seconds)

    def _recover(
        self,
        cluster: Cluster,
        chaos: ChaosRuntime,
        recovery: RecoveryModel,
        ctx: RecoveryContext,
        event: ChaosEvent,
        machine: int,
    ) -> None:
        """Charge one event's recovery under a ``recover`` span."""
        started = cluster.now
        span = cluster.tracer.start(
            "recover", cat="chaos", kind=event.kind, model=recovery.name,
            machine=machine, iteration=ctx.iteration,
        )
        try:
            if event.kind == "crash":
                recovery.recover_crash(ctx, event, machine)
            elif event.kind == "netsplit":
                recovery.recover_partition(ctx, event, machine)
            elif event.kind == "msgloss":
                # at-least-once redelivery: the lost share of the last
                # superstep's messages crosses the wire again
                lost = ctx.superstep_shuffled * event.fraction
                if lost > 0.0:
                    cluster.shuffle(lost)
                cluster.metrics.counter("bytes_redelivered").inc(lost)
            elif event.kind == "blockloss":
                # re-read the affected blocks' surviving replicas, then
                # write the lost replica back out to local disk
                lost = ctx.dataset.profile.raw_size_bytes * event.fraction
                cluster.hdfs_read(lost)
                cluster.local_disk_io(lost, write=True)
                cluster.metrics.counter("bytes_rereplicated").inc(lost)
            else:
                raise ValueError(f"unroutable chaos event kind {event.kind!r}")
        finally:
            seconds = cluster.now - started
            cluster.metrics.counter("recovery_seconds").inc(seconds)
            ctx.result.extras["recoveries"] = (
                ctx.result.extras.get("recoveries", 0) + 1
            )
            cluster.tracer.end(span, seconds=seconds)
