"""Blogel: the paper's overall winner (§2.1.3, §2.3, §5.1).

**Blogel-V** is plain vertex-centric BSP in C++/MPI: tiny memory
footprint (it is the only system that finishes WRN at 16 machines and
ClueWeb at all, §5.9), no framework job overhead, but an MPI all-to-all
per superstep whose cost grows with the rank count.

**Blogel-B** partitions with the Graph Voronoi Diagram and runs a
serial algorithm inside each block, synchronizing blocks with BSP:

* Execution time is the shortest for reachability workloads (few global
  supersteps), but the *end-to-end* time pays for the GVD partitioning
  phase plus an HDFS write/read round-trip between partitioning and
  execution — removing that round-trip cuts ~50 % of response time
  (Figure 3), exposed via ``skip_hdfs_roundtrip``.
* PageRank uses the awkward two-step algorithm of §3.1.2 (block-level
  PageRank for initialization, then vertex-level PageRank), implemented
  for real here — and, as in the paper, the initialization does not pay
  off.
* The Voronoi master-side aggregation overflows MPI's 32-bit offsets
  when the vertex count is large enough (WRN, ClueWeb), killing the run
  with the ``MPI`` failure cell (§5.1).
"""

from __future__ import annotations

from types import MappingProxyType

from functools import lru_cache
from typing import Tuple

import numpy as np

from ..cluster import GB, MPIOverflowError
from ..datasets.registry import Dataset
from ..graph.structures import Graph
from ..partitioning.voronoi import INT32_MAX, BlockPartition
from ..workloads.base import WorkloadState
from ..workloads.pagerank import DAMPING, PageRank
from ..workloads.khop import KHop
from .base import Engine
from .bsp import BspExecutionMixin
from .common import COSTS, cached_block_partition, cached_vertex_partition

__all__ = ["BlogelVEngine", "BlogelBEngine"]


class BlogelVEngine(BspExecutionMixin, Engine):
    """Blogel vertex-centric (``BV``) — best end-to-end performance."""

    key = "BV"
    display_name = "Blogel-V"
    language = "C++"
    trace_model = "bsp"           # vertex-centric supersteps over MPI
    #: RPL011 contract: every primitive reachable from run() (see
    #: MODEL_PRIMITIVES in engines/base.py)
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    input_format = "adj-long"
    uses_all_machines = True
    features = MappingProxyType({
        "memory_disk": "Memory",
        "paradigm": "Vertex-Centric",
        "declarative": "no",
        "partitioning": "Random",
        "synchronization": "Synchronous",
        "fault_tolerance": "global checkpoint",
    })

    # memory model: compact C++ structs
    vertex_bytes = 100.0
    edge_bytes = 16.0
    framework_bytes = 0.3 * GB

    # time model
    mpi_superstep_base = 0.05     # all-to-all flush; grows ~sqrt(ranks)
    adj_long_size_factor = 1.12   # adj-long carries degree fields (§4.3)

    def _partition(self, dataset: Dataset, num_workers: int):
        return cached_vertex_partition(dataset.name, dataset.size, num_workers)

    def _load(self, dataset, workload, cluster, result):
        """Chunk-parallel HDFS read, hash distribute, build structs."""
        raw = dataset.profile.raw_size_bytes * self.adj_long_size_factor
        cluster.hdfs_read(raw)
        cluster.uniform_compute(raw * COSTS.cpp_parse_cost)
        cluster.shuffle(raw)

        partition = self._partition(dataset, cluster.num_workers)
        skew = max(partition.balance_skew(), 0.03)
        edge_factor = 2.0 if workload.needs_reverse_edges else 1.0
        cluster.memory.allocate_even(
            cluster.num_workers * self.framework_bytes, "framework", skew=0.0
        )
        cluster.memory.allocate_even(
            dataset.profile.num_vertices * self.vertex_bytes, "vertices", skew=skew
        )
        cluster.memory.allocate_even(
            dataset.profile.num_edges * self.edge_bytes * edge_factor,
            "edges", skew=skew,
        )
        cluster.uniform_compute(dataset.profile.num_edges * 1.0e-8)
        cluster.sample_memory()

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """Compute + message exchange + MPI barrier."""
        partition = self._partition(dataset, cluster.num_workers)
        skew = max(partition.balance_skew(), 0.02)
        active = dataset.scaled_vertices(stats.active_vertices)
        messages = dataset.scaled_edges(stats.messages)

        combinable = workload.combinable and not (first and workload.needs_reverse_edges)
        buffer_bytes = (
            dataset.profile.num_vertices * COSTS.msg_bytes
            if combinable else messages * COSTS.msg_bytes
        )
        cluster.memory.allocate_even(buffer_bytes, "messages", skew=0.05)
        cluster.sample_memory()

        work = (messages * COSTS.cpp_edge_cost + active * COSTS.cpp_vertex_cost)
        cluster.uniform_compute(work * self.scale_messages, skew=skew)
        combine = COSTS.combine_efficiency if combinable else 1.0
        cluster.shuffle(messages * COSTS.msg_bytes * partition.cut_fraction()
                        * combine * self.scale_messages,
                        skew=skew, local_fraction=0.0)
        cluster.advance(
            (self.mpi_superstep_base * cluster.num_workers ** 0.5
             + cluster.network.barrier_time()) * self.scale_fixed
        )
        cluster.memory.free_label("messages")

    def _execute(self, dataset, workload, cluster, result, scale):
        return self.run_superstep_loop(
            self.graph_for(dataset, workload), dataset, workload, cluster,
            result, scale,
        )


@lru_cache(maxsize=None)
def _cached_property_partition(
    name: str, size: str, partitioner: str, num_parts: int
) -> BlockPartition:
    """Dataset-specific block partitions (§2.3), memoized."""
    from ..datasets.registry import load_dataset
    from ..partitioning.dataset_specific import (
        coordinate_partition,
        url_prefix_partition,
    )

    dataset = load_dataset(name, size)
    meta = dataset.meta()
    if partitioner == "coordinate":
        if "grid_shape" not in meta:
            raise ValueError(f"{name} has no 2-D coordinates")
        return coordinate_partition(
            dataset.graph, num_parts, grid_shape=meta["grid_shape"]
        )
    if "pages_per_host" not in meta:
        raise ValueError(f"{name} has no URL structure")
    return url_prefix_partition(
        dataset.graph, num_parts, pages_per_host=meta["pages_per_host"]
    )


@lru_cache(maxsize=None)
def _split_by_block(
    name: str, size: str, num_parts: int, partitioner: str = "voronoi"
) -> Tuple[Graph, Graph]:
    """(intra-block subgraph, cross-block subgraph) for a dataset."""
    from ..datasets.registry import load_dataset

    graph = load_dataset(name, size).graph
    if partitioner == "voronoi":
        bp = cached_block_partition(name, size, num_parts)
    else:
        bp = _cached_property_partition(name, size, partitioner, num_parts)
    src_b = bp.block_of[graph.edge_sources()]
    dst_b = bp.block_of[graph.edge_targets()]
    intra = graph.subgraph_edges(src_b == dst_b)
    cross = graph.subgraph_edges(src_b != dst_b)
    return intra, cross


def _block_pagerank(bp: BlockPartition, max_iters: int = 50) -> np.ndarray:
    """Step 1 of §3.1.2: PageRank on the weighted graph of blocks."""
    pairs, weights = bp.block_graph_edges()
    n_blocks = bp.num_blocks
    ranks = np.ones(n_blocks)
    if len(pairs) == 0 or n_blocks == 0:
        return ranks
    out_weight = np.zeros(n_blocks)
    np.add.at(out_weight, pairs[:, 0], weights.astype(float))
    for _ in range(max_iters):
        contrib = np.zeros(n_blocks)
        nz = out_weight > 0
        contrib[nz] = ranks[nz] / out_weight[nz]
        sums = np.zeros(n_blocks)
        np.add.at(sums, pairs[:, 1], contrib[pairs[:, 0]] * weights)
        new_ranks = DAMPING + (1.0 - DAMPING) * sums
        if np.abs(new_ranks - ranks).max() < 1e-6:
            ranks = new_ranks
            break
        ranks = new_ranks
    return ranks


class BlogelBEngine(BspExecutionMixin, Engine):
    """Blogel block-centric (``BB``) — shortest execution time (§5.1)."""

    key = "BB"
    display_name = "Blogel-B"
    language = "C++"
    trace_model = "block-centric"  # serial-in-block + cross-block rounds
    #: RPL011 contract: Blogel-B additionally gathers Voronoi block
    #: state to the master during partitioned loading
    model_primitives = frozenset({
        "advance", "uniform_compute", "shuffle", "gather_to_master",
        "hdfs_read", "hdfs_write", "sample_memory",
    })
    input_format = "adj-long"
    uses_all_machines = True
    features = MappingProxyType({
        "memory_disk": "Memory",
        "paradigm": "Block-Centric",
        "declarative": "no",
        "partitioning": "Voronoi",
        "synchronization": "Synchronous",
        "fault_tolerance": "global checkpoint",
    })

    vertex_bytes = 110.0     # vertex + block id
    edge_bytes = 16.0
    framework_bytes = 0.3 * GB
    mpi_superstep_base = 0.05     # all-to-all flush; grows ~sqrt(ranks)
    adj_long_size_factor = 1.12
    #: serial in-block algorithms skip message materialization: cheaper
    #: per edge than message-passing execution (the block-centric win)
    block_local_discount = 0.4
    #: partitioned data re-serialized with block ids (HDFS round-trip)
    partitioned_size_factor = 1.3
    #: bytes per item in the master-side Voronoi aggregation (§5.1)
    voronoi_aggregate_item_bytes = 8

    def __init__(
        self,
        skip_hdfs_roundtrip: bool = False,
        partitioner: str = "voronoi",
    ) -> None:
        # The Figure 3 modification: keep partitions in memory instead of
        # writing them to HDFS and reading them back.
        if partitioner not in ("voronoi", "coordinate", "url-prefix"):
            raise ValueError(f"unknown partitioner {partitioner!r}")
        self.skip_hdfs_roundtrip = skip_hdfs_roundtrip
        self.partitioner = partitioner
        if partitioner == "coordinate":
            self.key = "BB-coord"
        elif partitioner == "url-prefix":
            self.key = "BB-url"
        if skip_hdfs_roundtrip:
            self.key = self.key.rstrip("*") + "*"

    def _partition(self, dataset: Dataset, num_workers: int) -> BlockPartition:
        if self.partitioner == "voronoi":
            return cached_block_partition(dataset.name, dataset.size, num_workers)
        return _cached_property_partition(
            dataset.name, dataset.size, self.partitioner, num_workers
        )

    def _load(self, dataset, workload, cluster, result):
        """Read, run GVD partitioning, optionally round-trip through HDFS."""
        raw = dataset.profile.raw_size_bytes * self.adj_long_size_factor
        cluster.hdfs_read(raw)
        cluster.uniform_compute(raw * COSTS.cpp_parse_cost)
        cluster.shuffle(raw)

        if self.partitioner == "voronoi":
            # The MPI int-overflow: each round the master aggregates block
            # assignment data for every vertex; byte offsets are 32-bit.
            aggregate_bytes = (
                dataset.profile.num_vertices * self.voronoi_aggregate_item_bytes
            )
            if aggregate_bytes > INT32_MAX:
                raise MPIOverflowError(
                    f"Voronoi aggregation of {aggregate_bytes / 1e9:.1f} GB "
                    "overflows MPI's 32-bit offsets",
                    # the gather lands on the master rank
                    machine=0,
                )

        bp = self._partition(dataset, cluster.num_workers)
        result.extras["num_blocks"] = float(bp.num_blocks)
        if self.partitioner == "voronoi":
            # GVD: each sampling round is a multi-source BFS over the
            # graph plus a master-side aggregation.
            per_round = dataset.profile.num_edges * COSTS.cpp_edge_cost
            for _ in range(bp.rounds):
                cluster.uniform_compute(per_round)
                cluster.gather_to_master(
                    dataset.profile.num_vertices
                    * self.voronoi_aggregate_item_bytes
                    / max(1, cluster.num_workers)
                )
        else:
            # Property-based block assignment is a local pass per vertex:
            # no sampling rounds, no master aggregation (§2.3's techniques).
            cluster.uniform_compute(
                dataset.profile.num_vertices * COSTS.cpp_vertex_cost
            )
        cluster.shuffle(raw)   # move vertices to their block's machine

        if not self.skip_hdfs_roundtrip:
            # Stock Blogel-B persists the partitioned dataset to HDFS and
            # reads it back before execution (§5.1): one writer/reader
            # thread per worker, plus a full re-parse on the way in.
            partitioned = raw * self.partitioned_size_factor
            cluster.hdfs_write(partitioned, writer_threads=cluster.num_workers)
            cluster.hdfs_read(partitioned, reader_threads=cluster.num_workers)
            cluster.uniform_compute(partitioned * COSTS.cpp_parse_cost)

        skew = min(max(bp.balance_skew(), 0.05), 0.15)
        edge_factor = 2.0 if workload.needs_reverse_edges else 1.0
        cluster.memory.allocate_even(
            cluster.num_workers * self.framework_bytes, "framework", skew=0.0
        )
        cluster.memory.allocate_even(
            dataset.profile.num_vertices * self.vertex_bytes, "vertices", skew=skew
        )
        cluster.memory.allocate_even(
            dataset.profile.num_edges * self.edge_bytes * edge_factor,
            "edges", skew=skew,
        )
        cluster.sample_memory()

    # -- cost charging -------------------------------------------------------

    def _charge_local(self, dataset, cluster, bp, messages, active):
        """In-block work: serial (discounted) or plain vertex-centric.

        §3.1.2's PageRank step 2 runs *vertex-centric* computation over
        the whole graph — message passing at full price — while the
        reachability workloads run serial algorithms inside each block.
        """
        skew = min(max(bp.balance_skew(), 0.05), 0.15)
        discount = (
            1.0 if getattr(self, "_vertex_centric_mode", False)
            else self.block_local_discount
        )
        work = (
            dataset.scaled_edges(messages) * COSTS.cpp_edge_cost
            + dataset.scaled_vertices(active) * COSTS.cpp_vertex_cost
        ) * discount
        cluster.uniform_compute(work * self.scale_messages, skew=skew)

    def _charge_global(self, dataset, cluster, bp, messages, combinable=True):
        """Cross-block exchange + BSP barrier."""
        combine = COSTS.combine_efficiency if combinable else 1.0
        wire = (
            dataset.scaled_edges(messages) * COSTS.msg_bytes
            * (bp.cut_fraction() / max(bp.block_cut_fraction(), 1e-9))
        )
        cluster.shuffle(min(wire, dataset.scaled_edges(messages) * COSTS.msg_bytes)
                        * combine * self.scale_messages,
                        skew=min(max(bp.balance_skew(), 0.02), 0.15),
                        local_fraction=0.0)
        cluster.advance(
            (self.mpi_superstep_base * cluster.num_workers ** 0.5
             + cluster.network.barrier_time()) * self.scale_fixed
        )

    def charge_superstep(self, dataset, workload, cluster, stats, first):
        """Per-superstep charging for K-hop and PageRank step 2.

        Compute covers *every* message (the receiving block processes
        cross-block messages too); only the cross-block share hits the
        network.
        """
        bp = self._partition(dataset, cluster.num_workers)
        self._charge_local(
            dataset, cluster, bp, stats.messages, stats.active_vertices
        )
        combinable = workload.combinable and not (first and workload.needs_reverse_edges)
        self._charge_global(dataset, cluster, bp,
                            stats.messages * bp.block_cut_fraction(),
                            combinable=combinable)

    # -- execution ------------------------------------------------------------

    def _execute(self, dataset, workload, cluster, result, scale):
        graph = self.graph_for(dataset, workload)
        bp = self._partition(dataset, cluster.num_workers)
        if isinstance(workload, PageRank):
            return self._execute_pagerank(graph, dataset, workload, cluster,
                                          result, bp)
        from ..workloads.base import WorkloadKind

        if isinstance(workload, KHop) or workload.kind is WorkloadKind.ANALYTIC:
            # Hop-bounded queries and iteration-capped analytics run the
            # plain loop with block-aware costs: the serial in-block
            # fixpoint would not terminate for oscillating propagations.
            return self.run_superstep_loop(graph, dataset, workload, cluster,
                                           result, scale)
        return self._execute_block_bsp(graph, dataset, workload, cluster,
                                       result, scale, bp)

    def _execute_block_bsp(
        self, graph, dataset, workload, cluster, result, scale, bp
    ) -> WorkloadState:
        """Serial-within-block, BSP-across-blocks (WCC, SSSP)."""
        intra, cross = _split_by_block(dataset.name, dataset.size,
                                       cluster.num_workers, self.partitioner)
        state = workload.init_state(graph)
        self.scale_fixed = scale
        self.scale_messages = scale ** 0.5
        pending = state.active.copy()
        outer_rounds = 0
        metrics = cluster.metrics
        while True:
            # One outer round is this model's superstep: an in-block
            # fixpoint then one cross-block exchange — traced as a
            # superstep span with block-local/block-global children so
            # the block-centric shape is visible next to plain BSP.
            round_start = cluster.now
            shuffled_before = metrics.counter("bytes_shuffled").value
            with cluster.tracer.span(
                "superstep", cat=self.trace_model, iteration=outer_rounds + 1,
            ) as round_span:
                # Local phase: run to an in-block fixpoint.
                state.active = pending.copy()
                touched = pending.copy()
                state.done = False
                local_steps = 0
                round_messages = 0
                with cluster.tracer.span("block-local", cat=self.trace_model):
                    while True:
                        stats = workload.superstep(intra, state)
                        touched |= state.active
                        local_steps += 1
                        round_messages += int(stats.messages)
                        self._charge_local(dataset, cluster, bp, stats.messages,
                                           stats.active_vertices)
                        if stats.updates == 0:
                            break
                # Global phase: one cross-block exchange from everything
                # that changed, charged `scale` times (block-graph hops
                # scale with the dataset's diameter like vertex hops do).
                state.active = touched
                state.done = False
                with cluster.tracer.span("block-global", cat=self.trace_model):
                    stats = workload.superstep(cross, state)
                    self._charge_global(dataset, cluster, bp, stats.messages)
                outer_rounds += 1
                round_messages += int(stats.messages)
                round_span.attrs.update({
                    "active_vertices": int(touched.sum()),
                    "messages": round_messages,
                    "updates": int(stats.updates),
                    "local_steps": local_steps,
                    "bytes_shuffled": (
                        metrics.counter("bytes_shuffled").value - shuffled_before
                    ),
                    "peak_memory_bytes": max(
                        (cluster.memory.peak_bytes(m)
                         for m in range(cluster.num_workers)),
                        default=0.0,
                    ),
                })
                metrics.counter("supersteps").inc()
                metrics.counter("messages_sent").inc(round_messages)
                metrics.histogram("superstep_seconds").observe(
                    cluster.now - round_start
                )
            pending = state.active.copy()
            if stats.updates == 0:
                break
        state.done = True
        state.iteration = outer_rounds
        self.scale_fixed = 1.0
        self.scale_messages = 1.0
        result.extras["outer_rounds"] = float(outer_rounds)
        return state

    def _execute_pagerank(
        self, graph, dataset, workload, cluster, result, bp
    ) -> WorkloadState:
        """§3.1.2's two-step PageRank, executed for real.

        Step 1 computes block-level PageRank (cheap, local); step 2
        seeds every vertex with ``pr(v) * pr(block)`` and runs ordinary
        vertex-centric PageRank to the workload's stopping criterion.
        """
        block_ranks = _block_pagerank(bp)
        # Step-1 cost: a few dozen iterations over the tiny block graph
        # plus one local PageRank pass inside each block.
        cluster.uniform_compute(
            dataset.profile.num_edges * COSTS.cpp_edge_cost * 3.0
        )
        cluster.advance(self.mpi_superstep_base * cluster.num_workers ** 0.5)

        state = workload.init_state(graph)
        norm = block_ranks.mean() if block_ranks.size else 1.0
        state.values = state.values * block_ranks[bp.block_of] / max(norm, 1e-12)
        self._vertex_centric_mode = True
        try:
            state = self.run_superstep_loop(
                graph, dataset, workload, cluster, result, scale=1.0,
                state=state,
            )
        finally:
            self._vertex_centric_mode = False
        return state
