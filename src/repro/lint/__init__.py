"""repro.lint — domain-aware static analysis for the simulation's contracts.

The paper's conclusions only hold if every engine faithfully executes
its computation model; in this codebase that faithfulness is a set of
code contracts (all time flows through ``cluster.advance``, supersteps
are pure over the ``Graph``, randomness is seeded, only
:class:`SimulatedFailure` signals run failure, ...). This package
machine-checks those contracts with an AST-based analyzer built on the
stdlib ``ast`` module — no third-party dependencies.

Usage::

    python -m repro.lint src/              # lint a tree, exit 1 on findings
    python -m repro.lint --format json src # machine-readable report
    repro lint                             # same, via the main CLI

Each rule has a stable code (RPL001..RPL010); a finding on a line is
suppressed by a trailing ``# noqa: RPLxxx`` comment (bare ``# noqa``
suppresses every code on that line).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from .rules import ALL_RULES, RULES_BY_CODE, Rule, Violation
from .source import SourceModule

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "Rule",
    "Violation",
    "SourceModule",
    "lint_source",
    "lint_module",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "select_rules",
    "expand_selectors",
    "PARSE_ERROR_CODE",
]

#: pseudo-code reported when a file cannot be parsed at all
PARSE_ERROR_CODE = "RPL000"


def select_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Resolve a list of rule codes into rule instances (all by default)."""
    if select is None:
        return list(ALL_RULES)
    rules = []
    for code in select:
        code = code.strip().upper()
        if code not in RULES_BY_CODE:
            raise KeyError(
                f"unknown rule code {code!r}; expected one of "
                f"{sorted(RULES_BY_CODE)}"
            )
        rules.append(RULES_BY_CODE[code])
    return rules


def expand_selectors(
    selectors: Iterable[str], codes: Iterable[str]
) -> List[str]:
    """Resolve ``--select``/``--ignore`` selectors against known codes.

    Two forms, checked in order:

    * **exact** — a selector that *is* a known code selects only that
      code: ``RPL016`` selects RPL016 alone, never anything it happens
      to prefix;
    * **prefix** — anything else matches ruff-style by prefix:
      ``RPL01`` selects every RPL01x rule (ten codes once the deep pass
      reaches RPL019), ``RPL`` selects everything.

    Returns the sorted matching subset of ``codes``; raises KeyError for
    a selector that matches nothing (the CLI turns that into exit 2).
    """
    available = sorted(set(codes))
    matched = set()
    for selector in selectors:
        prefix = selector.strip().upper()
        if not prefix:
            continue
        if prefix in available:
            matched.add(prefix)
            continue
        hits = [code for code in available if code.startswith(prefix)]
        if not hits:
            raise KeyError(
                f"no rule code matches selector {prefix!r}; available: "
                f"{available}"
            )
        matched.update(hits)
    return sorted(matched)


def lint_source(
    text: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; returns sorted, noqa-filtered violations."""
    if rules is None:
        rules = ALL_RULES
    try:
        module = SourceModule.parse(text, path=path)
    except SyntaxError as exc:
        return [
            Violation(
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    except ValueError as exc:
        # python 3.9 raises bare ValueError for e.g. null bytes
        return [
            Violation(
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc}",
                path=path,
                line=1,
                col=0,
            )
        ]
    return lint_module(module, rules)


def lint_module(
    module: SourceModule, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Run shallow rules over an already-parsed module (noqa-filtered)."""
    if rules is None:
        rules = ALL_RULES
    violations = []
    for rule in rules:
        for violation in rule.check(module):
            if not module.suppressed(violation.code, violation.line):
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def lint_file(path: str, rules: Optional[Sequence[Rule]] = None) -> List[Violation]:
    """Lint one file on disk.

    A file that is not valid UTF-8 is a diagnostic (RPL000), not a
    traceback — the CLI must keep walking the rest of the tree.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except UnicodeDecodeError as exc:
        return [
            Violation(
                code=PARSE_ERROR_CODE,
                message=f"could not decode file as UTF-8: {exc.reason}",
                path=path,
                line=1,
                col=0,
            )
        ]
    return lint_source(text, path=path, rules=rules)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            found.append(path)
    return found


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Lint every Python file under ``paths`` (files or directories)."""
    violations = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, rules=rules))
    return violations
