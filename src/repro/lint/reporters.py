"""Violation reporters: flake8-style text, machine JSON, GitHub annotations."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

from .rules import RULES_BY_CODE, Violation

__all__ = [
    "render_text",
    "render_json",
    "render_github",
    "render_rule_list",
    "rule_for",
]


def _all_rules_by_code() -> Dict[str, object]:
    """Shallow and deep registries merged (import kept local: the deep
    package imports rule helpers from this package's siblings)."""
    from .deep import DEEP_RULES_BY_CODE

    merged: Dict[str, object] = dict(RULES_BY_CODE)
    merged.update(DEEP_RULES_BY_CODE)
    return merged


def rule_for(code: str) -> Optional[object]:
    """The shallow or deep rule instance behind a code, if any."""
    return _all_rules_by_code().get(code)


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """One line per finding plus a per-code summary."""
    lines: List[str] = [v.format() for v in violations]
    if violations:
        counts = Counter(v.code for v in violations)
        lines.append("")
        for code in sorted(counts):
            rule = rule_for(code)
            label = rule.name if rule else "parse-error"
            lines.append(f"{code} ({label}): {counts[code]}")
        lines.append(
            f"{len(violations)} finding(s) in {files_checked} file(s)"
        )
    else:
        lines.append(f"{files_checked} file(s) clean")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Stable JSON document for tooling."""
    payload = {
        "files_checked": files_checked,
        "count": len(violations),
        "violations": [
            {
                "code": v.code,
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "col": v.col + 1,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_annotation(text: str) -> str:
    """GitHub workflow-command escaping for the message part."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(violations: Sequence[Violation], files_checked: int) -> str:
    """``::error`` workflow commands — inline annotations on the PR diff."""
    lines = [
        f"::error file={v.path},line={v.line},col={v.col + 1},"
        f"title={v.code}::{_escape_annotation(v.message)}"
        for v in violations
    ]
    if violations:
        lines.append(
            f"{len(violations)} finding(s) in {files_checked} file(s)"
        )
    else:
        lines.append(f"{files_checked} file(s) clean")
    return "\n".join(lines)


def render_rule_list() -> str:
    """The ``--list-rules`` table (shallow RPL001-010 + deep RPL011-019)."""
    merged = _all_rules_by_code()
    lines = []
    for code in sorted(merged):
        rule = merged[code]
        lines.append(f"{code}  {rule.name}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
