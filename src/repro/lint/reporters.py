"""Violation reporters: flake8-style text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from .rules import RULES_BY_CODE, Violation

__all__ = ["render_text", "render_json", "render_rule_list"]


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """One line per finding plus a per-code summary."""
    lines: List[str] = [v.format() for v in violations]
    if violations:
        counts = Counter(v.code for v in violations)
        lines.append("")
        for code in sorted(counts):
            rule = RULES_BY_CODE.get(code)
            label = rule.name if rule else "parse-error"
            lines.append(f"{code} ({label}): {counts[code]}")
        lines.append(
            f"{len(violations)} finding(s) in {files_checked} file(s)"
        )
    else:
        lines.append(f"{files_checked} file(s) clean")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Stable JSON document for tooling."""
    payload = {
        "files_checked": files_checked,
        "count": len(violations),
        "violations": [
            {
                "code": v.code,
                "message": v.message,
                "path": v.path,
                "line": v.line,
                "col": v.col + 1,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` table."""
    lines = []
    for code in sorted(RULES_BY_CODE):
        rule = RULES_BY_CODE[code]
        lines.append(f"{code}  {rule.name}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)
