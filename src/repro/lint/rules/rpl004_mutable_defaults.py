"""RPL004 — mutable class-attribute defaults on model classes.

``Engine`` and ``Workload`` subclasses are instantiated once per run
but their class attributes are shared by *every* run in the process. A
``dict``/``list`` literal default (``features = {}``) is a single
object: one engine mutating it silently rewrites another engine's
metadata mid-grid. Defaults must be immutable — wrap mappings in
``types.MappingProxyType`` and sequences in tuples.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..source import SourceModule, dotted_parts
from .base import Rule, Violation, model_classes

__all__ = ["MutableClassDefaultRule"]

#: constructor calls that build a fresh *mutable* container
_MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "bytearray",
    "defaultdict", "OrderedDict", "Counter", "deque",
})

_MUTABLE_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp,
)


def _mutable_description(value: ast.AST) -> Optional[str]:
    if isinstance(value, _MUTABLE_LITERALS):
        kind = {
            ast.Dict: "dict", ast.DictComp: "dict",
            ast.List: "list", ast.ListComp: "list",
            ast.Set: "set", ast.SetComp: "set",
        }[type(value)]
        return f"{kind} literal"
    if isinstance(value, ast.Call):
        parts = dotted_parts(value.func)
        if parts and parts[-1] in _MUTABLE_CALLS:
            return f"{parts[-1]}() call"
    return None


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        parts = dotted_parts(target)
        if parts and parts[-1] == "dataclass":
            return True
    return False


class MutableClassDefaultRule(Rule):
    """Forbid shared mutable defaults on Engine/Workload class bodies."""

    code = "RPL004"
    name = "mutable-class-default"
    rationale = (
        "class attributes are shared across every run; mutable defaults "
        "let one engine's mutation leak into another's — use "
        "MappingProxyType/tuple or set the attribute per instance"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        models = model_classes(module.tree)
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or cls.name not in models:
                continue
            if _is_dataclass(cls):
                continue
            for stmt in cls.body:
                if isinstance(stmt, ast.Assign):
                    value, targets = stmt.value, stmt.targets
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    value, targets = stmt.value, [stmt.target]
                else:
                    continue
                described = _mutable_description(value)
                if not described:
                    continue
                names = ", ".join(
                    t.id for t in targets if isinstance(t, ast.Name)
                ) or "<attribute>"
                yield self.violation(
                    module,
                    stmt,
                    f"mutable class attribute {names!r} ({described}) on "
                    f"{models[cls.name]} subclass {cls.name} is shared by "
                    f"every instance — use types.MappingProxyType / a tuple, "
                    f"or assign per instance in __init__",
                )
