"""RPL005 — exception discipline: only SimulatedFailure signals failure.

The engines turn failures into result-grid cells (OOM/TO/MPI/SHFL) by
letting :class:`SimulatedFailure` propagate out of the phase methods to
``Engine.run``'s single handler. A bare ``except:`` anywhere — or a
broad ``except Exception`` inside a phase method that swallows without
re-raising — can eat a :class:`SimulatedFailure` (or a real bug) and
turn a failing cell into a silently wrong number.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..source import SourceModule, dotted_parts
from .base import Rule, Violation

__all__ = ["ExceptionDisciplineRule"]

#: methods on the engine/workload execution path
_PHASE_METHODS = frozenset({
    "run", "_load", "_execute", "_save", "_overhead",
    "superstep", "run_superstep_loop", "charge_superstep",
})

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(type_node: Optional[ast.AST]) -> bool:
    if type_node is None:
        return False
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    for node in nodes:
        parts = dotted_parts(node)
        if parts and parts[-1] in _BROAD:
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


class ExceptionDisciplineRule(Rule):
    """Ban bare excepts; ban swallowing broad excepts in phase methods."""

    code = "RPL005"
    name = "exception-discipline"
    rationale = (
        "only SimulatedFailure may signal run failure; swallowed broad "
        "excepts turn failure cells into silently wrong numbers"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        yield from self._walk(module, module.tree, enclosing=None)

    def _walk(
        self, module: SourceModule, node: ast.AST, enclosing: Optional[str]
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            scope = enclosing
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = child.name
            if isinstance(child, ast.ExceptHandler):
                if child.type is None:
                    yield self.violation(
                        module,
                        child,
                        "bare 'except:' catches SimulatedFailure and "
                        "KeyboardInterrupt alike — name the exception types",
                    )
                elif (
                    enclosing in _PHASE_METHODS
                    and _is_broad(child.type)
                    and not _reraises(child)
                ):
                    yield self.violation(
                        module,
                        child,
                        f"broad except in phase method {enclosing}() swallows "
                        f"without re-raising — only SimulatedFailure may "
                        f"signal run failure",
                    )
            yield from self._walk(module, child, scope)
