"""RPL010 — recovery sites: who may catch a :class:`SimulatedFailure`.

Chaos turns failure handling into part of the measured model: a crash
must reach ``Engine.run``'s single handler (which prices recovery via
the engine's :class:`~repro.engines.base.RecoveryModel` and records the
failure cell), and a worker-process death must reach the executor's
retry policy. An ``except SimulatedFailure`` anywhere else — or a broad
``except Exception`` swallowing inside the engine/executor packages —
short-circuits that path: the fault is absorbed before its recovery
cost is charged, so the run reports a healthy-looking time that the
chaos grid can't trust. Failure types may only be caught at the two
sanctioned recovery sites: ``repro/engines/base.py`` and
``repro/exec/executor.py``.

RPL005 polices *how* exceptions are handled everywhere (no bare
excepts, no swallowed broad excepts in phase methods); this rule
polices *where* the simulation's failure types may be handled at all.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..source import SourceModule, dotted_parts
from .base import Rule, Violation

__all__ = ["RecoverySiteRule"]

#: the simulated failure taxonomy (cluster/failures.py)
_FAILURE_TYPES = frozenset({
    "SimulatedFailure", "SimulatedOOM", "SimulatedTimeout",
    "MPIOverflowError", "ShuffleError",
})

_BROAD = frozenset({"Exception", "BaseException"})

#: packages where failures travel to their recovery site (both
#: separators so Windows checkouts stay covered)
_GUARDED_FRAGMENTS = (
    "repro/engines/", "repro\\engines\\",
    "repro/exec/", "repro\\exec\\",
)

#: the sanctioned recovery sites: Engine.run's failure-to-cell handler
#: and the executor's worker-crash retry path
_ALLOWED_FRAGMENTS = (
    "repro/engines/base.py", "repro\\engines\\base.py",
    "repro/exec/executor.py", "repro\\exec\\executor.py",
)


def _is_guarded(path: str) -> bool:
    return any(fragment in path for fragment in _GUARDED_FRAGMENTS)


def _is_allowlisted(path: str) -> bool:
    return any(fragment in path for fragment in _ALLOWED_FRAGMENTS)


def _named_types(type_node: Optional[ast.AST]) -> Iterator[str]:
    if type_node is None:
        return
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    for node in nodes:
        parts = dotted_parts(node)
        if parts:
            yield parts[-1]


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


class RecoverySiteRule(Rule):
    """Failure types are caught only at the sanctioned recovery sites."""

    code = "RPL010"
    name = "recovery-sites"
    rationale = (
        "a SimulatedFailure absorbed outside Engine.run / the executor "
        "skips recovery pricing — the chaos grid would report healthy "
        "times for runs that silently ate a fault"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if _is_allowlisted(module.path):
            return
        guarded = _is_guarded(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = set(_named_types(node.type))
            caught = sorted(names & _FAILURE_TYPES)
            if caught:
                yield self.violation(
                    module,
                    node,
                    f"except {', '.join(caught)} outside the sanctioned "
                    f"recovery sites (engines/base.py, exec/executor.py) — "
                    f"failures must reach Engine.run to be priced",
                )
            elif guarded and names & _BROAD and not _reraises(node):
                yield self.violation(
                    module,
                    node,
                    "broad except without re-raise inside engines//exec "
                    "can absorb a SimulatedFailure before its recovery "
                    "cost is charged — catch specific types or re-raise",
                )
