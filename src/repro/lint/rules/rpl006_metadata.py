"""RPL006 — engine metadata completeness.

Table 1, the result-grid headers, and the §7 discussion all key off
three attributes every concrete engine must carry: ``key`` (the
figure abbreviation), ``display_name``, and ``language``. A subclass
that forgets one inherits the abstract root's empty string and renders
blank grid columns. The rule resolves inheritance within a module
(HaLoop ← Hadoop) and accepts ``self.<attr> = ...`` assignments in
``__init__`` (GraphLab builds its key from its mode flags).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..source import SourceModule
from .base import Rule, Violation, base_names, iter_methods

__all__ = ["EngineMetadataRule"]

_REQUIRED = ("key", "display_name", "language")

#: names marking a class as abstract machinery rather than a concrete engine
_ABSTRACT_MARKERS = ("Mixin", "Base", "Abstract")


def _declared_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes the class body sets: class-level or ``self.X`` anywhere."""
    attrs: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                attrs.add(stmt.target.id)
    for method in iter_methods(cls):
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
    return attrs


def _has_abstract_methods(cls: ast.ClassDef) -> bool:
    for method in iter_methods(cls):
        for deco in method.decorator_list:
            name = deco.attr if isinstance(deco, ast.Attribute) else (
                deco.id if isinstance(deco, ast.Name) else None
            )
            if name in ("abstractmethod", "abstractproperty"):
                return True
    return False


class EngineMetadataRule(Rule):
    """Every concrete Engine subclass defines key/display_name/language."""

    code = "RPL006"
    name = "engine-metadata"
    rationale = (
        "Table 1 and the result grids key off key/display_name/language; "
        "a missing attribute renders blank columns"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            if not self._is_concrete_engine(cls):
                continue
            effective, unresolved_engine_base = self._effective_attrs(
                cls, classes
            )
            missing = [a for a in _REQUIRED if a not in effective]
            if missing and not unresolved_engine_base:
                yield self.violation(
                    module,
                    cls,
                    f"concrete engine {cls.name} does not define "
                    f"{', '.join(missing)} — Table 1 and the grids require "
                    f"all of {', '.join(_REQUIRED)}",
                )

    def _is_concrete_engine(self, cls: ast.ClassDef) -> bool:
        if cls.name == "Engine" or cls.name.startswith("_"):
            return False
        if any(marker in cls.name for marker in _ABSTRACT_MARKERS):
            return False
        engine_ish = cls.name.endswith("Engine") or any(
            b == "Engine" or b.endswith("Engine") for b in base_names(cls)
        )
        return engine_ish and not _has_abstract_methods(cls)

    def _effective_attrs(
        self, cls: ast.ClassDef, classes: Dict[str, ast.ClassDef]
    ):
        """(attrs including in-module bases, saw-unresolvable-engine-base)."""
        attrs: Set[str] = set()
        unresolved = False
        seen: Set[str] = set()
        stack = [cls.name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            node = classes.get(name)
            if node is None:
                # an imported base: if it is itself an engine subclass we
                # cannot see what it defines — be lenient
                if name != "Engine" and name.endswith("Engine"):
                    unresolved = True
                continue
            attrs |= _declared_attrs(node)
            stack.extend(base_names(node))
        return attrs, unresolved
