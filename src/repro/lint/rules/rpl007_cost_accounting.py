"""RPL007 — cost-accounting bypass.

Simulated time and resource usage are only meaningful if every charge
goes through the accounting APIs: ``cluster.advance`` (which enforces
the 24-hour budget), ``parallel_compute``/``shuffle``/``hdfs_*`` (which
record tracker series), and the tracker's ``record_*`` methods. A
direct assignment like ``cluster.now = 0`` or
``cluster.tracker.network_bytes_sent += n`` skips the timeout check and
the figures' data series — the run "finishes" with numbers nothing
accounted for.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..source import SourceModule, target_chain
from .base import Rule, Violation

__all__ = ["CostAccountingRule"]

#: attribute owners whose internals only their own methods may touch
_GUARDED_OWNERS = frozenset({"tracker", "clock"})


class CostAccountingRule(Rule):
    """Forbid writing the clock or tracker counters directly."""

    code = "RPL007"
    name = "cost-accounting-bypass"
    rationale = (
        "time and resource charges must go through advance/record_* so "
        "the timeout budget and figure series stay correct"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets: List[ast.AST] = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                chain = target_chain(target)
                if not chain or len(chain) < 2:
                    continue
                dotted = ".".join(chain)
                if chain[-1] == "now":
                    yield self.violation(
                        module,
                        target,
                        f"direct write to {dotted} bypasses advance() and "
                        f"the 24-hour budget — charge time through the "
                        f"cluster APIs",
                    )
                elif _GUARDED_OWNERS & set(chain[:-1]):
                    yield self.violation(
                        module,
                        target,
                        f"direct write to {dotted} bypasses the accounting "
                        f"APIs — use advance()/record_*() so the tracker "
                        f"series stay consistent",
                    )
