"""RPL009 — concurrency ban: scheduler doors only (``exec``, ``serve``).

The simulation models distributed execution with *simulated* clocks and
deterministic cost accounting; host-level concurrency anywhere inside
the model would let scheduling nondeterminism leak into results (span
orders, metric interleavings, iteration counts). Real parallelism
belongs to the layers *around* the model — the experiment executor in
``repro/exec/``, which fans out whole independent cells and proves
bit-equivalence with the sequential path, and the serving layer in
``repro/serve/``, which funnels every concurrent client through one
scheduler thread into that same executor. Mirroring RPL001's
single-wall-clock-door pattern, every import of ``threading``,
``multiprocessing``, or ``concurrent.futures`` outside those packages
is a violation, so the repo's entire concurrency surface stays
auditable in two directories that never compute a simulated quantity.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..source import SourceModule
from .base import Rule, Violation

__all__ = ["ConcurrencyRule"]

#: module families that create host-level concurrency
_BANNED_ROOTS = ("threading", "multiprocessing", "concurrent")

#: the sanctioned concurrency packages (path fragment match, both
#: separators so Windows checkouts stay covered): the cell executor and
#: the serving layer that feeds it
_ALLOWED_FRAGMENTS = (
    "repro/exec/",
    "repro\\exec\\",
    "repro/serve/",
    "repro\\serve\\",
)


def _is_allowlisted(path: str) -> bool:
    return any(fragment in path for fragment in _ALLOWED_FRAGMENTS)


def _banned_root(module_name: Optional[str]) -> Optional[str]:
    if not module_name:
        return None
    root = module_name.split(".", 1)[0]
    return root if root in _BANNED_ROOTS else None


class ConcurrencyRule(Rule):
    """Ban thread/process machinery outside the executor package."""

    code = "RPL009"
    name = "concurrency-door"
    rationale = (
        "host-level concurrency is nondeterministic; all of it lives in "
        "repro/exec (the scheduler) and repro/serve (the daemon), never "
        "inside the simulation"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if _is_allowlisted(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _banned_root(alias.name)
                    if root:
                        yield self._flag(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                # absolute imports only: a relative ``from .concurrent``
                # is a local module, not the stdlib family
                if node.level == 0 and _banned_root(node.module):
                    yield self._flag(module, node, node.module or "")

    def _flag(self, module: SourceModule, node: ast.AST, name: str) -> Violation:
        return self.violation(
            module,
            node,
            f"concurrency import {name!r} outside repro/exec and "
            f"repro/serve — cells parallelize through the executor, "
            f"never inside the model",
        )
