"""RPL009 — concurrency ban: one scheduler door, ``repro/exec/``.

The simulation models distributed execution with *simulated* clocks and
deterministic cost accounting; host-level concurrency anywhere inside
the model would let scheduling nondeterminism leak into results (span
orders, metric interleavings, iteration counts). Real parallelism
belongs to exactly one place — the experiment executor in
``repro/exec/``, which fans out whole independent cells and proves
bit-equivalence with the sequential path. Mirroring RPL001's
single-wall-clock-door pattern, every import of ``threading``,
``multiprocessing``, or ``concurrent.futures`` outside that package is
a violation, so the repo's entire concurrency surface stays auditable
in one directory.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..source import SourceModule
from .base import Rule, Violation

__all__ = ["ConcurrencyRule"]

#: module families that create host-level concurrency
_BANNED_ROOTS = ("threading", "multiprocessing", "concurrent")

#: the single sanctioned concurrency package (path fragment match, both
#: separators so Windows checkouts stay covered)
_ALLOWED_FRAGMENTS = (
    "repro/exec/",
    "repro\\exec\\",
)


def _is_allowlisted(path: str) -> bool:
    return any(fragment in path for fragment in _ALLOWED_FRAGMENTS)


def _banned_root(module_name: Optional[str]) -> Optional[str]:
    if not module_name:
        return None
    root = module_name.split(".", 1)[0]
    return root if root in _BANNED_ROOTS else None


class ConcurrencyRule(Rule):
    """Ban thread/process machinery outside the executor package."""

    code = "RPL009"
    name = "concurrency-door"
    rationale = (
        "host-level concurrency is nondeterministic; all of it lives in "
        "repro/exec (the scheduler), never inside the simulation"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if _is_allowlisted(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _banned_root(alias.name)
                    if root:
                        yield self._flag(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                # absolute imports only: a relative ``from .concurrent``
                # is a local module, not the stdlib family
                if node.level == 0 and _banned_root(node.module):
                    yield self._flag(module, node, node.module or "")

    def _flag(self, module: SourceModule, node: ast.AST, name: str) -> Violation:
        return self.violation(
            module,
            node,
            f"concurrency import {name!r} outside repro/exec — cells "
            f"parallelize through the executor, never inside the model",
        )
