"""Rule plumbing: the Violation record, the Rule ABC, class-model helpers.

The domain rules need to know which classes in a module are part of the
simulation's object model (Engine subclasses, Workload subclasses).
Inheritance crosses module boundaries, so :func:`model_classes` combines
two static signals: transitive base resolution *within* the module, and
the repo's strict naming convention (every engine class name ends in
``Engine``; the abstract roots are named ``Engine`` / ``Workload``).
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..source import SourceModule, dotted_parts

__all__ = ["Violation", "Rule", "model_classes", "base_names", "iter_methods"]


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a file position."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        """flake8-style one-liner: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


class Rule(abc.ABC):
    """One checkable contract, with a stable code and rationale."""

    #: stable identifier used in reports and ``# noqa`` comments
    code: str = ""
    #: short human name shown by ``--list-rules``
    name: str = ""
    #: one-line statement of the contract this rule enforces
    rationale: str = ""

    @abc.abstractmethod
    def check(self, module: SourceModule) -> Iterator[Violation]:
        """Yield every violation of this rule in ``module``."""

    def violation(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Violation:
        """Build a Violation anchored at ``node``."""
        return Violation(
            code=self.code,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(code={self.code!r})"


def base_names(cls: ast.ClassDef) -> List[str]:
    """Last segment of each base class expression (``abc.ABC`` → ``ABC``)."""
    names = []
    for base in cls.bases:
        parts = dotted_parts(base)
        if parts:
            names.append(parts[-1])
    return names


def model_classes(
    tree: ast.Module, roots: Tuple[str, ...] = ("Engine", "Workload")
) -> Dict[str, str]:
    """Map each model class name in the module to the root it derives from.

    A class belongs to root ``R`` when its own name is ``R`` or ends with
    ``R`` (the repo's naming convention for cross-module subclasses), one
    of its base names is ``R`` or ends with ``R``, or one of its bases is
    another class in this module already classified under ``R``.
    """
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    classified: Dict[str, str] = {}

    def matches(name: str, root: str) -> bool:
        return name == root or name.endswith(root)

    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in classified:
                continue
            for root in roots:
                direct = matches(cls.name, root) or any(
                    matches(b, root) for b in base_names(cls)
                )
                inherited = any(
                    classified.get(b) == root for b in base_names(cls)
                )
                if direct or inherited:
                    classified[cls.name] = root
                    changed = True
                    break
    return classified


def iter_methods(
    cls: ast.ClassDef, names: Optional[Tuple[str, ...]] = None
) -> Iterator[ast.FunctionDef]:
    """The class body's (sync and async) method definitions, by name."""
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if names is None or node.name in names:
                yield node
