"""RPL003 — superstep purity: compute phases must not leak state.

Every engine replays the *same* workload supersteps so that answers are
bit-identical across systems; that only holds if a superstep's effects
are confined to its ``WorkloadState``. Writing module globals or
mutating the shared ``Graph`` from ``Workload.superstep`` or an
engine's ``_execute`` phase would couple runs to execution order —
exactly the implementation drift the benchmark is designed to exclude.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..source import SourceModule, target_chain
from .base import Rule, Violation, iter_methods

__all__ = ["SuperstepPurityRule"]

#: method names whose bodies are held to the purity contract
_PURE_METHODS = ("superstep", "_execute")

#: container methods that mutate their receiver in place
_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
})


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


class SuperstepPurityRule(Rule):
    """Forbid global writes and graph mutation in compute phases."""

    code = "RPL003"
    name = "superstep-purity"
    rationale = (
        "supersteps must be pure over the Graph so every engine replays "
        "identical answers; state belongs in WorkloadState"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        module_names = _module_level_names(module.tree)
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for method in iter_methods(cls, _PURE_METHODS):
                yield from self._check_method(module, method, module_names)

    def _check_method(
        self,
        module: SourceModule,
        method: ast.FunctionDef,
        module_names: Set[str],
    ) -> Iterator[Violation]:
        params = {a.arg for a in method.args.args}
        graph_params = {"graph"} & params
        has_dataset = "dataset" in params

        # chains here always come from Attribute/Subscript nodes, so even a
        # single-element chain is a write *into* the named object, not a
        # local rebinding of the name
        def chain_is_graph(chain: List[str]) -> bool:
            if chain[0] in graph_params:
                return True
            return has_dataset and chain[:2] == ["dataset", "graph"]

        for node in ast.walk(method):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield self.violation(
                    module,
                    node,
                    f"{kind} statement in {method.name}() — superstep state "
                    f"belongs in WorkloadState, not module globals",
                )
                continue
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATORS:
                    chain = target_chain(node.func.value)
                    if chain and chain_is_graph(chain):
                        yield self.violation(
                            module,
                            node,
                            f"{method.name}() mutates its graph argument via "
                            f".{node.func.attr}() — the Graph is shared and "
                            f"read-only during compute",
                        )
                    elif chain and chain[0] in module_names:
                        yield self.violation(
                            module,
                            node,
                            f"{method.name}() mutates module-level "
                            f"{chain[0]!r} via .{node.func.attr}() — "
                            f"supersteps must not write global state",
                        )
                continue
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                chain = target_chain(target)
                if not chain:
                    continue
                if chain_is_graph(chain):
                    yield self.violation(
                        module,
                        target,
                        f"{method.name}() writes to "
                        f"{'.'.join(chain)} — the Graph is shared and "
                        f"read-only during compute",
                    )
                elif chain[0] in module_names:
                    yield self.violation(
                        module,
                        target,
                        f"{method.name}() writes through module-level "
                        f"{chain[0]!r} — supersteps must not write global "
                        f"state",
                    )
