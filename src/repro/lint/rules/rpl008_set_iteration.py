"""RPL008 — nondeterministic set iteration in accumulation loops.

Python set iteration order depends on insertion history and hash
randomization. Iterating a set while accumulating floats or emitting
messages makes the result order-dependent: float addition is not
associative, and message order feeds the engines' cost models. Sort the
set (``sorted(s)``) or keep the collection in a list/array instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..source import SourceModule, dotted_parts
from .base import Rule, Violation

__all__ = ["SetIterationRule"]

#: set-producing method calls (``a.union(b)`` et al. return new sets)
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: loop-body calls that emit or accumulate in arrival order
_ORDER_SENSITIVE_CALLS = frozenset({
    "send", "emit", "send_message", "append", "push", "extend", "add",
})


def _set_expression(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        if parts and parts[-1] in ("set", "frozenset"):
            return f"{parts[-1]}(...)"
        if parts and parts[-1] in _SET_METHODS:
            return f".{parts[-1]}(...)"
    return None


def _order_sensitive(body: Iterator[ast.stmt]) -> Optional[str]:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return "accumulates with an augmented assignment"
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _ORDER_SENSITIVE_CALLS:
                    return f"calls .{node.func.attr}()"
    return None


class SetIterationRule(Rule):
    """Flag for-loops over sets whose bodies are order-sensitive."""

    code = "RPL008"
    name = "nondeterministic-set-iteration"
    rationale = (
        "set order is hash-dependent; float accumulation and message "
        "emission over a set vary run to run — iterate sorted(...)"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            described = _set_expression(node.iter)
            if not described:
                continue
            reason = _order_sensitive(iter(node.body))
            if reason:
                yield self.violation(
                    module,
                    node,
                    f"loop over {described} {reason} — set order is "
                    f"nondeterministic; iterate sorted(...) or use a "
                    f"list/array",
                )
