"""RPL002 — unseeded randomness: every random draw must be replayable.

Synthetic datasets, Voronoi seeds, and partition placement all come
from random draws; the paper's grids are only reproducible because each
draw goes through a ``numpy.random.Generator`` constructed from an
explicit seed. The module-level ``random.*`` and legacy
``numpy.random.*`` functions share hidden global state, and an
argument-less ``default_rng()`` / ``Random()`` seeds from the OS — all
of them make a rerun produce a different benchmark.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..source import SourceModule, dotted_name
from .base import Rule, Violation

__all__ = ["RandomnessRule"]

#: numpy.random attributes that are seeded-generator machinery, not draws
_NUMPY_OK = frozenset({
    "default_rng",
    "Generator",
    "RandomState",  # only as a type reference; calls are caught below
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
})

#: stdlib random attributes that construct an explicitly seedable RNG
_STDLIB_OK = frozenset({"Random", "SystemRandom"})


def _first_arg_missing_or_none(call: ast.Call) -> bool:
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in call.keywords:
        if kw.arg == "seed":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
    return True


class RandomnessRule(Rule):
    """Require seeded Generator objects for every source of randomness."""

    code = "RPL002"
    name = "unseeded-randomness"
    rationale = (
        "datasets and partitions must replay exactly; use "
        "numpy.random.default_rng(seed), never global RNG state"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(dotted_name(node.func))
            if not resolved:
                continue
            finding = self._classify(resolved, node)
            if finding:
                yield self.violation(module, node, finding)

    def _classify(self, resolved: str, call: ast.Call) -> Optional[str]:
        if resolved.startswith("random."):
            tail = resolved.split(".", 1)[1]
            if tail not in _STDLIB_OK:
                return (
                    f"{resolved}() uses the shared global RNG — construct "
                    f"random.Random(seed) or numpy.random.default_rng(seed)"
                )
            if tail == "Random" and _first_arg_missing_or_none(call):
                return "random.Random() without a seed is OS-seeded"
            return None
        if resolved.startswith("numpy.random."):
            tail = resolved.split(".")[2]
            if tail not in _NUMPY_OK:
                return (
                    f"legacy global-state call {resolved}() — use a seeded "
                    f"numpy.random.default_rng(seed) Generator"
                )
            if tail in ("default_rng", "RandomState") and (
                _first_arg_missing_or_none(call)
            ):
                return f"{resolved}() without a seed is OS-seeded"
        return None
