"""Rule registry: every RPL rule, instantiated once, keyed by code."""

from .base import Rule, Violation, model_classes
from .rpl001_wallclock import WallClockRule
from .rpl002_randomness import RandomnessRule
from .rpl003_purity import SuperstepPurityRule
from .rpl004_mutable_defaults import MutableClassDefaultRule
from .rpl005_exceptions import ExceptionDisciplineRule
from .rpl006_metadata import EngineMetadataRule
from .rpl007_cost_accounting import CostAccountingRule
from .rpl008_set_iteration import SetIterationRule
from .rpl009_concurrency import ConcurrencyRule
from .rpl010_recovery_sites import RecoverySiteRule

__all__ = [
    "Rule",
    "Violation",
    "model_classes",
    "ALL_RULES",
    "RULES_BY_CODE",
]

ALL_RULES = (
    WallClockRule(),
    RandomnessRule(),
    SuperstepPurityRule(),
    MutableClassDefaultRule(),
    ExceptionDisciplineRule(),
    EngineMetadataRule(),
    CostAccountingRule(),
    SetIterationRule(),
    ConcurrencyRule(),
    RecoverySiteRule(),
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}
