"""RPL001 — wall-clock ban: simulated time only.

Every duration the experiments report is *simulated*: it flows through
``cluster.advance`` and is read back via ``cluster.now``. A single
``time.time()`` in a cost model silently mixes host wall-clock into
paper-scale seconds and makes runs irreproducible across machines, so
the whole wall-clock API surface is banned inside the simulation tree.

One door stays open: ``repro/obs/hostclock.py`` wraps the host clock
for profiling the *simulator itself* (how long a run takes to compute,
never a simulated quantity). That module alone is allowlisted; every
other file must route wall-clock needs through it so the exemption
stays auditable in one place.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..source import SourceModule, dotted_name
from .base import Rule, Violation

__all__ = ["WallClockRule"]

#: fully qualified callables that read or wait on the host clock
_BANNED = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: the single sanctioned wall-clock module (path suffix match, both
#: separators so Windows checkouts stay covered)
_ALLOWED_SUFFIXES = (
    "repro/obs/hostclock.py",
    "repro\\obs\\hostclock.py",
)


def _is_allowlisted(path: str) -> bool:
    return path.endswith(_ALLOWED_SUFFIXES)


class WallClockRule(Rule):
    """Ban host-clock reads and sleeps; simulated time only."""

    code = "RPL001"
    name = "wall-clock-ban"
    rationale = (
        "all simulated time flows through cluster.advance/cluster.now; "
        "host wall-clock calls make runs irreproducible"
    )

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if _is_allowlisted(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(dotted_name(node.func))
            if resolved in _BANNED:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock call {resolved}() — use cluster.advance/"
                    f"cluster.now; simulated time only",
                )
