"""``python -m repro.lint`` — run the domain-aware static analyzer."""

import sys

from .cli import main

sys.exit(main())
