"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit codes follow linter convention: 0 clean, 1 findings, 2 bad usage.
The shallow pass (RPL001-RPL010) always runs; ``--deep`` additionally
builds the whole-program model and runs RPL011-RPL024. ``--select`` /
``--ignore`` filter both passes — an exact code matches only itself,
anything shorter matches ruff-style by prefix —
``--baseline`` suppresses previously recorded findings,
``--ast-cache`` shares parsed ASTs between the shallow and deep CI
steps, and ``--explain RPLxxx`` prints one rule's rationale, the
discipline it enforces, and its minimal positive/negative example.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from . import (
    PARSE_ERROR_CODE,
    RULES_BY_CODE,
    Violation,
    expand_selectors,
    iter_python_files,
    lint_module,
)
from .reporters import RENDERERS, render_rule_list
from .source import SourceModule

__all__ = ["main", "build_parser", "run_explain", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Domain-aware static analysis for the simulation's model "
            "contracts (shallow rules RPL001-RPL010; --deep adds the "
            "whole-program rules RPL011-RPL024)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        help=(
            "comma-separated rule codes or prefixes to run; an exact "
            "code (RPL016) selects only itself, a prefix (RPL01) "
            "selects every code it starts (default: all active rules)"
        ),
    )
    parser.add_argument(
        "--ignore",
        help="comma-separated rule codes or prefixes to skip",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help=(
            "also run the whole-program pass (RPL011-RPL024): call-graph "
            "model conformance, determinism taint, span coverage, chaos "
            "safety, pool payloads, redundant digests, superstep hot-loop "
            "hygiene, cache-key soundness, cross-process state sharing, "
            "bounded-retry hygiene, and the concurrency rules (lockset "
            "field discipline, blocking-under-lock/lock-order, condition "
            "hygiene, thread confinement)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file (lint-baseline.json): recorded findings are "
            "suppressed so CI fails only on new ones"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with every current finding and exit 0",
    )
    parser.add_argument(
        "--ast-cache",
        metavar="FILE",
        help=(
            "pickle of parsed ASTs, reused between the shallow and deep "
            "steps (stale entries re-parse automatically)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its rationale and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help=(
            "print one rule's rationale, the discipline it enforces, "
            "and its minimal positive/negative example, then exit "
            "(deep rules included without --deep; exit 2 on unknown "
            "codes)"
        ),
    )
    return parser


def run_explain(code: str) -> int:
    """Print one rule's full documentation; exit 2 on unknown codes."""
    from .deep import DEEP_RULES_BY_CODE

    merged: Dict[str, object] = dict(RULES_BY_CODE)
    merged.update(DEEP_RULES_BY_CODE)
    code = code.strip().upper()
    rule = merged.get(code)
    if rule is None:
        known = ", ".join(sorted(merged))
        print(
            f"unknown rule code {code!r} — known codes: {known}",
            file=sys.stderr,
        )
        return 2
    lines = [f"{rule.code} — {rule.name}", "", f"rationale: {rule.rationale}"]
    doc = sys.modules[type(rule).__module__].__doc__
    if doc:
        lines += ["", doc.strip()]
    print("\n".join(lines))
    return 0


def _active_rules(
    select: Optional[str], ignore: Optional[str], deep: bool
) -> Dict[str, object]:
    """Codes → rule instances after --select/--ignore filtering.

    Raises KeyError (exit 2 upstream) for a selector matching nothing;
    a selector that only matches deep codes without ``--deep`` gets a
    hint to pass the flag.
    """
    from .deep import DEEP_RULES_BY_CODE

    active: Dict[str, object] = dict(RULES_BY_CODE)
    if deep:
        active.update(DEEP_RULES_BY_CODE)
    if select:
        selectors = [s for s in select.split(",") if s.strip()]
        try:
            picked = expand_selectors(selectors, active)
        except KeyError:
            if not deep:
                # distinguish "unknown code" from "deep code without --deep"
                everything = dict(active)
                everything.update(DEEP_RULES_BY_CODE)
                picked = expand_selectors(selectors, everything)
                raise KeyError(
                    f"selector {select!r} only matches deep rules "
                    f"({', '.join(p for p in picked if p not in active)}) "
                    f"— pass --deep to run them"
                )
            raise
        active = {code: active[code] for code in picked}
    if ignore:
        ignored = expand_selectors(
            [s for s in ignore.split(",") if s.strip()],
            list(RULES_BY_CODE) + list(DEEP_RULES_BY_CODE),
        )
        active = {c: r for c, r in active.items() if c not in ignored}
    return active


def run_lint(
    paths: List[str],
    fmt: str = "text",
    select: Optional[str] = None,
    list_rules: bool = False,
    ignore: Optional[str] = None,
    deep: bool = False,
    baseline: Optional[str] = None,
    update_baseline: bool = False,
    ast_cache: Optional[str] = None,
    explain: Optional[str] = None,
) -> int:
    """Run the analyzer; prints a report and returns the exit code."""
    from .deep import DEEP_RULES_BY_CODE, deep_lint_modules
    from .deep.astcache import AstCache
    from .deep.baseline import filter_baselined, load_baseline, write_baseline

    if explain:
        return run_explain(explain)
    if list_rules:
        print(render_rule_list())
        return 0
    if update_baseline and not baseline:
        print("--update-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    try:
        active = _active_rules(select, ignore, deep)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    shallow_rules = [r for c, r in sorted(active.items()) if c in RULES_BY_CODE]
    deep_rules = [
        r for c, r in sorted(active.items()) if c in DEEP_RULES_BY_CODE
    ]
    files = iter_python_files(paths)
    if not files:
        print(f"no Python files under {paths}", file=sys.stderr)
        return 2

    cache = AstCache(ast_cache)
    sources: Dict[str, SourceModule] = {}
    violations: List[Violation] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"cannot read {path}: {exc.strerror}", file=sys.stderr)
            return 2
        except UnicodeDecodeError as exc:
            violations.append(Violation(
                code=PARSE_ERROR_CODE,
                message=f"could not decode file as UTF-8: {exc.reason}",
                path=path,
                line=1,
                col=0,
            ))
            continue
        module = cache.get(path, text)
        if module is None:
            try:
                module = SourceModule.parse(text, path=path)
            except SyntaxError as exc:
                violations.append(Violation(
                    code=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc.msg}",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                ))
                continue
            except ValueError as exc:
                # python 3.9 raises bare ValueError for e.g. null bytes
                violations.append(Violation(
                    code=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc}",
                    path=path,
                    line=1,
                    col=0,
                ))
                continue
            cache.put(path, text, module)
        sources[path] = module
        violations.extend(lint_module(module, shallow_rules))
    cache.save()

    if deep and deep_rules:
        violations.extend(deep_lint_modules(sources, rules=deep_rules))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))

    if update_baseline:
        count = write_baseline(baseline, violations)
        print(f"baseline updated: {count} fingerprint(s) -> {baseline}")
        return 0
    if baseline:
        violations = filter_baselined(violations, load_baseline(baseline))

    render = RENDERERS[fmt]
    print(render(violations, files_checked=len(files)))
    return 1 if violations else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return run_lint(
            paths=args.paths,
            fmt=args.format,
            select=args.select,
            list_rules=args.list_rules,
            ignore=args.ignore,
            deep=args.deep,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            ast_cache=args.ast_cache,
            explain=args.explain,
        )
    except BrokenPipeError:
        # report piped into head/less that exited early; not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
