"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit codes follow linter convention: 0 clean, 1 findings, 2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import iter_python_files, lint_file, select_rules
from .reporters import render_json, render_rule_list, render_text

__all__ = ["main", "build_parser", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Domain-aware static analysis for the simulation's model "
            "contracts (rules RPL001-RPL010)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its rationale and exit",
    )
    return parser


def run_lint(
    paths: List[str],
    fmt: str = "text",
    select: Optional[str] = None,
    list_rules: bool = False,
) -> int:
    """Run the analyzer; prints a report and returns the exit code."""
    if list_rules:
        print(render_rule_list())
        return 0
    try:
        rules = select_rules(select.split(",") if select else None)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    files = iter_python_files(paths)
    if not files:
        print(f"no Python files under {paths}", file=sys.stderr)
        return 2
    violations = []
    for path in files:
        try:
            violations.extend(lint_file(path, rules=rules))
        except OSError as exc:
            print(f"cannot read {path}: {exc.strerror}", file=sys.stderr)
            return 2
    render = render_json if fmt == "json" else render_text
    print(render(violations, files_checked=len(files)))
    return 1 if violations else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return run_lint(
            paths=args.paths,
            fmt=args.format,
            select=args.select,
            list_rules=args.list_rules,
        )
    except BrokenPipeError:
        # report piped into head/less that exited early; not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
