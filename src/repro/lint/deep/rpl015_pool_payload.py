"""RPL015 — large result-determining objects pickled into pool tasks.

``ProcessPoolExecutor.submit`` pickles every argument into the task
queue and unpickles it in the worker. Shipping a whole dataset, graph,
or expanded spec per cell turns the fan-out into a serialization
benchmark: the paper's grids re-send megabytes of immutable edge
arrays that every worker could rebuild (or inherit via fork) from a
name. The executor's contract is therefore *pass by reference*: task
payloads carry dataset names and cache keys, workers rebuild through
the memoized registry.

The rule scans ``exec`` modules for pool dispatch calls
(``pool.submit(fn, ...)``, ``executor.map(fn, ...)``) and flags task
arguments that syntactically carry a large result-determining object:
a bare name like ``dataset``/``graph``/``spec``/``grid``, a
plural-collection access like ``self.datasets[...]``, or a direct
``load_dataset(...)`` / ``edge_array()`` call. ``functools.partial``
and ``lambda`` wrappers are looked through — closure capture pickles
just the same. Name-based on purpose (the linter never imports the
code under analysis), and scoped to ``exec`` where the pass-by-name
contract holds.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..rules.base import Violation
from ..source import dotted_parts
from .base import DeepRule
from .hotpath import pool_dispatch
from .program import Program

__all__ = ["PoolPayloadRule"]

#: bare local names that conventionally hold one large object
_LARGE_NAMES = frozenset({"dataset", "graph", "spec", "grid", "edges"})

#: plural attributes/names that hold collections of large objects
_LARGE_COLLECTIONS = frozenset({"datasets", "graphs", "specs", "grids"})

#: calls that materialize a large object right in the argument list
_LARGE_CALLS = frozenset({"load_dataset", "edge_array", "without_self_edges"})


def _large_evidence(node: ast.AST) -> Optional[str]:
    """Why this argument expression ships a large object, or None."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            parts = dotted_parts(sub.func)
            if parts and parts[-1] in _LARGE_CALLS:
                return f"{parts[-1]}(...) materializes the object inline"
        if isinstance(sub, ast.Attribute) and sub.attr in _LARGE_COLLECTIONS:
            return f"'.{sub.attr}' indexes a collection of large objects"
        if isinstance(sub, ast.Name):
            if sub.id in _LARGE_NAMES:
                return f"'{sub.id}' names a large object"
            if sub.id in _LARGE_COLLECTIONS:
                return f"'{sub.id}' indexes a collection of large objects"
    return None


def _task_arguments(call: ast.Call, method: str) -> List[ast.AST]:
    """The expressions pickled per task (callable position excluded)."""
    args: List[ast.AST] = []
    positional = list(call.args)
    if positional:
        head = positional[0]
        # look through partial(fn, ...) and lambda wrappers: captured
        # values pickle exactly like explicit arguments
        if isinstance(head, ast.Call):
            parts = dotted_parts(head.func)
            if parts and parts[-1] == "partial":
                args.extend(head.args[1:])
                args.extend(kw.value for kw in head.keywords)
        elif isinstance(head, ast.Lambda):
            args.append(head.body)
        positional = positional[1:]
    args.extend(positional)
    args.extend(kw.value for kw in call.keywords)
    return args


class PoolPayloadRule(DeepRule):
    """Flag pool dispatches in ``exec`` that pickle large objects."""

    code = "RPL015"
    name = "pool-payload-by-value"
    rationale = (
        "pool arguments are pickled per task; ship dataset/graph/spec "
        "objects by name or cache key and rebuild in the worker"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        for name in sorted(program.modules):
            module = program.modules[name]
            if "exec" not in module.name_parts:
                continue
            for node in ast.walk(module.source.tree):
                if not isinstance(node, ast.Call):
                    continue
                method = pool_dispatch(node)
                if method is None:
                    continue
                for arg in _task_arguments(node, method):
                    evidence = _large_evidence(arg)
                    if evidence is not None:
                        yield self.violation(
                            module.path,
                            arg,
                            f"pool.{method} pickles this argument into "
                            f"every task — {evidence}; pass it by "
                            f"name/cache key and rebuild in the worker",
                        )
