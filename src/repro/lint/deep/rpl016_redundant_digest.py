"""RPL016 — redundant bulk digest recomputed inside a loop.

Hashing a dataset's edge array or a package's source files is O(bytes)
work whose answer never changes within a run: the inputs are immutable
for the lifetime of the process. Doing it once per loop iteration —
the grid planner computing a per-cell SHA-256 of the same dataset bytes
78 times — is statically visible waste, and on this codebase it is the
single largest contributor to cold-grid planning time.

The rule classifies *bulk digest* functions (a ``hashlib`` call fed by
``.tobytes()`` / ``.read_bytes()`` in the same body), then flags every
call site lexically inside a ``for``/``while`` loop whose conservative
call-graph closure reaches an **unmemoized** bulk digest function. A
``functools.lru_cache`` / ``functools.cache`` decorator on any function
along the path amortizes the digest to once per process and cuts the
propagation, so the sanctioned fix — memoize the fingerprint — makes
the finding disappear. Building a ``hashlib`` object directly from
loop-invariant bulk bytes inside a loop is flagged too; hashing the
loop variable itself is per-item work, not waste, and passes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..rules.base import Violation
from ..source import dotted_parts
from .base import DeepRule
from .callgraph import CallSite, call_sites, resolve_targets
from .hotpath import loop_bodies, loop_call_sites
from .program import ClassInfo, FunctionInfo, Program

__all__ = ["RedundantDigestRule"]

#: method calls that feed whole-object byte buffers into a digest
_BULK_SOURCES = frozenset({"tobytes", "read_bytes"})

#: decorators that amortize a pure function to once per process
_MEMO_DECORATORS = frozenset({"lru_cache", "cache", "cached_property"})


def _is_memoized(fn: FunctionInfo) -> bool:
    for deco in getattr(fn.node, "decorator_list", []):
        if isinstance(deco, ast.Call):
            deco = deco.func
        parts = dotted_parts(deco)
        if parts and parts[-1] in _MEMO_DECORATORS:
            return True
    return False


def _is_hashlib_call(site: CallSite, fn: FunctionInfo) -> bool:
    """True when the call resolves to ``hashlib.<anything>``."""
    if site.chain is None:
        return False
    dotted = ".".join(site.chain)
    resolved = fn.module.source.imports.resolve(dotted) or dotted
    return resolved == "hashlib" or resolved.startswith("hashlib.")


def _has_bulk_source(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _BULK_SOURCES
        ):
            return True
    return False


def _loop_bound_names(fn: FunctionInfo) -> Dict[int, frozenset]:
    """node id → names rebound by any loop enclosing that node.

    A ``for`` target and every name stored inside a loop body vary per
    iteration; bytes derived from them are *not* loop-invariant.
    """
    bound: Dict[int, set] = {}
    for loop, body in loop_bodies(fn):
        names = set()
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            names.update(
                n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)
            )
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    names.add(sub.id)
        for stmt in body:
            for sub in ast.walk(stmt):
                bound.setdefault(id(sub), set()).update(names)
    return {key: frozenset(names) for key, names in bound.items()}


def _invariant_bulk_source(call: ast.Call, bound: frozenset) -> bool:
    """True when ``call`` hashes bulk bytes whose receiver is loop-invariant."""
    for arg in call.args:
        for sub in ast.walk(arg):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _BULK_SOURCES
            ):
                continue
            receiver = dotted_parts(sub.func)[:-1]
            if receiver and receiver[0] not in bound:
                return True
    return False


def _is_bulk_digest(fn: FunctionInfo) -> bool:
    """The body both calls hashlib and consumes whole-object bytes."""
    if not _has_bulk_source(fn.node):
        return False
    return any(_is_hashlib_call(site, fn) for site in call_sites(fn))


_Node = Tuple[FunctionInfo, Optional[ClassInfo]]


def _node_key(node: _Node) -> Tuple[str, str]:
    fn, binding = node
    return (fn.qualname, binding.qualname if binding else "")


class RedundantDigestRule(DeepRule):
    """Flag loop call sites that recompute an unmemoized bulk digest."""

    code = "RPL016"
    name = "redundant-bulk-digest"
    rationale = (
        "hashing immutable bytes inside a loop repeats O(bytes) work "
        "per iteration — memoize the digest (functools.lru_cache) or "
        "hoist it out of the loop"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        bulk = {
            fn.qualname
            for fn in program.functions.values()
            if _is_bulk_digest(fn) and not _is_memoized(fn)
        }
        edges: Dict[Tuple[str, str], List[_Node]] = {}

        def successors(node: _Node) -> List[_Node]:
            key = _node_key(node)
            if key not in edges:
                fn, binding = node
                targets: List[_Node] = []
                for site in call_sites(fn):
                    targets.extend(resolve_targets(program, site, fn, binding))
                edges[key] = targets
            return edges[key]

        def reaches_bulk(roots: List[_Node]) -> Optional[str]:
            """qualname of the first reachable unmemoized bulk digest."""
            seen = set()
            frontier = sorted(roots, key=_node_key)
            while frontier:
                nxt: List[_Node] = []
                for node in frontier:
                    key = _node_key(node)
                    if key in seen:
                        continue
                    seen.add(key)
                    fn = node[0]
                    if _is_memoized(fn):
                        continue  # amortized: the digest runs once
                    if fn.qualname in bulk:
                        return fn.qualname
                    nxt.extend(successors(node))
                frontier = sorted(nxt, key=_node_key)
            return None

        for qualname in sorted(program.functions):
            fn = program.functions[qualname]
            binding = fn.owner
            bound = _loop_bound_names(fn)
            for site in loop_call_sites(fn):
                if _is_hashlib_call(site, fn):
                    if _invariant_bulk_source(
                        site.node, bound.get(id(site.node), frozenset())
                    ):
                        yield self.violation(
                            fn.module.path,
                            site.node,
                            "bulk digest built inside this loop — the "
                            "hashed bytes are loop-invariant; hoist or "
                            "memoize it",
                        )
                    continue
                if fn.qualname in bulk:
                    continue  # the digest's own streaming loop is the work
                targets = resolve_targets(program, site, fn, binding)
                if not targets:
                    continue
                culprit = reaches_bulk(list(targets))
                if culprit is not None:
                    yield self.violation(
                        fn.module.path,
                        site.node,
                        f"'{site.name}(...)' inside this loop recomputes "
                        f"the bulk digest '{culprit}' every iteration — "
                        f"memoize it (functools.lru_cache) so it runs "
                        f"once per process",
                    )
