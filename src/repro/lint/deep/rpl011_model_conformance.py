"""RPL011 — model conformance: engines stay inside their computation model.

The paper's cross-system comparison (Section 3) is only meaningful if
each engine faithfully executes its declared model: a vertex-centric BSP
engine communicates through synchronized shuffles, MapReduce routes all
communication through shuffle + HDFS, the single-thread baseline touches
no distributed primitive at all. Pollard & Norris (arXiv:1704.02003)
document how "same algorithm" implementations silently diverge; here the
divergence would be an engine quietly charging a primitive its real
counterpart cannot perform — and every cost grid built on it.

Each concrete engine declares ``model_primitives`` (a frozenset of
:data:`~repro.lint.deep.callgraph.PRIMITIVES` names); this rule verifies
(a) the declaration exists and is statically parseable, (b) it is a
subset of what ``MODEL_PRIMITIVES[trace_model]`` allows the engine's
computation model, and (c) every cluster-primitive call site reachable
from that engine's ``run`` is declared. Reachability skips the chaos/
recovery machinery (priced by its own contracts, RPL010/RPL014) and the
``cluster`` package itself (it *implements* the primitives).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..rules.base import Violation
from .base import DeepRule, concrete_engines, model_primitive_table, parse_primitive_set
from .callgraph import call_sites
from .program import FunctionInfo, Program
from .reachability import engine_cone

__all__ = ["ModelConformanceRule"]


def _sites_in_cone(
    program: Program, cone
) -> List[Tuple[FunctionInfo, str, object]]:
    """(function, primitive, call node) for every primitive site reached."""
    sites = []
    seen_functions = set()
    for fn, _binding in cone:
        if fn.qualname in seen_functions:
            continue
        seen_functions.add(fn.qualname)
        parts = fn.module.name_parts
        if "cluster" in parts or "chaos" in parts:
            continue
        for site in call_sites(fn):
            if site.primitive is not None:
                sites.append((fn, site.primitive, site.node))
    sites.sort(key=lambda s: (s[0].module.path, s[2].lineno, s[2].col_offset))
    return sites


class ModelConformanceRule(DeepRule):
    """Every primitive reachable from Engine.run is allowed by its model."""

    code = "RPL011"
    name = "model-conformance"
    rationale = (
        "each engine must stay inside its computation model's cluster "
        "primitives (BSP shuffles, MapReduce HDFS round-trips, ...) or "
        "the paper's cross-system cost comparison is meaningless"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        table = model_primitive_table(program)
        emitted = set()
        for engine in concrete_engines(program):
            model_attr = program.resolve_class_attr(engine, "trace_model")
            model = None
            if model_attr is not None:
                node = model_attr[1]
                value = getattr(node, "value", None)
                if isinstance(value, str):
                    model = value
            if model is None or model not in table:
                yield self.violation(
                    engine.module.path,
                    engine.node,
                    f"engine {engine.name} has no statically known "
                    f"trace_model (expected one of "
                    f"{sorted(table)})",
                )
                continue
            declared_attr = program.resolve_class_attr(
                engine, "model_primitives"
            )
            declared = (
                parse_primitive_set(declared_attr[1])
                if declared_attr is not None
                else None
            )
            if declared is None:
                yield self.violation(
                    engine.module.path,
                    engine.node,
                    f"engine {engine.name} must declare model_primitives "
                    f"as a frozenset of cluster primitive names — the "
                    f"contract RPL011 checks its call graph against",
                )
                continue
            allowed = table[model]
            overreach = sorted(declared - allowed)
            if overreach:
                yield self.violation(
                    engine.module.path,
                    engine.node,
                    f"engine {engine.name} declares primitives its "
                    f"{model!r} model does not allow: "
                    f"{', '.join(overreach)}",
                )
            cone = engine_cone(program, engine, skip_chaos=True)
            for fn, primitive, call in _sites_in_cone(program, cone):
                if primitive in declared:
                    continue
                key = (fn.module.path, call.lineno, call.col_offset, engine.qualname)
                if key in emitted:
                    continue
                emitted.add(key)
                yield self.violation(
                    fn.module.path,
                    call,
                    f"cluster.{primitive}() reachable from "
                    f"{engine.name}.run (via {fn.qualname}) is outside "
                    f"the engine's declared {model!r} primitives",
                )
