"""RPL022 — no blocking under a lock, and the lock graph stays acyclic.

A critical section is a promise to be quick: every handler thread that
wants the daemon's condition queues up behind it. Blocking while the
lock is held — socket send/recv, ``host_sleep``, file/journal I/O,
``pool.submit``/``future.result()``, ``Thread.join`` — turns one slow
client or one slow disk into a stall of the whole serving stack, and a
``join`` on a thread that itself needs the lock is a textbook
deadlock. Separately, if thread A acquires lock X then Y while thread
B acquires Y then X, both can park forever; the lock-acquisition graph
across all thread roots must be acyclic.

The discipline: render, serialize, and write *outside* the critical
section; take the lock only to read or publish shared state
(snapshot-then-release). ``cond.wait()`` is exempt with respect to its
own lock — waiting releases it — but waiting while *another* lock is
still held wedges everyone who needs that other lock.

Positive (flagged)::

    def _finish(self):
        with self.cond:
            self._stopping = True
            self._scheduler.join()   # join under the lock: deadlock bait

Negative (clean)::

    def _finish(self):
        with self.cond:
            self._stopping = True
            self.cond.notify_all()
        self._scheduler.join()       # blocking happens lock-free
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..rules.base import Violation
from .base import DeepRule
from .concurrency import ConcurrencyAnalysis
from .program import Program

__all__ = ["BlockingUnderLockRule"]


def _lock_cycles(
    edges: Dict[Tuple[str, str], Tuple[str, ast.AST, str]],
) -> List[List[str]]:
    """Deterministic list of lock-order cycles (each as a lock-id path)."""
    graph: Dict[str, List[str]] = {}
    for held, acquired in sorted(edges):
        if held != acquired:  # re-entry on one lock is not an order issue
            graph.setdefault(held, []).append(acquired)
    cycles: List[List[str]] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    def visit(node: str, stack: List[str], on_stack: Set[str]) -> None:
        for succ in graph.get(node, ()):
            if succ in on_stack:
                cycle = stack[stack.index(succ):] + [succ]
                key = tuple(sorted(cycle[:-1]))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
                continue
            stack.append(succ)
            on_stack.add(succ)
            visit(succ, stack, on_stack)
            on_stack.discard(succ)
            stack.pop()

    for start in sorted(graph):
        visit(start, [start], {start})
    return cycles


class BlockingUnderLockRule(DeepRule):
    """Flag blocking calls under a held lock and cyclic lock orders."""

    code = "RPL022"
    name = "blocking-under-lock"
    rationale = (
        "I/O, sleeps, joins, and pool waits under a lock stall every "
        "thread queued on it; blocking belongs outside the critical "
        "section and lock acquisition order must be acyclic"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        analysis = ConcurrencyAnalysis.of(program)
        seen: Set[Tuple[str, int, int, str]] = set()
        for call in analysis.blocking_calls:
            path = call.fn.module.path
            key = (
                path,
                getattr(call.node, "lineno", 1),
                getattr(call.node, "col_offset", 0),
                call.reason,
            )
            if key in seen:
                continue  # same site reached from several thread roots
            seen.add(key)
            held = ", ".join(f"'{lock}'" for lock in sorted(call.may))
            yield self.violation(
                path,
                call.node,
                f"blocking call {call.reason} may run while {held} is "
                f"held (thread root '{call.root.name}'); threads queued "
                f"on the lock stall behind it — snapshot under the lock, "
                f"release, then block",
            )
        for op in analysis.sync_ops:
            if op.kind not in ("wait", "wait_for"):
                continue
            others = sorted(op.may - {op.lock.lock_id})
            if not others:
                continue
            key = (
                op.fn.module.path,
                getattr(op.node, "lineno", 1),
                getattr(op.node, "col_offset", 0),
                f"wait+{others[0]}",
            )
            if key in seen:
                continue
            seen.add(key)
            yield self.violation(
                op.fn.module.path,
                op.node,
                f"{op.lock.display}.{op.kind}() releases only its own "
                f"lock but {', '.join(repr(o) for o in others)} may "
                f"still be held while parked — every thread needing "
                f"that lock deadlocks until the wait returns",
            )
        for cycle in _lock_cycles(analysis.order_edges):
            first = analysis.order_edges[(cycle[0], cycle[1])]
            yield self.violation(
                first[0],
                first[1],
                f"lock-order cycle {' -> '.join(cycle)}: two threads "
                f"taking these locks in opposite orders can deadlock; "
                f"impose one global acquisition order",
            )
