"""RPL014 — chaos safety: faults can only land in sanctioned handlers.

RPL010 polices failure handling *lexically*: no ``except
SimulatedFailure`` outside the two recovery sites, no swallowed broad
except inside ``engines/``/``exec/``. What it cannot see is a broad
``except Exception`` three modules away whose try body *transitively*
reaches a fault-raising site — ``cluster.advance`` raises
:class:`SimulatedTimeout` past the budget, engines raise OOM/MPI/shuffle
faults mid-superstep — and silently absorbs the fault before
``Engine.run`` prices its recovery. Under chaos injection that handler
turns a measured failure into a healthy-looking number.

This rule computes a whole-program ``can_raise`` fixpoint (seeded by
``raise <FailureType>`` statements and cluster-primitive call sites,
propagated caller-ward over the conservative call graph) and then flags
every broad handler — bare ``except``, ``except Exception``, ``except
BaseException`` — that does not re-raise, sits outside the sanctioned
recovery sites, and guards a try body that can reach a fault-raising
site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from ..rules.base import Violation
from ..rules.rpl010_recovery_sites import (
    _ALLOWED_FRAGMENTS,
    _BROAD,
    _FAILURE_TYPES,
    _named_types,
    _reraises,
)
from ..source import dotted_parts
from .base import DeepRule
from .callgraph import call_sites, resolve_targets
from .program import FunctionInfo, Program

__all__ = ["ChaosSafetyRule"]


def _raises_failure_type(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Raise) and sub.exc is not None:
            exc = sub.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            parts = dotted_parts(exc)
            if parts and parts[-1] in _FAILURE_TYPES:
                return True
    return False


def _has_primitive_site(node: ast.AST) -> bool:
    from .callgraph import PRIMITIVES

    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(
            sub.func, ast.Attribute
        ):
            parts = dotted_parts(sub.func)
            if (
                parts
                and parts[-1] in PRIMITIVES
                and len(parts) >= 2
                and parts[-2] == "cluster"
            ):
                return True
    return False


def _can_raise_set(program: Program) -> Set[str]:
    """Qualnames of functions that may (transitively) raise a fault."""
    can_raise: Set[str] = set()
    callers: Dict[str, List[str]] = {}
    worklist: List[str] = []
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        if _raises_failure_type(fn.node) or _has_primitive_site(fn.node):
            can_raise.add(qualname)
            worklist.append(qualname)
        for site in call_sites(fn):
            for target, _binding in resolve_targets(
                program, site, fn, fn.owner
            ):
                callers.setdefault(target.qualname, []).append(qualname)
    while worklist:
        callee = worklist.pop()
        for caller in callers.get(callee, ()):
            if caller not in can_raise:
                can_raise.add(caller)
                worklist.append(caller)
    return can_raise


def _try_body_can_raise(
    program: Program,
    fn: FunctionInfo,
    try_node: ast.Try,
    can_raise: Set[str],
) -> bool:
    for stmt in try_node.body:
        if _raises_failure_type(stmt) or _has_primitive_site(stmt):
            return True
    # a faux FunctionInfo restricted to the try body keeps call-site
    # extraction and resolution identical to the fixpoint's
    body_holder = ast.Module(body=list(try_node.body), type_ignores=[])
    probe = FunctionInfo(
        name=fn.name,
        qualname=fn.qualname,
        module=fn.module,
        node=body_holder,
        owner=fn.owner,
        is_abstract=False,
    )
    for site in call_sites(probe):
        for target, _binding in resolve_targets(program, site, probe, fn.owner):
            if target.qualname in can_raise:
                return True
    return False


class ChaosSafetyRule(DeepRule):
    """Broad handlers must not absorb reachable simulated faults."""

    code = "RPL014"
    name = "chaos-safety"
    rationale = (
        "a broad except whose try body transitively reaches a fault-"
        "raising site absorbs SimulatedFailures before Engine.run "
        "prices recovery — chaos grids would report healthy times for "
        "runs that ate a fault"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        can_raise = _can_raise_set(program)
        for qualname in sorted(program.functions):
            fn = program.functions[qualname]
            path = fn.module.path
            if any(fragment in path for fragment in _ALLOWED_FRAGMENTS):
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Try):
                    continue
                for handler in node.handlers:
                    names = set(_named_types(handler.type))
                    broad = handler.type is None or bool(names & _BROAD)
                    if not broad or _reraises(handler):
                        continue
                    if _try_body_can_raise(program, fn, node, can_raise):
                        yield self.violation(
                            path,
                            handler,
                            f"broad except in {fn.qualname} can absorb a "
                            f"simulated fault raised inside its try body "
                            f"— catch specific exceptions or re-raise so "
                            f"the fault reaches its recovery site",
                        )
