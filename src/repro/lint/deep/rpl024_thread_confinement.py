"""RPL024 — thread confinement: cross-thread state needs a common lock.

RPL019 bans module-level mutable state across *process* boundaries,
where writes silently vanish. Threads are more dangerous in the
opposite way: writes *are* visible, torn and half-applied, the moment
another thread looks. This rule generalizes the check to threads: any
module-level dict/list/set in a serve/exec module — or any instance
field of a serve/exec class — that one thread root writes and another
reads with *no* lock in common at any access is unsynchronized shared
state. Unlike RPL021 (which fires on an *inconsistent* discipline,
guarded somewhere and bare elsewhere), RPL024 fires when there is no
discipline at all: nobody ever holds a lock, so nothing ever
serializes the two threads.

State confined to one thread root passes: a scheduler-private memo, a
handler-local buffer, anything only the main thread touches. So does
state guarded everywhere (RPL021's domain once any access is guarded).

Positive (flagged)::

    _LAST_SEEN = {}                       # module global

    def _loop(self):                      # scheduler thread
        _LAST_SEEN[job.id] = now          # bare write

    def _op_ping(self, message):          # handler thread
        return {"seen": len(_LAST_SEEN)}  # bare read, no common lock

Negative (clean)::

    def _loop(self):
        with self.cond:
            self._last_seen[job.id] = now

    def _op_ping(self, message):
        with self.cond:
            return {"seen": len(self._last_seen)}
"""

from __future__ import annotations

from typing import Iterator

from ..rules.base import Violation
from .base import DeepRule
from .concurrency import ConcurrencyAnalysis, field_groups, global_groups
from .program import Program

__all__ = ["ThreadConfinementRule"]


class ThreadConfinementRule(DeepRule):
    """Flag cross-thread mutable state with no lock in common."""

    code = "RPL024"
    name = "thread-confinement"
    rationale = (
        "mutable state written by one thread and read by another with "
        "no common lock is unsynchronized; confine it to one thread or "
        "guard every access with the same lock"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        analysis = ConcurrencyAnalysis.of(program)
        for group in global_groups(analysis):
            if not group.writes or not group.concurrent:
                continue
            if any(a.must for a in group.accesses):
                continue  # partially guarded: RPL021-shaped, not bare
            module, var = group.key
            witness = group.writes[0]
            yield self.violation(
                witness.fn.module.path,
                witness.node,
                f"module global '{var}' ({module}) is written on thread "
                f"root '{witness.root.name}' and reached from "
                f"{', '.join(group.thread_ids)} with no lock ever held; "
                f"confine it to one thread or guard every access",
            )
        for group in field_groups(analysis):
            if not group.writes or not group.concurrent:
                continue
            if any(a.must for a in group.accesses):
                continue  # some access guarded -> RPL021 territory
            cls, attr = group.key
            if not self._mutable_field(analysis, cls, attr):
                continue
            witness = group.writes[0]
            yield self.violation(
                witness.fn.module.path,
                witness.node,
                f"'{cls.rsplit('.', 1)[-1]}.{attr}' is mutable state "
                f"written on thread root '{witness.root.name}' and "
                f"reached from {', '.join(group.thread_ids)} with no "
                f"lock ever held; confine it to one thread or guard "
                f"every access",
            )

    @staticmethod
    def _mutable_field(
        analysis: ConcurrencyAnalysis, cls: str, attr: str
    ) -> bool:
        """Only container-typed fields: a scalar read is one bytecode op.

        Restricting the no-lock-anywhere case to containers keeps this
        rule about *torn* state (mid-resize dict reads, list append vs
        iterate) rather than benign monotonic flags, which RPL021
        already covers as soon as any path guards them.
        """
        ftype = analysis.types.field_type(cls, attr)
        return ftype is not None and ftype[0] == "elem"
