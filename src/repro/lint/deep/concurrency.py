"""Thread roots, lock discovery, and interprocedural lockset analysis.

The serving stack's correctness rests on a hand-maintained locking
discipline: socketserver handler threads, one scheduler thread, and the
main thread all share the daemon's registry, queue, and stats through a
single :class:`threading.Condition`. This module gives the concurrency
rules (RPL021-RPL024) the machinery to machine-check that discipline,
Eraser-style:

* **thread roots** — the entry points concurrency can start from:
  ``handle`` methods of socketserver handler classes plus every
  ``_op_*`` protocol method (the daemon dispatches them via
  ``getattr``, which no call graph resolves), the resolved ``target=``
  of every ``threading.Thread(...)`` call, and the public surface of
  any thread-spawning class standing in for the main thread;
* **lockset abstract interpretation** — a worklist pass per root that
  walks each reachable function lexically, tracking the *must*-hold
  (intersection over call paths) and *may*-hold (union) lock sets
  through ``with lock:`` blocks and explicit ``acquire``/``release``,
  and propagating entry locksets interprocedurally through the call
  graph;
* **typed receivers** — a light annotation-driven type environment
  (constructor assignments, parameter/return annotations, container
  element types) so ``job.state``, ``self.runner.cache.evictions``, or
  a ``payloads = job.payloads`` alias all attribute accesses to the
  class field they really touch.

Attribute calls resolve only through exact imports or the type
environment — never the whole-program same-name fallback — because a
race checker must not invent sharing that cannot happen. The walk stays
inside the RPL009 concurrency packages (``exec``/``serve``); calls that
leave them are checked for blocking behaviour at the boundary.

Everything is deterministic: roots, worklists, and event stores are
sorted, so two runs over the same tree produce byte-identical reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..source import dotted_parts
from .callgraph import _classify
from .hotpath import pool_dispatch
from .program import ClassInfo, FunctionInfo, ModuleInfo, Program

__all__ = [
    "CONCURRENT_PACKAGES",
    "LockInfo",
    "ThreadRoot",
    "FieldAccess",
    "GlobalAccess",
    "BlockingCall",
    "SyncOp",
    "ConcurrencyAnalysis",
    "field_groups",
    "global_groups",
]

#: packages allowed to spawn threads/processes (RPL009's concurrency doors)
CONCURRENT_PACKAGES = ("exec", "serve")

#: threading constructors whose instances are lock-like
_LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: socketserver bases whose subclasses run one thread per connection
_HANDLER_BASES = (
    "StreamRequestHandler", "DatagramRequestHandler", "BaseRequestHandler",
)

#: in-place mutators on the builtin containers
_MUTATORS = frozenset({
    "append", "add", "update", "setdefault", "clear", "extend", "insert",
    "pop", "popitem", "remove", "discard", "appendleft", "extendleft",
    "move_to_end",
})

#: constructors whose result is mutable shared state (module globals)
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
})

#: plain-name calls that block the calling thread
_BLOCKING_NAMES = frozenset({"host_sleep", "sleep", "open"})

#: attribute calls that block: socket, file/journal I/O, host sleeps
_BLOCKING_ATTRS = frozenset({
    "recv", "recv_into", "accept", "connect", "send", "sendall", "sendfile",
    "sleep", "host_sleep", "read", "readline", "readinto", "write", "flush",
    "fsync", "write_text", "write_bytes", "read_text", "read_bytes",
    "unlink", "mkdir", "replace", "rename", "rmdir",
})

#: container annotations whose last resolvable argument is the element
_CONTAINER_NAMES = frozenset({
    "List", "Sequence", "Iterable", "Iterator", "Dict", "Mapping",
    "MutableMapping", "Set", "FrozenSet", "DefaultDict", "OrderedDict",
    "Deque", "list", "dict", "set",
})

_INIT_METHODS = ("__init__", "__post_init__")


def _in_scope(module: ModuleInfo) -> bool:
    return any(pkg in module.name_parts for pkg in CONCURRENT_PACKAGES)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        return bool(parts) and parts[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _binds_locally(fn: FunctionInfo, name: str) -> bool:
    """True when ``name`` is a parameter or plain local of ``fn``."""
    node = fn.node
    args = node.args
    for arg in (
        args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        if arg.arg == name:
            return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global) and name in sub.names:
            return False
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            for t in ast.walk(sub.target):
                if isinstance(t, ast.Name) and t.id == name:
                    return True
    return False


# -- data records -----------------------------------------------------------


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock: a threading primitive bound to a stable id."""

    lock_id: str  # "pkg.mod.Class.attr" or "pkg.mod.attr"
    display: str  # how code spells it: "self.cond", "REGISTRY_LOCK"
    kind: str  # Condition | Lock | RLock | Semaphore | BoundedSemaphore


@dataclass(frozen=True)
class ThreadRoot:
    """One entry point a thread can start executing the program from."""

    name: str  # display: "handler:_op_submit", "thread:serve-scheduler"
    thread_id: str  # identity: roots sharing it run on the same thread(s)
    fn: FunctionInfo
    binding: Optional[ClassInfo]
    multi: bool  # True when many threads run this root concurrently


@dataclass(frozen=True)
class FieldAccess:
    """One read/write of a shared-class instance field under a lockset."""

    root: ThreadRoot
    fn: FunctionInfo
    node: ast.AST
    cls: str  # owner class qualname
    attr: str
    is_write: bool
    must: FrozenSet[str]


@dataclass(frozen=True)
class GlobalAccess:
    """One read/write of a module-level mutable under a lockset."""

    root: ThreadRoot
    fn: FunctionInfo
    node: ast.AST
    module: str  # owning module dotted name
    var: str
    is_write: bool
    must: FrozenSet[str]


@dataclass(frozen=True)
class BlockingCall:
    """A call that parks the thread, with the locks possibly still held."""

    root: ThreadRoot
    fn: FunctionInfo
    node: ast.AST
    reason: str  # what blocks: "host_sleep()", ".join()", "file write", ...
    may: FrozenSet[str]


@dataclass(frozen=True)
class SyncOp:
    """A wait/notify/notify_all on a discovered condition/lock."""

    root: ThreadRoot
    fn: FunctionInfo
    node: ast.AST
    lock: LockInfo
    kind: str  # wait | wait_for | notify | notify_all
    must: FrozenSet[str]
    may: FrozenSet[str]
    in_while: bool  # lexically inside a non-constant while loop


# -- the type environment ---------------------------------------------------

#: a light type: ("obj", cls_qualname) or ("elem", cls_qualname) for a
#: container whose elements are instances of that class
TypeRef = Tuple[str, str]


class _TypeEnv:
    """Annotation- and constructor-driven receiver typing for scope classes."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.scope_classes: Dict[str, ClassInfo] = {}
        #: (cls qualname, attr) -> TypeRef of the field's value
        self.field_types: Dict[Tuple[str, str], TypeRef] = {}
        #: cls qualname -> every instance-field name seen declared/assigned
        self.fields: Dict[str, Set[str]] = {}
        #: (cls qualname, attr) -> LockInfo for threading-primitive fields
        self.lock_fields: Dict[Tuple[str, str], LockInfo] = {}
        #: (module name, var) -> LockInfo for module-level locks
        self.global_locks: Dict[Tuple[str, str], LockInfo] = {}
        for name in sorted(program.modules):
            module = program.modules[name]
            if not _in_scope(module):
                continue
            for var in sorted(module.assigns):
                kind = self._lock_kind(module.assigns[var], module)
                if kind is not None:
                    self.global_locks[(module.name, var)] = LockInfo(
                        lock_id=f"{module.name}.{var}", display=var, kind=kind
                    )
            for cls_name in sorted(module.classes):
                cls = module.classes[cls_name]
                self.scope_classes[cls.qualname] = cls
        # second pass: field typing needs every scope class registered
        for qualname in sorted(self.scope_classes):
            self._collect_class(self.scope_classes[qualname])

    # -- construction --

    def _lock_kind(self, value: ast.expr, module: ModuleInfo) -> Optional[str]:
        """'Condition'/'Lock'/... when ``value`` constructs a threading lock."""
        if not isinstance(value, ast.Call):
            return None
        parts = dotted_parts(value.func)
        if not parts:
            return None
        resolved = module.source.imports.resolve(".".join(parts)) or ""
        if resolved.startswith("threading.") or (
            len(parts) >= 2 and parts[-2] == "threading"
        ):
            if parts[-1] in _LOCK_CONSTRUCTORS:
                return parts[-1]
        return None

    def _collect_class(self, cls: ClassInfo) -> None:
        fields = self.fields.setdefault(cls.qualname, set())
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.add(stmt.target.id)
                ref = self.annotation_type(stmt.annotation, cls.module)
                if ref is not None:
                    self.field_types[(cls.qualname, stmt.target.id)] = ref
        for mname in sorted(cls.methods):
            method = cls.methods[mname]
            init = mname in _INIT_METHODS
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    annotation = node.annotation
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                fields.add(target.attr)
                if not init:
                    continue
                key = (cls.qualname, target.attr)
                kind = (
                    self._lock_kind(value, cls.module)
                    if value is not None else None
                )
                if kind is not None:
                    self.lock_fields[key] = LockInfo(
                        lock_id=f"{cls.qualname}.{target.attr}",
                        display=f"self.{target.attr}",
                        kind=kind,
                    )
                    continue
                if key in self.field_types:
                    continue
                ref = None
                if annotation is not None:
                    ref = self.annotation_type(annotation, cls.module)
                if ref is None and value is not None:
                    ref = self._init_value_type(value, method, cls)
                if ref is not None:
                    self.field_types[key] = ref

    def _init_value_type(
        self, value: ast.expr, init: FunctionInfo, cls: ClassInfo
    ) -> Optional[TypeRef]:
        """Type ``self.x = <value>`` in __init__: constructor or parameter."""
        if isinstance(value, ast.Call):
            return self.constructed_type(value, cls.module)
        if isinstance(value, ast.Name):
            for arg in init.node.args.args + init.node.args.kwonlyargs:
                if arg.arg == value.id and arg.annotation is not None:
                    return self.annotation_type(arg.annotation, cls.module)
        return None

    # -- resolution --

    def _class_ref(
        self, node: ast.expr, module: ModuleInfo
    ) -> Optional[ClassInfo]:
        parts = dotted_parts(node)
        if not parts:
            return None
        dotted = module.source.imports.resolve(".".join(parts)) or ".".join(
            parts
        )
        dotted = module.resolve_relative(dotted)
        found = self.program.resolve_class(dotted, module)
        if found is not None and found.qualname in self.scope_classes:
            return found
        return None

    def annotation_type(
        self, node: Optional[ast.expr], module: ModuleInfo
    ) -> Optional[TypeRef]:
        """TypeRef of an annotation expression, seeing through Optional etc."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            cls = self._class_ref(node, module)
            return ("obj", cls.qualname) if cls is not None else None
        if isinstance(node, ast.Subscript):
            base = dotted_parts(node.value)
            if not base:
                return None
            inner = node.slice
            if isinstance(inner, ast.Index):  # pragma: no cover - py<3.9
                inner = inner.value  # type: ignore[attr-defined]
            elems = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            if base[-1] in ("Optional", "Union"):
                for elem in elems:
                    ref = self.annotation_type(elem, module)
                    if ref is not None:
                        return ref
                return None
            if base[-1] in _CONTAINER_NAMES:
                for elem in reversed(elems):
                    ref = self.annotation_type(elem, module)
                    if ref is not None and ref[0] == "obj":
                        return ("elem", ref[1])
        return None

    def constructed_type(
        self, call: ast.Call, module: ModuleInfo
    ) -> Optional[TypeRef]:
        cls = self._class_ref(call.func, module)
        return ("obj", cls.qualname) if cls is not None else None

    def field_type(self, cls_qualname: str, attr: str) -> Optional[TypeRef]:
        cls = self.scope_classes.get(cls_qualname)
        if cls is None:
            return None
        for c in self.program.mro(cls):
            ref = self.field_types.get((c.qualname, attr))
            if ref is not None:
                return ref
        return None

    def field_owner(self, cls_qualname: str, attr: str) -> Optional[str]:
        """The MRO class that declares ``attr``, for stable field identity."""
        cls = self.scope_classes.get(cls_qualname)
        if cls is None:
            return None
        for c in self.program.mro(cls):
            if attr in self.fields.get(c.qualname, ()):
                return c.qualname
        return None

    def lock_field(
        self, cls_qualname: str, attr: str
    ) -> Optional[LockInfo]:
        cls = self.scope_classes.get(cls_qualname)
        if cls is None:
            return None
        for c in self.program.mro(cls):
            info = self.lock_fields.get((c.qualname, attr))
            if info is not None:
                return info
        return None


# -- the analysis -----------------------------------------------------------

_NodeKey = Tuple[str, str]  # (fn qualname, binding qualname or "")


class ConcurrencyAnalysis:
    """Per-program lockset analysis shared by the four concurrency rules."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.types = _TypeEnv(program)
        self.roots = self._discover_roots()
        self.field_accesses: List[FieldAccess] = []
        self.global_accesses: List[GlobalAccess] = []
        self.blocking_calls: List[BlockingCall] = []
        self.sync_ops: List[SyncOp] = []
        #: (held, acquired) -> (path, node, fn qualname) first witness
        self.order_edges: Dict[Tuple[str, str], Tuple[str, ast.AST, str]] = {}
        self.shared_classes = self._shared_classes()
        for root in self.roots:
            self._run_root(root)

    @classmethod
    def of(cls, program: Program) -> "ConcurrencyAnalysis":
        """The memoized analysis for ``program`` (one build, four rules)."""
        cached = getattr(program, "_concurrency_analysis", None)
        if cached is None:
            cached = cls(program)
            program._concurrency_analysis = cached  # type: ignore[attr-defined]
        return cached

    # -- thread-root discovery --

    def _scope_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.program.functions):
            fn = self.program.functions[qualname]
            if _in_scope(fn.module):
                yield fn

    def _is_handler_class(self, cls: ClassInfo) -> bool:
        return any(
            ref.rsplit(".", 1)[-1] in _HANDLER_BASES for ref in cls.base_refs
        )

    def _thread_target(
        self, call: ast.Call, fn: FunctionInfo
    ) -> Optional[Tuple[FunctionInfo, Optional[ClassInfo], str]]:
        """(target fn, binding, display name) of a Thread(...) call, if any."""
        parts = dotted_parts(call.func)
        if not parts:
            return None
        resolved = fn.module.source.imports.resolve(".".join(parts)) or ""
        if resolved != "threading.Thread" and parts[-1] != "Thread":
            return None
        target_expr: Optional[ast.expr] = None
        display = ""
        for kw in call.keywords:
            if kw.arg == "target":
                target_expr = kw.value
            elif kw.arg == "name" and isinstance(kw.value, ast.Constant):
                display = str(kw.value.value)
        if target_expr is None:
            return None
        if isinstance(target_expr, ast.Attribute):
            if (
                isinstance(target_expr.value, ast.Name)
                and target_expr.value.id == "self"
                and fn.owner is not None
            ):
                target = self.program.resolve_method(
                    fn.owner, target_expr.attr
                )
                if target is not None and _in_scope(target.module):
                    return target, fn.owner, display
            return None
        if isinstance(target_expr, ast.Name):
            target = fn.module.functions.get(target_expr.id)
            if target is not None:
                return target, None, display
        return None

    def _discover_roots(self) -> List[ThreadRoot]:
        roots: Dict[Tuple[str, str], ThreadRoot] = {}

        def add(root: ThreadRoot) -> None:
            roots.setdefault((root.thread_id, root.fn.qualname), root)

        spawners: Set[str] = set()  # class qualnames that start threads
        targets: Set[str] = set()  # fn qualnames that run on spawned threads
        for fn in self._scope_functions():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                hit = self._thread_target(node, fn)
                if hit is None:
                    parts = dotted_parts(node.func)
                    if parts and parts[-1] == "Thread" and fn.owner is not None:
                        spawners.add(fn.owner.qualname)
                    continue
                target, binding, display = hit
                if fn.owner is not None:
                    spawners.add(fn.owner.qualname)
                targets.add(target.qualname)
                add(ThreadRoot(
                    name=f"thread:{display or target.name}",
                    thread_id=f"thread:{target.qualname}",
                    fn=target,
                    binding=binding,
                    multi=False,
                ))
        for qualname in sorted(self.types.scope_classes):
            cls = self.types.scope_classes[qualname]
            if self._is_handler_class(cls):
                handle = cls.methods.get("handle")
                if handle is not None:
                    add(ThreadRoot(
                        name=f"handler:{cls.name}.handle",
                        thread_id=f"handler:{cls.qualname}",
                        fn=handle,
                        binding=cls,
                        multi=True,
                    ))
            for mname in sorted(cls.methods):
                # protocol ops dispatch via getattr(self, f"_op_{op}") —
                # statically unresolvable, so each is its own handler root
                if mname.startswith("_op_"):
                    add(ThreadRoot(
                        name=f"handler:{cls.name}.{mname}",
                        thread_id=f"handler:{cls.qualname}",
                        fn=cls.methods[mname],
                        binding=cls,
                        multi=True,
                    ))
        for qualname in sorted(spawners):
            cls = self.types.scope_classes.get(qualname)
            if cls is None:
                continue
            # the thread-spawning class's public surface stands in for
            # the main thread (its CLI/test drivers)
            for mname in sorted(cls.methods):
                method = cls.methods[mname]
                if mname.startswith("_") and mname != "__init__":
                    continue
                if mname == "handle" or method.qualname in targets:
                    continue
                add(ThreadRoot(
                    name=f"main:{cls.name}.{mname}",
                    thread_id="main",
                    fn=method,
                    binding=cls,
                    multi=False,
                ))
        return sorted(roots.values(), key=lambda r: (r.name, r.fn.qualname))

    def _shared_classes(self) -> Set[str]:
        """Classes whose instances can actually be seen by two threads.

        Seed: every class that owns roots on two thread identities (or
        a self-concurrent root). Closure: follow typed field references
        — an object is shareable only if it hangs off a shared one. A
        class instantiated fresh inside one root's call chain (a
        per-run ``_GridRun``, a local buffer) never enters the set, so
        its fields are thread-confined by construction, not by luck.
        """
        by_class: Dict[str, Set[str]] = {}
        multi: Set[str] = set()
        for root in self.roots:
            if root.binding is None:
                continue
            by_class.setdefault(
                root.binding.qualname, set()
            ).add(root.thread_id)
            if root.multi:
                multi.add(root.binding.qualname)
        shared: Set[str] = set()
        work = sorted(
            q for q, ids in by_class.items() if len(ids) >= 2 or q in multi
        )
        while work:
            qualname = work.pop()
            if qualname in shared:
                continue
            shared.add(qualname)
            cls = self.types.scope_classes.get(qualname)
            if cls is None:
                continue
            for c in self.program.mro(cls):
                shared.add(c.qualname)
                for key in sorted(self.types.field_types):
                    if key[0] == c.qualname:
                        work.append(self.types.field_types[key][1])
        return shared

    # -- per-root lockset fixpoint --

    def _run_root(self, root: ThreadRoot) -> None:
        entries: Dict[_NodeKey, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        nodes: Dict[_NodeKey, Tuple[FunctionInfo, Optional[ClassInfo]]] = {}
        key0 = (root.fn.qualname, root.binding.qualname if root.binding else "")
        entries[key0] = (frozenset(), frozenset())
        nodes[key0] = (root.fn, root.binding)
        worklist = [key0]
        while worklist:
            key = worklist.pop(0)
            fn, binding = nodes[key]
            must, may = entries[key]

            def flow(
                target: FunctionInfo,
                tbinding: Optional[ClassInfo],
                tmust: FrozenSet[str],
                tmay: FrozenSet[str],
            ) -> None:
                if not _in_scope(target.module):
                    return
                tkey = (
                    target.qualname,
                    tbinding.qualname if tbinding else "",
                )
                nodes.setdefault(tkey, (target, tbinding))
                old = entries.get(tkey)
                new = (
                    (tmust, tmay) if old is None
                    else (old[0] & tmust, old[1] | tmay)
                )
                if old != new:
                    entries[tkey] = new
                    if tkey not in worklist:
                        worklist.append(tkey)
            walker = _Walker(self, root, fn, binding, collect=False, flow=flow)
            walker.run(set(must), set(may))
            worklist.sort()
        for key in sorted(entries):
            fn, binding = nodes[key]
            must, may = entries[key]
            if fn.name in _INIT_METHODS:
                continue  # constructors publish before threads can see
            walker = _Walker(self, root, fn, binding, collect=True, flow=None)
            walker.run(set(must), set(may))

    def record_edge(
        self, held: str, acquired: str, path: str, node: ast.AST, fn: str
    ) -> None:
        self.order_edges.setdefault((held, acquired), (path, node, fn))


# -- grouping helpers shared by RPL021/RPL024 -------------------------------


@dataclass
class AccessGroup:
    """Every access to one shared location, with its concurrency verdict."""

    key: Tuple[str, str]  # (cls qualname, attr) or (module, var)
    accesses: List[FieldAccess] = field(default_factory=list)

    @property
    def writes(self) -> List[FieldAccess]:
        return [a for a in self.accesses if a.is_write]

    @property
    def thread_ids(self) -> List[str]:
        return sorted({a.root.thread_id for a in self.accesses})

    @property
    def concurrent(self) -> bool:
        """Can two threads race on this location?"""
        if len(self.thread_ids) >= 2:
            return True
        return any(a.root.multi for a in self.accesses)

    @property
    def candidate_locks(self) -> FrozenSet[str]:
        """Eraser's candidate set: locks held at *every* access."""
        locksets = [a.must for a in self.accesses]
        out = locksets[0]
        for held in locksets[1:]:
            out = out & held
        return out


def _sort_key(access) -> Tuple[str, int, int, str]:
    node = access.node
    return (
        access.fn.module.path,
        getattr(node, "lineno", 1),
        getattr(node, "col_offset", 0),
        access.root.name,
    )


def field_groups(analysis: ConcurrencyAnalysis) -> List[AccessGroup]:
    """Per-(class, field) access groups, deterministically ordered."""
    groups: Dict[Tuple[str, str], AccessGroup] = {}
    for access in analysis.field_accesses:
        group = groups.setdefault(
            (access.cls, access.attr),
            AccessGroup(key=(access.cls, access.attr)),
        )
        group.accesses.append(access)
    for group in groups.values():
        group.accesses.sort(key=_sort_key)
    return [groups[key] for key in sorted(groups)]


def global_groups(analysis: ConcurrencyAnalysis) -> List[AccessGroup]:
    """Per-(module, variable) access groups for module-level mutables."""
    groups: Dict[Tuple[str, str], AccessGroup] = {}
    for access in analysis.global_accesses:
        group = groups.setdefault(
            (access.module, access.var),
            AccessGroup(key=(access.module, access.var)),
        )
        group.accesses.append(access)  # type: ignore[arg-type]
    for group in groups.values():
        group.accesses.sort(key=_sort_key)
    return [groups[key] for key in sorted(groups)]


# -- the lexical lockset walker ---------------------------------------------


class _Walker:
    """One pass over a function body tracking must/may-held locksets."""

    def __init__(
        self,
        analysis: ConcurrencyAnalysis,
        root: ThreadRoot,
        fn: FunctionInfo,
        binding: Optional[ClassInfo],
        collect: bool,
        flow,
    ) -> None:
        self.analysis = analysis
        self.types = analysis.types
        self.program = analysis.program
        self.root = root
        self.fn = fn
        self.binding = binding
        self.collect = collect
        self.flow = flow
        self.while_depth = 0
        self.env = self._local_env()
        self.aliases = self._alias_map()

    # -- local typing --

    def _local_env(self) -> Dict[str, TypeRef]:
        env: Dict[str, TypeRef] = {}
        module = self.fn.module
        node = self.fn.node
        if self.binding is not None and (node.args.args or node.args.posonlyargs):
            first = (node.args.posonlyargs + node.args.args)[0]
            if first.arg in ("self", "cls"):
                env[first.arg] = ("obj", self.binding.qualname)
        for arg in (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        ):
            if arg.annotation is not None and arg.arg not in env:
                ref = self.types.annotation_type(arg.annotation, module)
                if ref is not None:
                    env[arg.arg] = ref
        assigns: List[ast.stmt] = [
            sub for sub in ast.walk(node)
            if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.For,
                                ast.AsyncFor))
        ]
        assigns.sort(key=lambda s: (s.lineno, s.col_offset))
        for _ in range(2):  # two passes settle simple forward chains
            for stmt in assigns:
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if not isinstance(stmt.target, ast.Name):
                        continue
                    ref = self.expr_type(stmt.iter, env)
                    if ref is not None and ref[0] == "elem":
                        env[stmt.target.id] = ("obj", ref[1])
                    continue
                target = (
                    stmt.targets[0] if isinstance(stmt, ast.Assign)
                    else stmt.target
                )
                if not isinstance(target, ast.Name):
                    continue
                ref: Optional[TypeRef] = None
                if isinstance(stmt, ast.AnnAssign):
                    ref = self.types.annotation_type(stmt.annotation, module)
                if ref is None and getattr(stmt, "value", None) is not None:
                    ref = self.expr_type(stmt.value, env)
                if ref is not None:
                    env[target.id] = ref
        return env

    def _alias_map(self) -> Dict[str, Tuple[str, str]]:
        """Locals bound directly to a shared field (``payloads = job.payloads``)."""
        aliases: Dict[str, Tuple[str, str]] = {}
        for sub in ast.walk(self.fn.node):
            if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                continue
            target = (
                sub.targets[0]
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1
                else sub.target if isinstance(sub, ast.AnnAssign) else None
            )
            value = sub.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Attribute)
            ):
                ref = self.expr_type(value.value, self.env)
                if ref is not None and ref[0] == "obj":
                    owner = self.types.field_owner(ref[1], value.attr)
                    if owner is not None:
                        # only track container-valued fields: an alias to
                        # an immutable value is a copy, not shared state
                        ftype = self.types.field_type(ref[1], value.attr)
                        if ftype is None or ftype[0] == "elem":
                            aliases[target.id] = (owner, value.attr)
        return aliases

    def expr_type(
        self, node: ast.expr, env: Dict[str, TypeRef]
    ) -> Optional[TypeRef]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.expr_type(node.value, env)
            if base is not None and base[0] == "obj":
                return self.types.field_type(base[1], node.attr)
            return None
        if isinstance(node, ast.Subscript):
            base = self.expr_type(node.value, env)
            if base is not None and base[0] == "elem":
                return ("obj", base[1])
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return self.types.constructed_type(node, self.fn.module)
            if isinstance(func, ast.Attribute):
                if func.attr in ("values", "copy"):
                    return self.expr_type(func.value, env)
                if func.attr in ("get", "pop", "popleft", "take"):
                    base = self.expr_type(func.value, env)
                    if base is not None and base[0] == "elem":
                        return ("obj", base[1])
                base = self.expr_type(func.value, env)
                if base is not None and base[0] == "obj":
                    cls = self.types.scope_classes.get(base[1])
                    if cls is not None:
                        method = self.program.resolve_method(cls, func.attr)
                        if method is not None:
                            return self.types.annotation_type(
                                method.node.returns, method.module
                            )
            return None
        return None

    # -- lock resolution --

    def lock_at(self, expr: ast.expr) -> Optional[LockInfo]:
        if isinstance(expr, ast.Name):
            info = self.types.global_locks.get(
                (self.fn.module.name, expr.id)
            )
            if info is not None and not _binds_locally(self.fn, expr.id):
                return info
            resolved = self.fn.module.source.imports.resolve(expr.id)
            if resolved:
                dotted = self.fn.module.resolve_relative(resolved)
                owner, _, var = dotted.rpartition(".")
                return self.types.global_locks.get((owner, var))
            return None
        if isinstance(expr, ast.Attribute):
            base = self.expr_type(expr.value, self.env)
            if base is not None and base[0] == "obj":
                return self.types.lock_field(base[1], expr.attr)
        return None

    # -- driving --

    def run(self, must: Set[str], may: Set[str]) -> None:
        self._stmts(self.fn.node.body, must, may)

    def _stmts(
        self, body: List[ast.stmt], must: Set[str], may: Set[str]
    ) -> None:
        for stmt in body:
            self._stmt(stmt, must, may)

    def _stmt(self, stmt: ast.stmt, must: Set[str], may: Set[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def (progress hooks, closures) is approximated at
            # its definition point: the lockset there is the best static
            # guess for the lockset at its eventual call sites
            self._stmts(stmt.body, set(must), set(may))
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner_must, inner_may = set(must), set(may)
            for item in stmt.items:
                self._scan(item.context_expr, inner_must, inner_may)
                lock = self.lock_at(item.context_expr)
                if lock is not None:
                    for held in sorted(inner_may):
                        if held != lock.lock_id:
                            self.analysis.record_edge(
                                held, lock.lock_id, self.fn.module.path,
                                item.context_expr, self.fn.qualname,
                            )
                    inner_must.add(lock.lock_id)
                    inner_may.add(lock.lock_id)
            self._stmts(stmt.body, inner_must, inner_may)
            return
        if isinstance(stmt, ast.If):
            self._scan(stmt.test, must, may)
            self._stmts(stmt.body, set(must), set(may))
            self._stmts(stmt.orelse, set(must), set(may))
            return
        if isinstance(stmt, ast.While):
            self._scan(stmt.test, must, may)
            trivial = (
                isinstance(stmt.test, ast.Constant)
                and stmt.test.value is True
            )
            if not trivial:
                self.while_depth += 1
            self._stmts(stmt.body, set(must), set(may))
            if not trivial:
                self.while_depth -= 1
            self._stmts(stmt.orelse, set(must), set(may))
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan(stmt.iter, must, may)
            self._stmts(stmt.body, set(must), set(may))
            self._stmts(stmt.orelse, set(must), set(may))
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body, set(must), set(may))
            for handler in stmt.handlers:
                self._stmts(handler.body, set(must), set(may))
            self._stmts(stmt.orelse, set(must), set(may))
            self._stmts(stmt.finalbody, set(must), set(may))
            return
        self._scan(stmt, must, may)

    # -- flat statement scanning --

    def _write_marks(self, stmt: ast.AST) -> Set[int]:
        """ids of Attribute/Name nodes this statement writes through."""
        marks: Set[int] = set()

        def mark(target: ast.expr) -> None:
            if isinstance(target, (ast.Attribute, ast.Name)):
                marks.add(id(target))
            elif isinstance(target, ast.Subscript):
                mark(target.value)
            elif isinstance(target, ast.Starred):
                mark(target.value)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    mark(elt)

        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                mark(target)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            mark(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                mark(target)
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATORS
            ):
                mark(sub.func.value)
        return marks

    def _scan(self, node: ast.AST, must: Set[str], may: Set[str]) -> None:
        marks = self._write_marks(node)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call(sub, must, may)
            elif isinstance(sub, ast.Attribute):
                self._attribute(sub, sub.ctx, marks, must)
            elif isinstance(sub, ast.Name):
                self._name(sub, sub.ctx, marks, must, node)

    def _attribute(
        self, node: ast.Attribute, ctx: ast.expr_context,
        marks: Set[int], must: Set[str],
    ) -> None:
        if not self.collect:
            return
        base = self.expr_type(node.value, self.env)
        if base is None or base[0] != "obj":
            return
        owner = self.types.field_owner(base[1], node.attr)
        if owner is None or base[1] not in self.analysis.shared_classes:
            return
        is_write = (
            id(node) in marks or isinstance(ctx, (ast.Store, ast.Del))
        )
        self.analysis.field_accesses.append(FieldAccess(
            root=self.root, fn=self.fn, node=node, cls=owner,
            attr=node.attr, is_write=is_write, must=frozenset(must),
        ))

    def _name(
        self, node: ast.Name, ctx: ast.expr_context,
        marks: Set[int], must: Set[str], stmt: ast.AST,
    ) -> None:
        if not self.collect:
            return
        alias = self.aliases.get(node.id)
        if alias is not None and alias[0] not in self.analysis.shared_classes:
            alias = None
        if alias is not None and not isinstance(ctx, ast.Store):
            self.analysis.field_accesses.append(FieldAccess(
                root=self.root, fn=self.fn, node=node, cls=alias[0],
                attr=alias[1], is_write=id(node) in marks,
                must=frozenset(must),
            ))
            return
        module = self.fn.module
        owner: Optional[str] = None
        var = node.id
        if (
            var in module.assigns
            and _is_mutable_value(module.assigns[var])
            and not _binds_locally(self.fn, var)
        ):
            owner = module.name
        else:
            resolved = module.source.imports.resolve(var)
            if resolved:
                dotted = module.resolve_relative(resolved)
                mod_name, _, attr = dotted.rpartition(".")
                other = self.program.modules.get(mod_name)
                if (
                    other is not None and _in_scope(other)
                    and attr in other.assigns
                    and _is_mutable_value(other.assigns[attr])
                ):
                    owner, var = other.name, attr
        if owner is None:
            return
        is_write = id(node) in marks or (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == node.id
        )
        self.analysis.global_accesses.append(GlobalAccess(
            root=self.root, fn=self.fn, node=node, module=owner, var=var,
            is_write=is_write, must=frozenset(must),
        ))

    # -- call handling --

    def _blocking_reason(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.fn.module.source.imports.resolve(func.id) or ""
            simple = resolved.rsplit(".", 1)[-1] if resolved else func.id
            if simple in _BLOCKING_NAMES:
                return f"{simple}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        if pool_dispatch(call) is not None:
            return f"pool .{func.attr}()"
        if func.attr in ("join", "result") and not call.args:
            return f".{func.attr}()"
        if func.attr in _BLOCKING_ATTRS:
            return f".{func.attr}()"
        return None

    def _resolve_call(
        self, call: ast.Call
    ) -> List[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        """Precise resolution: exact names, self/super, typed receivers.

        Never falls back to every same-named method — a race checker
        must not conjure sharing through edges that cannot execute.
        """
        site = _classify(call)
        if site is None:
            return []
        program, fn, binding = self.program, self.fn, self.binding
        if site.kind == "self":
            cls = binding or fn.owner
            if cls is None:
                return []
            target = program.resolve_method(cls, site.name)
            return [(target, cls)] if target else []
        if site.kind == "super":
            cls = binding or fn.owner
            if cls is None:
                return []
            target = program.resolve_super_method(cls, fn.owner, site.name)
            return [(target, cls)] if target else []
        if site.kind == "name":
            module = fn.module
            resolved = module.source.imports.resolve(site.name) or site.name
            dotted = module.resolve_relative(resolved)
            local = module.functions.get(site.name)
            if local is not None:
                return [(local, None)]
            found = program.functions.get(dotted)
            if found is not None:
                return [(found, found.owner)]
            cls = program.resolve_class(dotted, module)
            if cls is not None:
                init = program.resolve_method(cls, "__init__")
                return [(init, cls)] if init else []
            return []
        # attr: exact dotted resolution, else the receiver's static type
        func = call.func
        assert isinstance(func, ast.Attribute)
        if site.chain is not None:
            module = fn.module
            resolved = module.source.imports.resolve(".".join(site.chain))
            dotted = module.resolve_relative(
                resolved or ".".join(site.chain)
            )
            found = program.functions.get(dotted)
            if found is not None:
                return [(found, found.owner)]
        base = self.expr_type(func.value, self.env)
        if base is not None and base[0] == "obj":
            cls = self.types.scope_classes.get(base[1])
            if cls is not None:
                target = program.resolve_method(cls, site.name)
                if target is not None:
                    return [(target, cls)]
        return []

    def _call(self, call: ast.Call, must: Set[str], may: Set[str]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            lock = self.lock_at(func.value)
            if lock is not None:
                if func.attr == "acquire":
                    for held in sorted(may):
                        if held != lock.lock_id:
                            self.analysis.record_edge(
                                held, lock.lock_id, self.fn.module.path,
                                call, self.fn.qualname,
                            )
                    must.add(lock.lock_id)
                    may.add(lock.lock_id)
                    return
                if func.attr == "release":
                    must.discard(lock.lock_id)
                    may.discard(lock.lock_id)
                    return
                if func.attr in ("wait", "wait_for", "notify", "notify_all"):
                    if self.collect:
                        self.analysis.sync_ops.append(SyncOp(
                            root=self.root, fn=self.fn, node=call,
                            lock=lock, kind=func.attr,
                            must=frozenset(must), may=frozenset(may),
                            in_while=self.while_depth > 0,
                        ))
                    return
        if self.collect and may:
            reason = self._blocking_reason(call)
            if reason is not None:
                self.analysis.blocking_calls.append(BlockingCall(
                    root=self.root, fn=self.fn, node=call, reason=reason,
                    may=frozenset(may),
                ))
        targets = self._resolve_call(call)
        if self.flow is not None:
            for target, tbinding in targets:
                self.flow(target, tbinding, frozenset(must), frozenset(may))
            # a bound method handed over as a callable (``sorted(key=
            # self._service_key)``, ``on_cell=self._on_cell``) is
            # modelled as invoked here, under the call site's locksets;
            # ``Thread(target=...)`` is excluded — the target is its
            # own thread root and starts lock-free
            if self.analysis._thread_target(call, self.fn) is None:
                for arg in list(call.args) + [
                    kw.value for kw in call.keywords
                ]:
                    callback = self._callback_target(arg)
                    if callback is not None:
                        self.flow(
                            callback[0], callback[1],
                            frozenset(must), frozenset(may),
                        )

    def _callback_target(
        self, arg: ast.expr
    ) -> Optional[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        if isinstance(arg, ast.Attribute) and isinstance(
            arg.value, ast.Name
        ) and arg.value.id == "self":
            cls = self.binding or self.fn.owner
            if cls is not None:
                target = self.program.resolve_method(cls, arg.attr)
                if target is not None:
                    return target, cls
        elif isinstance(arg, ast.Name):
            target = self.fn.module.functions.get(arg.id)
            if target is not None:
                return target, None
        return None
