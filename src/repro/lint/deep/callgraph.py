"""Conservative call-site extraction and target resolution.

Each function body yields a list of :class:`CallSite` records classified
by shape — ``self.m(...)``, ``super().m(...)``, a plain name call, or an
attribute call on some other receiver. Resolution maps a site to the
program functions it may invoke: self/super calls resolve exactly
through the concrete class's static MRO; name calls resolve through the
import map; attribute calls try an exact dotted resolution first and
fall back to *every* same-named method in the program (sound
over-approximation — the deep rules would rather follow one edge too
many than miss a primitive call).

A call site is additionally marked as a *cluster primitive site* when it
invokes one of the :data:`PRIMITIVES` through a receiver chain ending in
``cluster`` (``cluster.shuffle``, ``self.cluster.advance``,
``ctx.cluster.advance``). Those sites are what RPL011/RPL013/RPL014
charge against the engines' declared models.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..source import dotted_parts
from .program import ClassInfo, FunctionInfo, Program

__all__ = ["PRIMITIVES", "CallSite", "call_sites", "resolve_targets"]

#: the full Cluster cost-model surface (cluster/cluster.py)
PRIMITIVES = frozenset({
    "advance",
    "parallel_compute",
    "uniform_compute",
    "shuffle",
    "gather_to_master",
    "broadcast",
    "barrier",
    "hdfs_read",
    "hdfs_write",
    "local_disk_io",
    "sample_memory",
})


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    kind: str  # "self" | "super" | "name" | "attr"
    name: str  # called method/function simple name
    chain: Optional[Tuple[str, ...]]  # dotted receiver chain, when named
    primitive: Optional[str]  # set when this is a cluster primitive site


def _classify(call: ast.Call) -> Optional[CallSite]:
    func = call.func
    if isinstance(func, ast.Name):
        return CallSite(
            node=call, kind="name", name=func.id, chain=(func.id,),
            primitive=None,
        )
    if not isinstance(func, ast.Attribute):
        return None
    parts = dotted_parts(func)
    if parts is None:
        value = func.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "super"
        ):
            return CallSite(
                node=call, kind="super", name=func.attr, chain=None,
                primitive=None,
            )
        return CallSite(
            node=call, kind="attr", name=func.attr, chain=None, primitive=None
        )
    chain = tuple(parts)
    primitive = None
    if func.attr in PRIMITIVES and len(chain) >= 2 and chain[-2] == "cluster":
        primitive = func.attr
    if chain[0] == "self" and len(chain) == 2:
        return CallSite(
            node=call, kind="self", name=func.attr, chain=chain,
            primitive=primitive,
        )
    return CallSite(
        node=call, kind="attr", name=func.attr, chain=chain,
        primitive=primitive,
    )


def call_sites(fn: FunctionInfo) -> List[CallSite]:
    """Every call expression in ``fn``'s body (nested defs included)."""
    sites = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            site = _classify(node)
            if site is not None:
                sites.append(site)
    return sites


def resolve_targets(
    program: Program,
    site: CallSite,
    current: FunctionInfo,
    binding: Optional[ClassInfo],
) -> List[Tuple[FunctionInfo, Optional[ClassInfo]]]:
    """The program functions a call site may invoke, with self bindings."""
    if site.kind == "self":
        cls = binding or current.owner
        if cls is None:
            return []
        target = program.resolve_method(cls, site.name)
        return [(target, cls)] if target else []
    if site.kind == "super":
        cls = binding or current.owner
        if cls is None:
            return []
        target = program.resolve_super_method(cls, current.owner, site.name)
        return [(target, cls)] if target else []
    if site.kind == "name":
        module = current.module
        resolved = module.source.imports.resolve(site.name) or site.name
        dotted = module.resolve_relative(resolved)
        # same-module function first, then the fully qualified name
        local = module.functions.get(dotted)
        if local is not None:
            return [(local, None)]
        fn = program.functions.get(dotted)
        if fn is not None:
            return [(fn, fn.owner)]
        # constructing a class runs its __init__
        cls = program.resolve_class(dotted, module)
        if cls is not None:
            init = program.resolve_method(cls, "__init__")
            return [(init, cls)] if init else []
        return []
    # attr: exact dotted resolution, else every same-named method
    if site.chain is not None:
        module = current.module
        resolved = module.source.imports.resolve(".".join(site.chain))
        dotted = module.resolve_relative(resolved or ".".join(site.chain))
        fn = program.functions.get(dotted)
        if fn is not None:
            return [(fn, fn.owner)]
        owner_name, _, method = dotted.rpartition(".")
        cls = program.classes.get(owner_name)
        if cls is not None:
            target = program.resolve_method(cls, method)
            if target is not None:
                return [(target, cls)]
    candidates = program.methods_by_name.get(site.name, [])
    return [(fn, fn.owner) for fn in candidates]
