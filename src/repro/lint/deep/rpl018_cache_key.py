"""RPL018 — cache-key soundness: every result input must reach the key.

The content-addressed result cache replays a cell instead of running it
whenever the key matches. That is only sound if *everything that can
change a RunResult* is folded into the key — the inverse of RPL012's
determinism taint: RPL012 keeps nondeterminism out of the result cone,
this rule keeps the result cone's inputs *in* the cache key. A missed
input is a silent stale-cache bug: edit a cost model the key does not
cover and every subsequent grid quietly replays wrong numbers.

Two statically checkable halves:

* **code coverage** — the set of packages whose source the key digests
  (``_RESULT_PACKAGES`` in ``exec/cache.py``) must contain every
  package reachable from the result-producing roots (each concrete
  engine's module and ``run_cell``'s module) over module-level imports.
  ``if TYPE_CHECKING:`` blocks and function-local imports are excluded:
  they cannot affect a result at run time from those roots.
* **parameter coverage** — every parameter of ``run_cell`` (the single
  entry point that produces a ``RunResult``) must appear as a field in
  ``cell_key``'s canonical dict (``workload_name`` matches the
  ``"workload"`` key — the ``_name`` suffix is normalized).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..rules.base import Violation
from .base import DeepRule, concrete_engines
from .program import ModuleInfo, Program

__all__ = ["CacheKeySoundnessRule"]


def _is_type_checking_if(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.If):
        return False
    test = stmt.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _module_level_imports(module: ModuleInfo) -> Iterator[ast.stmt]:
    """Top-level import statements that execute at run time.

    Recurses into plain ``if``/``try`` blocks (conditional-import
    idiom) but not into ``if TYPE_CHECKING:`` or any function/class
    body — those imports never run when the module is imported.
    """
    stack: List[ast.stmt] = list(module.source.tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif isinstance(stmt, ast.If) and not _is_type_checking_if(stmt):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


def _imported_modules(program: Program, module: ModuleInfo) -> List[ModuleInfo]:
    """Program modules this module imports at module level."""
    found: Dict[str, ModuleInfo] = {}
    for stmt in _module_level_imports(module):
        if isinstance(stmt, ast.Import):
            dotted_names = [alias.name for alias in stmt.names]
        else:
            base = ("." * stmt.level) + (stmt.module or "")
            resolved_base = module.resolve_relative(base) if base else ""
            dotted_names = []
            if resolved_base:
                dotted_names.append(resolved_base)
            for alias in stmt.names:
                if resolved_base:
                    dotted_names.append(f"{resolved_base}.{alias.name}")
        for dotted in dotted_names:
            # importing a.b.c executes a/__init__ and a.b/__init__ too,
            # so the closure includes every ancestor package (the root
            # package itself is left out: its __init__ is re-exports
            # the digest does not cover)
            parts = dotted.split(".")
            for depth in range(2, len(parts) + 1):
                target = program.modules.get(".".join(parts[:depth]))
                if target is not None:
                    found[target.name] = target
    return [found[name] for name in sorted(found)]


def _result_module_closure(program: Program) -> List[ModuleInfo]:
    """Modules reachable over run-time imports from the result roots."""
    roots: Dict[str, ModuleInfo] = {}
    for engine in concrete_engines(program):
        roots[engine.module.name] = engine.module
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        if fn.name == "run_cell" and fn.owner is None:
            roots[fn.module.name] = fn.module
    seen: Set[str] = set(roots)
    frontier = [roots[name] for name in sorted(roots)]
    order: List[ModuleInfo] = []
    while frontier:
        nxt: List[ModuleInfo] = []
        for module in frontier:
            order.append(module)
            for target in _imported_modules(program, module):
                if target.name not in seen:
                    seen.add(target.name)
                    nxt.append(target)
        frontier = sorted(nxt, key=lambda m: m.name)
    return order


def _cache_module(program: Program) -> Optional[ModuleInfo]:
    for name in sorted(program.modules):
        if name == "exec.cache" or name.endswith(".exec.cache"):
            return program.modules[name]
    return None


def _listed_packages(node: ast.expr) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = []
        for elt in node.elts:
            if not isinstance(elt, ast.Constant) or not isinstance(
                elt.value, str
            ):
                return None
            values.append(elt.value)
        return tuple(values)
    return None


def _dict_keys_in(fn_node: ast.AST) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
    return keys


def _normalize_param(name: str) -> str:
    return name[: -len("_name")] if name.endswith("_name") else name


class CacheKeySoundnessRule(DeepRule):
    """Flag result inputs that do not flow into the cache key."""

    code = "RPL018"
    name = "cache-key-soundness"
    rationale = (
        "anything that can change a RunResult must be folded into the "
        "cache key, or a hit silently replays a stale result"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        cache_mod = _cache_module(program)
        if cache_mod is None:
            return  # no cache in the analyzed tree: nothing to check

        # -- half 1: _RESULT_PACKAGES covers the result import closure --
        packages_node = cache_mod.assigns.get("_RESULT_PACKAGES")
        listed = (
            _listed_packages(packages_node)
            if packages_node is not None
            else None
        )
        if listed is not None:
            root_parts = cache_mod.name_parts[:-2]  # repro.exec.cache → repro
            required: Dict[str, str] = {}
            for module in _result_module_closure(program):
                parts = module.name_parts
                if parts[: len(root_parts)] != tuple(root_parts):
                    continue  # outside the tree the digest covers
                extra = parts[len(root_parts):]
                if len(extra) < 2:
                    continue  # the root package itself (not digested)
                required.setdefault(extra[0], module.name)
            missing = sorted(set(required) - set(listed))
            for package in missing:
                assert packages_node is not None
                yield self.violation(
                    cache_mod.path,
                    packages_node,
                    f"package '{package}' is reachable from the result "
                    f"cone (via {required[package]}) but missing from "
                    f"_RESULT_PACKAGES — its edits would not bust the "
                    f"cache",
                )

        # -- half 2: run_cell's parameters all reach cell_key's dict --
        cell_key_fn = cache_mod.functions.get("cell_key")
        run_cell = None
        for qualname in sorted(program.functions):
            fn = program.functions[qualname]
            if fn.name == "run_cell" and fn.owner is None:
                run_cell = fn
                break
        if cell_key_fn is None or run_cell is None:
            return
        keys = _dict_keys_in(cell_key_fn.node)
        params = [
            arg.arg
            for arg in (
                run_cell.node.args.posonlyargs
                + run_cell.node.args.args
                + run_cell.node.args.kwonlyargs
            )
            if arg.arg not in ("self", "cls")
        ]
        for param in params:
            if _normalize_param(param) not in keys:
                yield self.violation(
                    cache_mod.path,
                    cell_key_fn.node,
                    f"run_cell parameter '{param}' can change the "
                    f"RunResult but never flows into cell_key's "
                    f"canonical dict — a cache hit would replay a "
                    f"stale result",
                )
