"""RPL013 — cost-accounting completeness: no untraced simulated work.

PR 3's observability contract is that every simulated cost lands inside
an ``obs`` span: the journal's per-phase/per-superstep breakdowns (and
the chaos grid's recovery accounting built on them) are only complete if
no engine charges disk or network bytes outside a span. The ``Cluster``
primitives wrap themselves — ``shuffle``/``hdfs_read``/... open their
own spans around ``tracker.record_*`` — so the residual risk is a
direct ``cluster.tracker.record_disk(...)`` / ``record_network(...)``
call sitting outside any ``with ....span(...)`` block, which silently
drops that work from every trace export.

This rule scans every function reachable from an engine's ``run`` plus
the ``cluster`` package itself and flags tracker disk/network/memory-
integral records that are not lexically enclosed in a span ``with``
block. ``record_memory_integral`` joined the tracked set with the cost
record (``repro.obs.cost``): the memory×time integral it accrues is
billed as GB-hours, so an unspanned call would charge dollars the trace
cannot attribute. Peak-memory sampling and CPU records stay exempt:
``sample_memory`` records peaks outside spans by design (a gauge, not
work), and ``record_cpu`` is only called by the span-wrapped compute
primitives.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..rules.base import Violation
from ..source import dotted_parts
from .base import DeepRule, concrete_engines
from .program import FunctionInfo, Program
from .reachability import engine_cone

__all__ = ["SpanCoverageRule"]

#: tracker records that represent traceable simulated work (and, for
#: the memory integral, billable cost — see repro.obs.cost)
_WORK_RECORDS = frozenset(
    {"record_disk", "record_network", "record_memory_integral"}
)


def _is_span_with(stmt: ast.AST) -> bool:
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return False
    for item in stmt.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "span"
        ):
            return True
    return False


def _unspanned_records(fn_node: ast.AST) -> List[Tuple[ast.Call, str]]:
    findings: List[Tuple[ast.Call, str]] = []

    def visit(node: ast.AST, in_span: bool) -> None:
        covered = in_span or _is_span_with(node)
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            parts = dotted_parts(node.func)
            if (
                parts
                and parts[-1] in _WORK_RECORDS
                and "tracker" in parts[:-1]
                and not covered
            ):
                findings.append((node, parts[-1]))
        for child in ast.iter_child_nodes(node):
            visit(child, covered)

    visit(fn_node, False)
    return findings


def _scoped_functions(program: Program) -> List[FunctionInfo]:
    picked = {}
    for engine in concrete_engines(program):
        for fn, _binding in engine_cone(program, engine, skip_chaos=True):
            picked[fn.qualname] = fn
    for name in program.modules:
        module = program.modules[name]
        if "cluster" in module.name_parts:
            for fn in module.functions.values():
                picked[fn.qualname] = fn
            for cls in module.classes.values():
                for fn in cls.methods.values():
                    picked[fn.qualname] = fn
    return [picked[q] for q in sorted(picked)]


class SpanCoverageRule(DeepRule):
    """Every disk/network/memory-integral record in an engine cone is spanned."""

    code = "RPL013"
    name = "span-coverage"
    rationale = (
        "simulated disk/network/memory work recorded outside an obs span "
        "disappears from the journal — trace exports, recovery "
        "accounting and the cost record would under-report model cost"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        for fn in _scoped_functions(program):
            for call, record in _unspanned_records(fn.node):
                yield self.violation(
                    fn.module.path,
                    call,
                    f"{record}() outside any obs span in {fn.qualname} — "
                    f"wrap the charge in `with ....span(...)` so the "
                    f"journal sees it",
                )
