"""Whole-program model: module table, class table, static MRO.

The deep rules reason *across* files, so they need what a single
:class:`~repro.lint.source.SourceModule` cannot give them: which dotted
module a path is (``src/repro/engines/bsp.py`` → ``repro.engines.bsp``),
which class a base-class expression refers to after import aliasing and
relative imports, and what a class's method-resolution order looks like
without ever importing the code under analysis. Everything here is
static — built from the ASTs alone — and deterministic: tables are
keyed and iterated in sorted order so two runs over the same tree
produce byte-identical reports.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..source import SourceModule, dotted_parts

__all__ = [
    "module_name_for",
    "ModuleInfo",
    "ClassInfo",
    "FunctionInfo",
    "Program",
    "build_program",
]


def module_name_for(path: str) -> str:
    """Dotted module name, derived by walking up while ``__init__.py`` exists.

    Works on any checkout layout (no sys.path assumptions): the package
    root is simply the first ancestor directory without an
    ``__init__.py``.
    """
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.append(package)
    return ".".join(reversed(parts)) or stem


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str  # ``module.func`` or ``module.Class.method``
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    owner: Optional["ClassInfo"]
    is_abstract: bool

    def __repr__(self) -> str:  # keep debugging output short
        return f"FunctionInfo({self.qualname})"


@dataclass
class ClassInfo:
    """One class definition with resolved base references."""

    name: str
    qualname: str  # ``module.Class``
    module: "ModuleInfo"
    node: ast.ClassDef
    base_refs: List[str]  # dotted names after import-alias resolution
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class-level simple assignments: attr name → value expression
    assigns: Dict[str, ast.expr] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname})"


@dataclass
class ModuleInfo:
    """One parsed file placed in the import namespace."""

    name: str  # dotted module name
    path: str
    source: SourceModule
    is_package: bool
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level simple assignments: name → value expression
    assigns: Dict[str, ast.expr] = field(default_factory=dict)

    @property
    def name_parts(self) -> Tuple[str, ...]:
        return tuple(self.name.split("."))

    def resolve_relative(self, dotted: str) -> str:
        """Resolve a leading-dots import reference against this module."""
        if not dotted.startswith("."):
            return dotted
        level = len(dotted) - len(dotted.lstrip("."))
        rest = dotted[level:]
        base = list(self.name_parts)
        if not self.is_package:
            base = base[:-1]
        base = base[: len(base) - (level - 1)] if level > 1 else base
        return ".".join(base + ([rest] if rest else [])).strip(".")


def _is_abstract(node: ast.AST) -> bool:
    for deco in getattr(node, "decorator_list", []):
        parts = dotted_parts(deco)
        if parts and parts[-1] in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _collect_assigns(body: List[ast.stmt]) -> Dict[str, ast.expr]:
    assigns: Dict[str, ast.expr] = {}
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    assigns[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                assigns[stmt.target.id] = stmt.value
    return assigns


class Program:
    """The analyzed tree: every module, class, and function, cross-linked."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # by dotted name
        self.classes: Dict[str, ClassInfo] = {}  # by qualname
        self.functions: Dict[str, FunctionInfo] = {}  # by qualname
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self._mro_cache: Dict[str, List[ClassInfo]] = {}

    # -- construction -------------------------------------------------------

    def add_module(self, source: SourceModule) -> ModuleInfo:
        name = module_name_for(source.path)
        is_package = os.path.basename(source.path) == "__init__.py"
        info = ModuleInfo(
            name=name, path=source.path, source=source, is_package=is_package
        )
        info.assigns = _collect_assigns(source.tree.body)
        for stmt in source.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._add_class(info, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    name=stmt.name,
                    qualname=f"{name}.{stmt.name}",
                    module=info,
                    node=stmt,
                    owner=None,
                    is_abstract=_is_abstract(stmt),
                )
                info.functions[stmt.name] = fn
                self.functions[fn.qualname] = fn
        self.modules[name] = info
        return info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        refs = []
        for base in node.bases:
            parts = dotted_parts(base)
            if not parts:
                continue
            resolved = module.source.imports.resolve(".".join(parts))
            refs.append(resolved or ".".join(parts))
        cls = ClassInfo(
            name=node.name,
            qualname=f"{module.name}.{node.name}",
            module=module,
            node=node,
            base_refs=refs,
        )
        cls.assigns = _collect_assigns(node.body)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    name=stmt.name,
                    qualname=f"{cls.qualname}.{stmt.name}",
                    module=module,
                    node=stmt,
                    owner=cls,
                    is_abstract=_is_abstract(stmt),
                )
                cls.methods[stmt.name] = fn
                self.functions[fn.qualname] = fn
                self.methods_by_name.setdefault(stmt.name, []).append(fn)
        module.classes[node.name] = cls
        self.classes[cls.qualname] = cls

    def finalize(self) -> None:
        """Sort the by-name index so traversals are deterministic."""
        for fns in self.methods_by_name.values():
            fns.sort(key=lambda f: f.qualname)

    # -- resolution ---------------------------------------------------------

    def resolve_class(
        self, ref: str, from_module: ModuleInfo
    ) -> Optional[ClassInfo]:
        """Find the ClassInfo a base/attribute reference points at."""
        if "." not in ref:
            local = from_module.classes.get(ref)
            if local is not None:
                return local
        dotted = from_module.resolve_relative(ref)
        found = self.classes.get(dotted)
        if found is not None:
            return found
        # re-exports (``from .base import Engine`` then ``from . import
        # Engine`` elsewhere): fall back to the simple name when it is
        # unambiguous across the whole program
        simple = dotted.rsplit(".", 1)[-1]
        candidates = sorted(
            (c for c in self.classes.values() if c.name == simple),
            key=lambda c: c.qualname,
        )
        if len(candidates) == 1:
            return candidates[0]
        return None

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Static linearization: depth-first, left-to-right, keep-last.

        Keep-last dedup puts shared roots after every subclass, which
        matches C3 on the simple diamonds this codebase uses (mixins +
        a single Engine root).
        """
        cached = self._mro_cache.get(cls.qualname)
        if cached is not None:
            return cached
        order: List[ClassInfo] = []

        def visit(c: ClassInfo, trail: Tuple[str, ...]) -> None:
            if c.qualname in trail:  # cyclic bases: malformed input
                return
            order.append(c)
            for ref in c.base_refs:
                base = self.resolve_class(ref, c.module)
                if base is not None:
                    visit(base, trail + (c.qualname,))

        visit(cls, ())
        seen = set()
        linear: List[ClassInfo] = []
        for c in reversed(order):
            if c.qualname not in seen:
                seen.add(c.qualname)
                linear.append(c)
        linear.reverse()
        self._mro_cache[cls.qualname] = linear
        return linear

    def resolve_method(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        for c in self.mro(cls):
            if name in c.methods:
                return c.methods[name]
        return None

    def resolve_super_method(
        self, concrete: ClassInfo, defining: Optional[ClassInfo], name: str
    ) -> Optional[FunctionInfo]:
        """What ``super().name(...)`` binds to for a ``concrete`` instance."""
        linear = self.mro(concrete)
        start = 0
        if defining is not None:
            for i, c in enumerate(linear):
                if c.qualname == defining.qualname:
                    start = i + 1
                    break
        for c in linear[start:]:
            if name in c.methods:
                return c.methods[name]
        return None

    def resolve_class_attr(
        self, cls: ClassInfo, name: str
    ) -> Optional[Tuple[ClassInfo, ast.expr]]:
        """First class-body assignment of ``name`` along the MRO."""
        for c in self.mro(cls):
            if name in c.assigns:
                return c, c.assigns[name]
        return None

    def source_for(self, fn: FunctionInfo) -> SourceModule:
        return fn.module.source


def build_program(sources: Mapping[str, SourceModule]) -> Program:
    """Assemble a Program from parsed modules keyed by path."""
    program = Program()
    ordered = sorted(sources.values(), key=lambda s: module_name_for(s.path))
    for source in ordered:
        program.add_module(source)
    program.finalize()
    return program
