"""RPL017 — hot-loop hygiene inside the per-superstep cone.

The superstep loop is the simulator's hot path: every engine runs it
once per observed superstep, for every cell of every grid. Python makes
three kinds of silent per-iteration overhead easy to write and easy to
hoist:

* ``s += "..."`` string building — quadratic, since each ``+=`` copies
  the whole accumulated string;
* rebuilding a **constant** dict/list/set literal each iteration — the
  value never changes, so the allocation is pure churn;
* long attribute-chain lookups (``self.cluster.network.latency``) —
  each hop is a dict lookup repeated every iteration for a value that
  is loop-invariant;
* ``getattr(obj, "constant", ...)`` on a loop-invariant receiver — a
  dynamic lookup with a fixed answer, re-resolved per iteration.

The cone is rooted at every concrete engine's ``run_superstep_loop`` /
``charge_superstep`` resolution plus every workload ``superstep``
kernel, closed over the conservative call graph (chaos/recovery is
excluded — it is priced by its own contracts, RPL010/RPL014). Within
the cone, only code lexically inside a ``for``/``while`` loop is held
to the hygiene bar.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..rules.base import Violation
from ..source import dotted_parts
from .base import DeepRule, concrete_engines
from .hotpath import nodes_in_loops
from .program import FunctionInfo, Program
from .reachability import Node, chaos_boundary, reachable

__all__ = ["SuperstepHygieneRule"]

#: methods whose resolution seeds the per-superstep cone
_SUPERSTEP_ROOTS = ("run_superstep_loop", "charge_superstep")

#: attribute hops after which a loop-invariant chain should be hoisted
_CHAIN_HOPS = 3


def _superstep_cone(program: Program) -> List[Node]:
    roots: List[Node] = []
    seen: Set[Tuple[str, str]] = set()
    for engine in concrete_engines(program):
        for name in _SUPERSTEP_ROOTS:
            fn = program.resolve_method(engine, name)
            if fn is None:
                continue
            key = (fn.qualname, engine.qualname)
            if key not in seen:
                seen.add(key)
                roots.append((fn, engine))
    for qualname in sorted(program.functions):
        fn = program.functions[qualname]
        if fn.name == "superstep" and not fn.is_abstract:
            key = (fn.qualname, fn.owner.qualname if fn.owner else "")
            if key not in seen:
                seen.add(key)
                roots.append((fn, fn.owner))
    return reachable(program, roots, skip=chaos_boundary)


def _constant_container(node: ast.AST) -> bool:
    """A non-empty dict/list/set literal whose elements are all constants."""
    if isinstance(node, ast.Dict):
        return bool(node.keys) and all(
            isinstance(k, ast.Constant) for k in node.keys if k is not None
        ) and all(isinstance(v, ast.Constant) for v in node.values)
    if isinstance(node, (ast.List, ast.Set)):
        return bool(node.elts) and all(
            isinstance(e, ast.Constant) for e in node.elts
        )
    return False


def _loop_variables(loop: ast.AST) -> Set[str]:
    names: Set[str] = set()
    target = getattr(loop, "target", None)
    if target is not None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names


class SuperstepHygieneRule(DeepRule):
    """Flag avoidable per-iteration work inside the superstep cone."""

    code = "RPL017"
    name = "superstep-hot-loop-hygiene"
    rationale = (
        "the superstep loop runs per cell per iteration; hoist constant "
        "allocations, deep attribute chains, and string building out of it"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        cone = _superstep_cone(program)
        checked: Set[str] = set()
        for fn, _binding in cone:
            if fn.qualname in checked:
                continue
            checked.add(fn.qualname)
            yield from self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> Iterator[Violation]:
        # A node nested in several loops appears once per enclosing
        # loop; fold those into one record carrying the union of every
        # enclosing loop's variables (a chain rooted at *any* of them
        # varies per iteration and is not hoistable).
        loop_vars: dict = {}
        ordered: List[ast.AST] = []
        for loop, node in nodes_in_loops(fn):
            if id(node) not in loop_vars:
                loop_vars[id(node)] = set()
                ordered.append(node)
            loop_vars[id(node)] |= _loop_variables(loop)

        flagged: Set[int] = set()
        for node in ordered:
            if id(node) in flagged:
                continue
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                if isinstance(node.value, ast.JoinedStr) or (
                    isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    flagged.add(id(node))
                    yield self.violation(
                        fn.module.path,
                        node,
                        "string += inside the superstep hot loop copies "
                        "the whole accumulator each iteration — collect "
                        "parts in a list and ''.join once",
                    )
                    continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                receiver = dotted_parts(node.args[0])
                if receiver is not None and receiver[0] not in loop_vars[
                    id(node)
                ]:
                    flagged.add(id(node))
                    yield self.violation(
                        fn.module.path,
                        node,
                        f"getattr(..., {node.args[1].value!r}) re-resolved "
                        f"every iteration of the superstep hot loop for a "
                        f"loop-invariant receiver — bind it to a local "
                        f"before the loop",
                    )
                    continue
            if _constant_container(node):
                flagged.add(id(node))
                yield self.violation(
                    fn.module.path,
                    node,
                    "constant container literal rebuilt every iteration "
                    "of the superstep hot loop — hoist it to module or "
                    "function scope",
                )
                continue
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                parts = dotted_parts(node)
                if parts is None or len(parts) <= _CHAIN_HOPS:
                    continue
                if parts[0] in loop_vars[id(node)]:
                    continue  # varies per iteration: nothing to hoist
                # flag the outermost chain only (its sub-chains are
                # attribute nodes too and would double-report)
                for sub in ast.walk(node):
                    if sub is not node:
                        flagged.add(id(sub))
                flagged.add(id(node))
                yield self.violation(
                    fn.module.path,
                    node,
                    f"attribute chain '{'.'.join(parts)}' re-resolved "
                    f"every iteration of the superstep hot loop — bind "
                    f"it to a local before the loop",
                )
