"""repro.lint.deep — whole-program conformance and determinism analysis.

The shallow pass (RPL001–RPL010) sees one file at a time; this package
parses the whole tree once, builds a module table, static MROs, and a
conservative call graph, and checks the contracts that only exist
*between* files:

- RPL011 model conformance — every cluster primitive reachable from an
  engine's ``run`` is allowed by its declared computation model;
- RPL012 determinism taint — nothing unordered/unseeded/host-varying
  flows into the RunResult/Journal cone;
- RPL013 span coverage — no simulated disk/network work is recorded
  outside an obs span;
- RPL014 chaos safety — no broad handler can absorb a reachable
  simulated fault before its recovery is priced;
- RPL015 pool payload — no large result-determining object (dataset,
  graph, spec) is pickled into process-pool tasks in ``exec``;
- RPL016 redundant digest — no unmemoized bulk content digest is
  recomputed inside a loop;
- RPL017 superstep hygiene — no avoidable per-iteration allocation,
  string building, or deep attribute chain in the superstep hot loop;
- RPL018 cache-key soundness — every input that can change a RunResult
  flows into the result cache's key construction;
- RPL019 worker sharing — no ``exec`` module-level mutable state is
  expected to cross a process boundary;
- RPL020 bounded retry — every ``while`` loop that sleeps through the
  host-clock door carries a reachable bound (attempt counter or
  deadline check);
- RPL021 guarded-field discipline — a shared serve/exec field locked
  on one thread root must hold the same lock on every root (Eraser's
  lockset intersection);
- RPL022 blocking-under-lock — no I/O, sleep, join, or pool wait while
  a lock is held, and the lock-acquisition graph stays acyclic;
- RPL023 condition hygiene — ``cond.wait()`` only inside a
  while-predicate loop, wait/notify only with the lock held;
- RPL024 thread confinement — mutable state crossing thread roots with
  no common lock anywhere (RPL019's rule, generalized to threads).

Usage::

    repro lint --deep src/repro            # shallow + deep, exit 1 on findings
    python -m repro.lint --deep --format json src

Findings carry the same :class:`Violation` shape as the shallow rules,
honour ``# noqa: RPLxxx`` on the flagged line, and can be baselined via
``lint-baseline.json`` (see :mod:`repro.lint.deep.baseline`).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from ..rules.base import Violation
from ..source import SourceModule
from .base import DeepRule
from .program import Program, build_program
from .rpl011_model_conformance import ModelConformanceRule
from .rpl012_determinism import DeterminismTaintRule
from .rpl013_span_coverage import SpanCoverageRule
from .rpl014_chaos_safety import ChaosSafetyRule
from .rpl015_pool_payload import PoolPayloadRule
from .rpl016_redundant_digest import RedundantDigestRule
from .rpl017_superstep_hygiene import SuperstepHygieneRule
from .rpl018_cache_key import CacheKeySoundnessRule
from .rpl019_worker_sharing import WorkerSharingRule
from .rpl020_bounded_retry import BoundedRetryRule
from .rpl021_guarded_fields import GuardedFieldRule
from .rpl022_blocking_under_lock import BlockingUnderLockRule
from .rpl023_condition_hygiene import ConditionHygieneRule
from .rpl024_thread_confinement import ThreadConfinementRule

__all__ = [
    "DeepRule",
    "DEEP_RULES",
    "DEEP_RULES_BY_CODE",
    "Program",
    "build_program",
    "deep_lint_modules",
    "deep_lint_paths",
]

DEEP_RULES = (
    ModelConformanceRule(),
    DeterminismTaintRule(),
    SpanCoverageRule(),
    ChaosSafetyRule(),
    PoolPayloadRule(),
    RedundantDigestRule(),
    SuperstepHygieneRule(),
    CacheKeySoundnessRule(),
    WorkerSharingRule(),
    BoundedRetryRule(),
    GuardedFieldRule(),
    BlockingUnderLockRule(),
    ConditionHygieneRule(),
    ThreadConfinementRule(),
)

DEEP_RULES_BY_CODE = {rule.code: rule for rule in DEEP_RULES}


def deep_lint_modules(
    sources: Mapping[str, SourceModule],
    rules: Optional[Sequence[DeepRule]] = None,
) -> List[Violation]:
    """Run the deep rules over parsed modules keyed by path."""
    if rules is None:
        rules = DEEP_RULES
    program = build_program(sources)
    by_path = {source.path: source for source in sources.values()}
    unique = {}
    for rule in rules:
        for violation in rule.check_program(program):
            source = by_path.get(violation.path)
            if source is not None and source.suppressed(
                violation.code, violation.line
            ):
                continue
            key = (
                violation.path,
                violation.line,
                violation.col,
                violation.code,
                violation.message,
            )
            unique[key] = violation
    return [unique[key] for key in sorted(unique)]


def deep_lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[DeepRule]] = None,
) -> List[Violation]:
    """Parse every file under ``paths`` and run the deep rules.

    Unparseable files are skipped here — the shallow pass owns RPL000
    reporting for them — so the deep pass analyzes the largest
    consistent subset of the tree.
    """
    from .. import iter_python_files

    sources = {}
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except (OSError, UnicodeDecodeError):
            continue
        try:
            sources[path] = SourceModule.parse(text, path=path)
        except (SyntaxError, ValueError):
            continue
    return deep_lint_modules(sources, rules=rules)
