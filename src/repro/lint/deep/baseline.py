"""Finding baseline: pre-existing findings fail CI only when new ones appear.

A baseline entry is a *fingerprint* — ``(code, path, message)`` with the
line number deliberately excluded, so unrelated edits that shift a known
finding up or down a file do not resurrect it. Paths are normalized to
forward slashes so a baseline recorded on one platform filters on
another. The committed ``lint-baseline.json`` at the repo root is empty:
the deep pass runs clean after this PR's fixes, and the file exists so
CI has a stable contract to check against (and so a future emergency
has an escape hatch: ``repro lint --deep --update-baseline``).
"""

from __future__ import annotations

import json
from typing import List, Sequence

from ..rules.base import Violation

__all__ = ["fingerprint", "load_baseline", "write_baseline", "filter_baselined"]

_VERSION = 1


def fingerprint(violation: Violation) -> List[str]:
    return [
        violation.code,
        violation.path.replace("\\", "/"),
        violation.message,
    ]


def load_baseline(path: str) -> List[List[str]]:
    """Fingerprints from a baseline file; [] when absent or unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return []
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        return []
    entries = payload.get("fingerprints", [])
    return [list(map(str, entry)) for entry in entries if len(entry) == 3]


def write_baseline(path: str, violations: Sequence[Violation]) -> int:
    """Record every current finding; returns how many were written."""
    prints = sorted({tuple(fingerprint(v)) for v in violations})
    payload = {
        "version": _VERSION,
        "fingerprints": [list(p) for p in prints],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(prints)


def filter_baselined(
    violations: Sequence[Violation], baseline: Sequence[Sequence[str]]
) -> List[Violation]:
    known = {tuple(entry) for entry in baseline}
    return [v for v in violations if tuple(fingerprint(v)) not in known]
