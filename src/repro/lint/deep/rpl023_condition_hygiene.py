"""RPL023 — condition hygiene: wait in a while-loop, notify under lock.

``threading.Condition`` has two sharp edges the serving stack must
respect. First, wakeups are advisory: ``notify_all`` wakes every
waiter, spurious wakeups exist, and by the time a waiter reacquires
the lock another thread may have consumed whatever it was woken for.
A ``cond.wait()`` guarded by ``if`` instead of ``while`` acts on a
predicate that may already be false again — jobs double-taken from the
queue, waits returning before the job is done. Second, calling
``wait``/``notify``/``notify_all`` without holding the lock raises
``RuntimeError`` at runtime — but only on the path that reaches it,
which for shutdown-only code can be long after the bug merges.

The discipline::

    with self.cond:
        while not predicate():   # re-check after every wakeup
            self.cond.wait()
        consume()

``wait_for(pred)`` loops internally and is exempt from the while
requirement, but still needs the lock held.

Positive (flagged)::

    with self.cond:
        if len(self.queue) == 0:   # 'if': one wakeup, no re-check
            self.cond.wait()
        job = self.queue.take()    # may be None after a steal

Negative (clean)::

    with self.cond:
        while len(self.queue) == 0:
            self.cond.wait()
        job = self.queue.take()
"""

from __future__ import annotations

from typing import Iterator

from ..rules.base import Violation
from .base import DeepRule
from .concurrency import ConcurrencyAnalysis
from .program import Program

__all__ = ["ConditionHygieneRule"]


class ConditionHygieneRule(DeepRule):
    """Flag waits outside predicate loops and notifies without the lock."""

    code = "RPL023"
    name = "condition-hygiene"
    rationale = (
        "cond.wait() must re-check its predicate in a while loop "
        "(wakeups are advisory) and wait/notify require the lock held"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        analysis = ConcurrencyAnalysis.of(program)
        seen = set()
        for op in analysis.sync_ops:
            path = op.fn.module.path
            key = (
                path,
                getattr(op.node, "lineno", 1),
                getattr(op.node, "col_offset", 0),
                op.kind,
            )
            if key in seen:
                continue  # one site, several thread roots
            seen.add(key)
            if op.lock.kind != "Condition":
                continue
            if op.lock.lock_id not in op.must:
                yield self.violation(
                    path,
                    op.node,
                    f"{op.lock.display}.{op.kind}() without "
                    f"'{op.lock.lock_id}' held (thread root "
                    f"'{op.root.name}') raises RuntimeError at runtime; "
                    f"wrap the call in 'with {op.lock.display}:'",
                )
                continue
            if op.kind == "wait" and not op.in_while:
                yield self.violation(
                    path,
                    op.node,
                    f"{op.lock.display}.wait() outside a while-predicate "
                    f"loop: wakeups are advisory and the predicate may "
                    f"be false again on return — use 'while not "
                    f"predicate: {op.lock.display}.wait()' or wait_for()",
                )
