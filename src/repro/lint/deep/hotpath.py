"""Shared loop/pool shape helpers for the performance deep rules.

RPL015–RPL019 all reason about the same two lexical shapes: "is this
expression inside a ``for``/``while`` loop of its function?" and "is
this call a process-pool dispatch?". Both live here so the rules agree
on the definitions and the fixtures exercise one implementation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..source import dotted_parts
from .callgraph import CallSite, _classify
from .program import FunctionInfo

__all__ = [
    "loop_bodies",
    "loop_call_sites",
    "nodes_in_loops",
    "pool_dispatch",
]

#: pool/executor methods that ship work (and its arguments) to workers
_DISPATCH_METHODS = frozenset({
    "submit", "map", "starmap", "apply", "apply_async", "imap",
    "imap_unordered",
})

#: receiver-name fragments that mark a pool-like object
_POOL_RECEIVERS = ("pool", "executor")


def loop_bodies(fn: FunctionInfo) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Every ``for``/``while`` loop in ``fn`` with its body statements.

    Nested function definitions are *not* entered: a closure's loops run
    on the closure's schedule, not this function's.
    """
    stack: List[ast.AST] = list(getattr(fn.node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node, node.body
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def nodes_in_loops(fn: FunctionInfo) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """(loop, node) pairs for every AST node inside a loop body of ``fn``."""
    for loop, body in loop_bodies(fn):
        for stmt in body:
            for node in ast.walk(stmt):
                yield loop, node


def loop_call_sites(fn: FunctionInfo) -> List[CallSite]:
    """Call sites lexically inside a loop body of ``fn``, in source order."""
    sites = []
    seen = set()
    for _, node in nodes_in_loops(fn):
        if isinstance(node, ast.Call) and id(node) not in seen:
            seen.add(id(node))
            site = _classify(node)
            if site is not None:
                sites.append(site)
    sites.sort(key=lambda s: (s.node.lineno, s.node.col_offset))
    return sites


def pool_dispatch(call: ast.Call) -> Optional[str]:
    """The dispatch method name when ``call`` ships work to a pool.

    Matches ``<recv>.submit(...)`` / ``.map(...)`` / ``.apply_async(...)``
    etc. where some segment of the receiver chain names a pool or
    executor (``pool.submit``, ``self.executor.map``). Name-based on
    purpose: the linter never imports the code under analysis.
    """
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _DISPATCH_METHODS:
        return None
    parts = dotted_parts(func)
    receiver = parts[:-1] if parts else []
    if not receiver:
        return None
    for segment in receiver:
        lowered = segment.lower()
        if any(marker in lowered for marker in _POOL_RECEIVERS):
            return func.attr
    return None
