"""Reachability over the conservative call graph.

The BFS walks (function, self-binding) pairs: the same method body can
resolve ``self.charge_superstep`` to different targets depending on
which concrete engine the traversal started from, so the binding is
part of the node identity. A boundary predicate stops the walk at
sanctioned edges — the chaos/recovery machinery is priced by its own
contracts (RPL010), so the model-conformance cone of an engine must not
descend into it.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple

from .callgraph import call_sites, resolve_targets
from .program import ClassInfo, FunctionInfo, Program

__all__ = [
    "Node",
    "reachable",
    "chaos_boundary",
    "engine_cone",
]

Node = Tuple[FunctionInfo, Optional[ClassInfo]]

#: methods that hand control to the chaos/recovery machinery
_CHAOS_METHODS = frozenset({"_chaos_round", "_recover", "_rescale"})


def chaos_boundary(fn: FunctionInfo) -> bool:
    """True for functions the model-conformance walk must not enter."""
    if fn.name in _CHAOS_METHODS:
        return True
    return "chaos" in fn.module.name_parts


def reachable(
    program: Program,
    roots: Iterable[Node],
    skip: Optional[Callable[[FunctionInfo], bool]] = None,
) -> List[Node]:
    """BFS closure of ``roots``; deterministic order (sorted frontier)."""

    def key(node: Node) -> Tuple[str, str]:
        fn, binding = node
        return (fn.qualname, binding.qualname if binding else "")

    seen: Set[Tuple[str, str]] = set()
    order: List[Node] = []
    frontier = sorted(roots, key=key)
    for node in frontier:
        seen.add(key(node))
    while frontier:
        next_frontier: List[Node] = []
        for fn, binding in frontier:
            order.append((fn, binding))
            for site in call_sites(fn):
                for target, tbinding in resolve_targets(
                    program, site, fn, binding
                ):
                    if skip is not None and skip(target):
                        continue
                    node = (target, tbinding)
                    k = key(node)
                    if k not in seen:
                        seen.add(k)
                        next_frontier.append(node)
        frontier = sorted(next_frontier, key=key)
    return order


def engine_cone(
    program: Program,
    engine: ClassInfo,
    skip_chaos: bool = True,
) -> List[Node]:
    """Everything reachable from ``engine.run(...)`` for this engine."""
    run = program.resolve_method(engine, "run")
    if run is None:
        return []
    skip = chaos_boundary if skip_chaos else None
    return reachable(program, [(run, engine)], skip=skip)
