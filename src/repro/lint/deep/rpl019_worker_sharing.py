"""RPL019 — module-level mutable state shared across process boundaries.

``exec`` and ``serve`` are the packages allowed to spawn processes and
threads (RPL009's legal concurrency doors), and process boundaries make
module-level mutable state a trap: under ``spawn`` a worker never sees
the parent's writes, under ``fork`` it sees a frozen snapshot, and the
parent never sees the worker's writes back. Code that *looks* like it
communicates through a module dict silently doesn't. The serving layer
adds a second hazard of the same shape: daemon handler threads and its
scheduler thread must share state through the daemon instance (under
its condition lock), never through module globals.

The rule builds the worker cone — everything reachable from functions
shipped to the pool (``pool.submit(fn, ...)``) or exported by a
``workers`` module's ``__all__`` — and classifies every reference to a
module-level dict/list/set in ``exec`` modules as a read or a mutation,
inside or outside that cone. Two patterns are flagged:

* written outside the cone, read inside — the parent primes state the
  worker cannot see;
* written inside the cone, read outside — worker results the parent
  never receives.

State that both sides only read, or that the worker cone alone fills
and consumes (a per-process memo, rebuilt in every worker), is sound
and passes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..rules.base import Violation
from ..source import dotted_parts
from .base import DeepRule
from .hotpath import pool_dispatch
from .program import FunctionInfo, ModuleInfo, Program
from .reachability import Node, reachable

__all__ = ["WorkerSharingRule"]

#: constructors whose module-level result is mutable shared state
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
})

#: method calls that mutate their receiver in place
_MUTATORS = frozenset({
    "append", "add", "update", "setdefault", "clear", "extend", "insert",
    "pop", "popitem", "remove", "discard", "appendleft", "extendleft",
})


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        return bool(parts) and parts[-1] in _MUTABLE_CONSTRUCTORS
    return False


#: packages under scrutiny: every RPL009 concurrency door
_CONCURRENT_PACKAGES = ("exec", "serve")


def _exec_modules(program: Program) -> List[ModuleInfo]:
    return [
        program.modules[name]
        for name in sorted(program.modules)
        if any(pkg in program.modules[name].name_parts
               for pkg in _CONCURRENT_PACKAGES)
    ]


def _dunder_all(module: ModuleInfo) -> Set[str]:
    node = module.assigns.get("__all__")
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return set()
    return {
        elt.value
        for elt in node.elts
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
    }


def _worker_cone(program: Program) -> Set[str]:
    """Qualnames of every function a worker process may execute."""
    roots: List[Node] = []
    seen: Set[str] = set()

    def add(fn: Optional[FunctionInfo]) -> None:
        if fn is not None and fn.qualname not in seen:
            seen.add(fn.qualname)
            roots.append((fn, fn.owner))

    for module in _exec_modules(program):
        exported = _dunder_all(module)
        if module.name_parts[-1] == "workers":
            for name in sorted(module.functions):
                if name in exported:
                    add(module.functions[name])
        for node in ast.walk(module.source.tree):
            if not isinstance(node, ast.Call) or pool_dispatch(node) is None:
                continue
            if not node.args or not isinstance(node.args[0], ast.Name):
                continue
            shipped = node.args[0].id
            target = module.functions.get(shipped)
            if target is None:
                resolved = module.source.imports.resolve(shipped) or shipped
                target = program.functions.get(
                    module.resolve_relative(resolved)
                )
            add(target)
    return {fn.qualname for fn, _ in reachable(program, roots)}


def _binds_locally(fn: FunctionInfo, name: str) -> bool:
    """True when ``name`` is a parameter or plain local of ``fn``."""
    node = fn.node
    args = node.args
    for arg in (
        args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        if arg.arg == name:
            return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global) and name in sub.names:
            return False
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            for t in ast.walk(sub.target):
                if isinstance(t, ast.Name) and t.id == name:
                    return True
    return False


def _references(
    fn: FunctionInfo, module: ModuleInfo, var: str
) -> Iterator[Tuple[ast.AST, bool]]:
    """(node, is_mutation) for each reference to ``module.var`` in ``fn``.

    Catches the variable as a bare name in its own module and through
    ``from x import var`` / ``x.var`` chains from other modules.
    """

    def refers(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            if fn.module is module and expr.id == var:
                return not _binds_locally(fn, var)
            resolved = fn.module.source.imports.resolve(expr.id)
            if resolved is None:
                return False
            return fn.module.resolve_relative(resolved) == f"{module.name}.{var}"
        parts = dotted_parts(expr)
        if not parts or parts[-1] != var:
            return False
        prefix = ".".join(parts[:-1])
        resolved = fn.module.source.imports.resolve(prefix) or prefix
        return fn.module.resolve_relative(resolved) == module.name

    for node in ast.walk(fn.node):
        if isinstance(node, ast.AugAssign) and refers(node.target):
            yield node, True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and refers(target.value):
                    yield node, True
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATORS and refers(node.func.value):
                yield node, True
        elif isinstance(node, (ast.Name, ast.Attribute)) and isinstance(
            getattr(node, "ctx", None), ast.Load
        ):
            if refers(node):
                yield node, False


class WorkerSharingRule(DeepRule):
    """Flag exec module state that cannot survive a process boundary."""

    code = "RPL019"
    name = "cross-process-state-sharing"
    rationale = (
        "module-level mutable state does not cross process boundaries; "
        "workers must re-derive it or receive it in the task payload"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        exec_modules = _exec_modules(program)
        if not exec_modules:
            return
        cone = _worker_cone(program)
        for module in exec_modules:
            for var in sorted(module.assigns):
                value = module.assigns[var]
                if not _is_mutable_value(value):
                    continue
                reads_in, reads_out = [], []
                writes_in, writes_out = [], []
                for other in exec_modules:
                    for fname in sorted(other.functions):
                        self._collect(
                            other.functions[fname], module, var, cone,
                            reads_in, reads_out, writes_in, writes_out,
                        )
                    for cls_name in sorted(other.classes):
                        cls = other.classes[cls_name]
                        for mname in sorted(cls.methods):
                            self._collect(
                                cls.methods[mname], module, var, cone,
                                reads_in, reads_out, writes_in, writes_out,
                            )
                if writes_out and reads_in:
                    yield self.violation(
                        module.path,
                        value,
                        f"'{var}' is written outside the worker cone "
                        f"(e.g. {writes_out[0]}) but read inside it "
                        f"(e.g. {reads_in[0]}) — worker processes never "
                        f"see the parent's writes; ship the value in "
                        f"the task payload or re-derive it per process",
                    )
                elif writes_in and reads_out:
                    yield self.violation(
                        module.path,
                        value,
                        f"'{var}' is written inside the worker cone "
                        f"(e.g. {writes_in[0]}) but read outside it "
                        f"(e.g. {reads_out[0]}) — the parent never sees "
                        f"worker writes; return results through the "
                        f"pool future instead",
                    )

    @staticmethod
    def _collect(
        fn: FunctionInfo,
        module: ModuleInfo,
        var: str,
        cone: Set[str],
        reads_in: List[str],
        reads_out: List[str],
        writes_in: List[str],
        writes_out: List[str],
    ) -> None:
        in_cone = fn.qualname in cone
        for _node, is_mutation in _references(fn, module, var):
            if is_mutation:
                (writes_in if in_cone else writes_out).append(fn.qualname)
            else:
                (reads_in if in_cone else reads_out).append(fn.qualname)
