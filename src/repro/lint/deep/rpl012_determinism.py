"""RPL012 — determinism taint: nothing unordered reaches a RunResult.

The repo's headline guarantee — same seed ⇒ byte-identical journals,
parallel == sequential bit-for-bit — holds only if no value flowing into
a :class:`RunResult` field or a Journal payload depends on unordered
iteration, unseeded randomness, host time, or other run-to-run-varying
sources. The shallow rules catch the easy shapes file-locally (RPL001
wall-clock, RPL002 RNG, RPL008 set accumulation); this rule applies the
stricter taint policy to exactly the functions whose return values can
reach result/journal state: everything reachable from an engine's
``run`` (chaos included — recovery costs land in the journal too) plus
the whole ``obs`` package.

Flagged sources inside that cone:

- iterating a set expression at all (for / comprehension), not just
  when accumulating — order-dependent even when the body looks pure;
- ``.pop()`` with no argument on a set expression (arbitrary element);
- host-clock calls (RPL001's banned list) and unseeded RNG (RPL002's
  classifier) — re-checked here because the cone crosses files the
  shallow allowlists may not cover;
- unsorted ``os.listdir`` / ``os.scandir`` / ``glob.glob`` /
  ``glob.iglob`` (filesystem order is platform-dependent);
- ``uuid.uuid1()`` / ``uuid.uuid4()`` (host/time/random identity).

Order-insensitive consumers (``sorted``, ``min``, ``max``, ``len``,
``sum``, ``any``, ``all``) neutralize the *order* sources inside their
arguments; value sources (time, RNG, uuid) stay flagged everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..rules.base import Violation
from ..source import dotted_name
from .base import DeepRule, concrete_engines
from .program import FunctionInfo, Program
from .reachability import engine_cone
from ..rules.rpl001_wallclock import _BANNED as _BANNED_CLOCKS
from ..rules.rpl001_wallclock import _is_allowlisted as _hostclock_door
from ..rules.rpl002_randomness import RandomnessRule
from ..rules.rpl008_set_iteration import _set_expression as set_expression

__all__ = ["DeterminismTaintRule"]

#: callables whose result depends on filesystem enumeration order
_FS_ORDER = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: callables whose value varies run to run by construction
_IDENTITY = frozenset({"uuid.uuid1", "uuid.uuid4"})

#: consumers that erase iteration order from their argument
_ORDER_SAFE_CONSUMERS = frozenset({
    "sorted", "min", "max", "len", "sum", "any", "all",
})

_RNG = RandomnessRule()


def _scoped_functions(program: Program) -> List[FunctionInfo]:
    """Engine cones (chaos included) plus every function in ``obs``."""
    picked = {}
    for engine in concrete_engines(program):
        for fn, _binding in engine_cone(program, engine, skip_chaos=False):
            picked[fn.qualname] = fn
    for name in program.modules:
        if "obs" in program.modules[name].name_parts:
            module = program.modules[name]
            for fn in module.functions.values():
                picked[fn.qualname] = fn
            for cls in module.classes.values():
                for fn in cls.methods.values():
                    picked[fn.qualname] = fn
    return [picked[q] for q in sorted(picked)]


class DeterminismTaintRule(DeepRule):
    """No unordered/unseeded/host-varying source in the result cone."""

    code = "RPL012"
    name = "determinism-taint"
    rationale = (
        "RunResult fields and Journal payloads must be byte-identical "
        "across reruns; set order, unseeded RNG, host time, and "
        "filesystem order must not flow into them"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        for fn in _scoped_functions(program):
            if _hostclock_door(fn.module.path):
                # the one sanctioned wall-clock module (see RPL001):
                # it profiles the simulator, never a simulated quantity
                continue
            imports = fn.module.source.imports
            for node, message in self._scan(fn.node, imports):
                yield self.violation(fn.module.path, node, message)

    def _scan(
        self, root: ast.AST, imports
    ) -> List[Tuple[ast.AST, str]]:
        findings: List[Tuple[ast.AST, str]] = []
        order_safe_nodes: Set[int] = set()

        def visit(node: ast.AST, order_safe: bool) -> None:
            safe_here = order_safe or id(node) in order_safe_nodes
            if isinstance(node, ast.Call):
                resolved = imports.resolve(dotted_name(node.func))
                if resolved in _BANNED_CLOCKS:
                    findings.append((
                        node,
                        f"host-clock call {resolved}() in the result cone "
                        f"— simulated quantities come from cluster.now",
                    ))
                elif resolved in _IDENTITY:
                    findings.append((
                        node,
                        f"{resolved}() varies per run — derive identities "
                        f"from seeds or coordinates",
                    ))
                elif resolved in _FS_ORDER and not safe_here:
                    findings.append((
                        node,
                        f"{resolved}() enumerates in platform-dependent "
                        f"order — wrap in sorted(...)",
                    ))
                elif resolved:
                    rng_finding = _RNG._classify(resolved, node)
                    if rng_finding:
                        findings.append((
                            node,
                            f"nondeterministic RNG in the result cone: "
                            f"{rng_finding}",
                        ))
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SAFE_CONSUMERS
                ):
                    for arg in node.args:
                        order_safe_nodes.add(id(arg))
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and not node.keywords
                    and set_expression(node.func.value)
                ):
                    findings.append((
                        node,
                        "set .pop() removes an arbitrary element — "
                        "order-dependent value in the result cone",
                    ))
            if isinstance(node, (ast.For, ast.AsyncFor)) and not safe_here:
                described = set_expression(node.iter)
                if described and id(node.iter) not in order_safe_nodes:
                    findings.append((
                        node,
                        f"iteration over {described} in the result cone — "
                        f"set order is hash-dependent; iterate sorted(...)",
                    ))
            if isinstance(node, ast.comprehension) and not safe_here:
                described = set_expression(node.iter)
                if described and id(node.iter) not in order_safe_nodes:
                    findings.append((
                        node.iter,
                        f"comprehension over {described} in the result "
                        f"cone — set order is hash-dependent; iterate "
                        f"sorted(...)",
                    ))
            for child in ast.iter_child_nodes(node):
                visit(child, safe_here)

        visit(root, False)
        findings.sort(key=lambda f: (f[0].lineno, f[0].col_offset, f[1]))
        return findings
