"""RPL020 — sleep-and-retry loop with no reachable bound.

A loop that sleeps through the host-clock door (``host_sleep``) is, by
construction, *waiting for the outside world*: admission control to
admit, a daemon to produce a result batch, a crashed worker's backoff
to elapse. When the thing it waits for never happens — the daemon
stalls, the queue stays full — an unbounded poll loop hangs the caller
forever, which is exactly the failure mode the serving layer's
deadlines exist to prevent. Every such loop must carry a reachable
bound: either the loop condition itself can become false, or a branch
inside the body compares *progress* (an attempt counter mutated in the
loop, or a clock reading) against a limit and exits.

Mechanically, the rule examines every ``while`` loop whose body's
call closure — followed conservatively through *same-module* functions
only, so a loop that merely dispatches into another subsystem's own
retry machinery is not charged for that subsystem's sleeps — reaches a
``host_sleep`` call. A loop with a non-constant test passes (the
condition is the bound). A ``while True:`` must contain an ``if``
whose test holds a comparison against something that changes per
iteration — a name assigned in the loop body (``attempt >= retries``
after ``attempt += 1``) or a host-clock reading (``host_now() >=
deadline``) — and
that guards a ``break``, ``return``, or ``raise``. Data-dependent
exits alone (``if batch["complete"]: return``) do not count: they are
the condition being waited for, not a bound on the wait.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..rules.base import Violation
from .base import DeepRule
from .callgraph import call_sites, resolve_targets
from .program import ClassInfo, FunctionInfo, Program

__all__ = ["BoundedRetryRule"]

#: the host-clock door's sleeping and reading primitives (obs/hostclock.py)
_SLEEP_NAME = "host_sleep"
_NOW_NAME = "host_now"

_Node = Tuple[FunctionInfo, Optional[ClassInfo]]


def _node_key(node: _Node) -> Tuple[str, str]:
    fn, binding = node
    return (fn.qualname, binding.qualname if binding else "")


def _loop_reaches_sleep(
    program: Program,
    fn: FunctionInfo,
    loop: ast.While,
) -> bool:
    """Does the loop body's same-module call closure reach host_sleep?"""
    module = fn.module
    binding = fn.owner
    in_loop = {id(n) for n in ast.walk(loop) if isinstance(n, ast.Call)}

    stack: List[_Node] = []

    def expand(node: _Node, only: Optional[Set[int]] = None) -> bool:
        """Push same-module callees; True when a site is the sleep itself."""
        for site in call_sites(node[0]):
            if only is not None and id(site.node) not in only:
                continue
            if site.name == _SLEEP_NAME:
                return True
            for target in resolve_targets(program, site, node[0], node[1]):
                if target[0].module is module:
                    stack.append(target)
        return False

    if expand((fn, binding), only=in_loop):
        return True
    seen: Set[Tuple[str, str]] = set()
    while stack:
        node = stack.pop()
        key = _node_key(node)
        if key in seen:
            continue
        seen.add(key)
        if expand(node):
            return True
    return False


def _loop_assigned_names(loop: ast.While) -> Set[str]:
    """Names stored (assignment, augmented, for-target) in the loop body."""
    names: Set[str] = set()
    for stmt in loop.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                names.add(sub.id)
    return names


def _is_clock_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    return name == _NOW_NAME


def _bounding_compare(test: ast.expr, assigned: Set[str]) -> bool:
    """A comparison against per-iteration progress: counter or clock.

    An arbitrary call in a comparison (``response.get("error") !=
    "queue-full"``) is data-dependent — only a host-clock reading
    (``host_now() >= deadline``) or a name the loop body mutates
    (``attempt >= retries``) measures the wait itself.
    """
    for sub in ast.walk(test):
        if not isinstance(sub, ast.Compare):
            continue
        for operand in [sub.left] + list(sub.comparators):
            if _is_clock_call(operand):
                return True  # deadline check: host_now() >= deadline
            if isinstance(operand, ast.Name) and operand.id in assigned:
                return True  # attempt counter mutated in the body
    return False


def _guards_exit(branch: ast.If) -> bool:
    return any(
        isinstance(sub, (ast.Break, ast.Return, ast.Raise))
        for sub in ast.walk(branch)
    )


def _loop_is_bounded(loop: ast.While) -> bool:
    test = loop.test
    if not (isinstance(test, ast.Constant) and test.value):
        return True  # the condition itself can end the loop
    assigned = _loop_assigned_names(loop)
    for stmt in loop.body:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.If)
                and _guards_exit(sub)
                and _bounding_compare(sub.test, assigned)
            ):
                return True
    return False


class BoundedRetryRule(DeepRule):
    """Flag host-sleeping ``while`` loops that can never give up."""

    code = "RPL020"
    name = "bounded-retry"
    rationale = (
        "a sleep-and-retry loop without a reachable bound hangs forever "
        "when the condition it polls never comes true — bound it with an "
        "attempt counter or a host-clock deadline"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        for qualname in sorted(program.functions):
            fn = program.functions[qualname]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.While):
                    continue
                if _loop_is_bounded(node):
                    continue
                if not _loop_reaches_sleep(program, fn, node):
                    continue
                yield self.violation(
                    fn.module.path,
                    node,
                    f"this 'while' loop in '{fn.name}' sleeps through "
                    f"host_sleep but has no reachable bound — its test is "
                    f"constant and no branch compares an in-loop counter "
                    f"or a clock reading before break/return/raise; bound "
                    f"the attempts or check a deadline",
                )
