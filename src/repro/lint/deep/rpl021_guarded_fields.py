"""RPL021 — guarded-field discipline: one field, one lock, every thread.

The serving stack shares its job registry, queue, and stats between
socketserver handler threads, the scheduler thread, and the main
thread, all serialized by one ``threading.Condition``. Eraser's
insight applies directly: for each shared field, the *candidate lock
set* is the intersection of the locks held across all its accesses.
If some accesses hold the daemon's condition and others hold nothing,
the intersection is empty and the unguarded side is a data race — a
handler can observe a half-updated job, or the journal can read stats
mid-update.

The discipline: any mutable instance field of a serve/exec class that
is written and reached from two different thread roots (or from a
self-concurrent root like a handler pool) must be accessed under one
common lock everywhere — or under no lock anywhere, in which case
RPL024 judges whether the sharing itself is sound. RPL021 fires
precisely when the discipline is *inconsistent*: guarded on one path,
bare on another.

Positive (flagged)::

    def _loop(self):                # scheduler thread
        self.jobs_done += 1         # no lock held

    def status(self):               # handler thread
        with self.cond:
            return self.jobs_done   # guarded here, bare above -> race

Negative (clean)::

    def _loop(self):
        with self.cond:
            self.jobs_done += 1

    def status(self):
        with self.cond:
            return self.jobs_done   # every access holds self.cond

Accesses inside ``__init__``/``__post_init__`` are exempt — the object
is not yet published to other threads.
"""

from __future__ import annotations

from typing import Iterator

from ..rules.base import Violation
from .base import DeepRule
from .concurrency import ConcurrencyAnalysis, field_groups
from .program import Program

__all__ = ["GuardedFieldRule"]


class GuardedFieldRule(DeepRule):
    """Flag fields guarded on one thread root but bare on another."""

    code = "RPL021"
    name = "guarded-field-discipline"
    rationale = (
        "a shared field locked on one thread but accessed bare on "
        "another is a data race; hold the same lock at every access"
    )

    def check_program(self, program: Program) -> Iterator[Violation]:
        analysis = ConcurrencyAnalysis.of(program)
        for group in field_groups(analysis):
            if not group.writes or not group.concurrent:
                continue
            if group.candidate_locks:
                continue  # one lock covers every access
            guarded = [a for a in group.accesses if a.must]
            bare = [a for a in group.accesses if not a.must]
            if not guarded or not bare:
                continue  # consistently bare: RPL024's judgement call
            witness = next((a for a in bare if a.is_write), bare[0])
            shield = sorted(guarded[0].must)[0]
            cls, attr = group.key
            yield self.violation(
                witness.fn.module.path,
                witness.node,
                f"'{cls.rsplit('.', 1)[-1]}.{attr}' is accessed without "
                f"a lock on thread root '{witness.root.name}' but under "
                f"'{shield}' elsewhere (e.g. {guarded[0].fn.qualname}); "
                f"threads {', '.join(group.thread_ids)} race on it — "
                f"hold the same lock at every access or snapshot the "
                f"value under the lock first",
            )

