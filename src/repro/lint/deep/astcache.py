"""Parsed-AST cache shared by the shallow and deep lint steps.

CI runs the shallow pass and then the deep pass over the same tree; the
deep pass additionally re-reads everything to build the program model.
The cache pickles each file's parsed :class:`SourceModule` keyed by
absolute path and guarded by the source's SHA-256 — a stale or corrupt
cache silently degrades to re-parsing, never to wrong results.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Dict, Optional, Tuple

from ..source import SourceModule

__all__ = ["AstCache"]


class AstCache:
    """A digest-checked pickle of parsed modules; no-op without a path."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._entries: Dict[str, Tuple[str, SourceModule]] = {}
        self._dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, "rb") as fh:
                    loaded = pickle.load(fh)
                if isinstance(loaded, dict):
                    self._entries = loaded
            except Exception:
                # unpickling whatever was on disk must never take the
                # linter down; treat it as a cold cache
                self._entries = {}

    @staticmethod
    def _digest(text: str) -> str:
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def get(self, path: str, text: str) -> Optional[SourceModule]:
        entry = self._entries.get(os.path.abspath(path))
        if entry is None:
            return None
        digest, module = entry
        if digest != self._digest(text):
            return None
        return module

    def put(self, path: str, text: str, module: SourceModule) -> None:
        self._entries[os.path.abspath(path)] = (self._digest(text), module)
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (temp file + rename)."""
        if self.path is None or not self._dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(self._entries, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self.path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
