"""Deep-rule plumbing: the DeepRule ABC and engine-model helpers.

Deep rules check a :class:`~repro.lint.deep.program.Program` rather than
one module, but they emit the same :class:`~repro.lint.rules.base.Violation`
records as the shallow pass so the reporters, ``# noqa`` filtering, and
baseline all treat both passes uniformly.
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, FrozenSet, Iterator, List, Optional

from ..rules.base import Violation
from .program import ClassInfo, Program

__all__ = [
    "DeepRule",
    "DEFAULT_MODEL_PRIMITIVES",
    "concrete_engines",
    "model_primitive_table",
    "parse_primitive_set",
]

#: fallback copy of engines/base.py's MODEL_PRIMITIVES — used when the
#: analyzed tree does not include an ``engines.base`` module (test
#: fixtures); the real table is parsed statically from the tree so the
#: contract lives with the engines, not the linter
DEFAULT_MODEL_PRIMITIVES: Dict[str, FrozenSet[str]] = {
    "bsp": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
    }),
    "gas": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
    }),
    "dataflow": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
    }),
    "block-centric": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "barrier", "hdfs_read", "hdfs_write", "sample_memory",
        "gather_to_master",
    }),
    "mapreduce": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "hdfs_read", "hdfs_write", "local_disk_io", "sample_memory",
    }),
    "relational": frozenset({
        "advance", "parallel_compute", "uniform_compute", "shuffle",
        "local_disk_io", "sample_memory",
    }),
    "single-thread": frozenset({
        "advance", "uniform_compute", "local_disk_io", "sample_memory",
    }),
}


class DeepRule(abc.ABC):
    """One whole-program contract, with a stable code and rationale."""

    code: str = ""
    name: str = ""
    rationale: str = ""

    @abc.abstractmethod
    def check_program(self, program: Program) -> Iterator[Violation]:
        """Yield every violation of this rule across ``program``."""

    def violation(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=self.code,
            message=message,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(code={self.code!r})"


def concrete_engines(program: Program) -> List[ClassInfo]:
    """Every instantiable Engine subclass, sorted by qualified name.

    A class is a concrete engine when a class named ``Engine`` appears
    in its static MRO (beyond itself) and no method resolved through
    that MRO is still abstract.
    """
    engines = []
    for qualname in sorted(program.classes):
        cls = program.classes[qualname]
        if cls.name == "Engine":
            continue
        linear = program.mro(cls)
        if not any(c.name == "Engine" for c in linear[1:]):
            continue
        method_names = {name for c in linear for name in c.methods}
        resolved = (program.resolve_method(cls, n) for n in method_names)
        if any(fn is not None and fn.is_abstract for fn in resolved):
            continue
        engines.append(cls)
    return engines


def parse_primitive_set(node: ast.expr) -> Optional[FrozenSet[str]]:
    """Statically evaluate a ``frozenset({...})`` / set-literal of strings."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name not in ("frozenset", "set") or len(node.args) != 1:
            return None
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = []
        for elt in node.elts:
            if not isinstance(elt, ast.Constant) or not isinstance(
                elt.value, str
            ):
                return None
            values.append(elt.value)
        return frozenset(values)
    return None


def model_primitive_table(program: Program) -> Dict[str, FrozenSet[str]]:
    """The model → allowed-primitives map, parsed from ``engines.base``.

    Falls back to :data:`DEFAULT_MODEL_PRIMITIVES` when the analyzed
    tree has no ``engines.base`` module or its table is unparseable.
    """
    for name in sorted(program.modules):
        if name == "engines.base" or name.endswith(".engines.base"):
            node = program.modules[name].assigns.get("MODEL_PRIMITIVES")
            if isinstance(node, ast.Dict):
                table: Dict[str, FrozenSet[str]] = {}
                for key, value in zip(node.keys, node.values):
                    if not isinstance(key, ast.Constant):
                        continue
                    parsed = parse_primitive_set(value)
                    if parsed is not None:
                        table[str(key.value)] = parsed
                if table:
                    return table
    return dict(DEFAULT_MODEL_PRIMITIVES)
