"""Parsed-source container and import resolution shared by every rule.

A :class:`SourceModule` bundles one file's text, its AST, and the
``# noqa`` suppression map so rules never re-tokenize. The
:class:`ImportMap` resolves local names back to the fully qualified
module path they were imported from (``np.random.rand`` →
``numpy.random.rand``), which is what lets the wall-clock and
randomness rules see through aliases.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

__all__ = ["SourceModule", "ImportMap", "dotted_parts", "dotted_name", "target_chain"]

#: flake8-compatible suppression comment: ``# noqa`` or ``# noqa: RPL001, RPL004``
_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)


class ImportMap:
    """Maps local binding names to the qualified names they import."""

    def __init__(self) -> None:
        self._bindings: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        """Collect every import binding in the module, at any depth."""
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports._bindings[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds the name ``a`` to package a
                        root = alias.name.split(".", 1)[0]
                        imports._bindings[root] = root
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports._bindings[local] = f"{module}.{alias.name}"
        return imports

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Rewrite the first segment of a dotted name via the bindings."""
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        target = self._bindings.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string, or None."""
    parts = dotted_parts(node)
    return ".".join(parts) if parts else None


def target_chain(node: ast.AST) -> Optional[List[str]]:
    """Name chain of an assignment target, looking through subscripts.

    ``graph.adj[0].weights`` → ``["graph", "adj", "weights"]``. Returns
    None when the target is not rooted at a plain name (e.g. a call
    result), which no purity rule can reason about statically.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            parts.reverse()
            return parts
        else:
            return None


@dataclass
class SourceModule:
    """One file's worth of everything a rule needs."""

    path: str
    text: str
    tree: ast.Module
    imports: ImportMap
    #: line → suppressed codes; None means a bare ``# noqa`` (all codes)
    noqa: Dict[int, Optional[FrozenSet[str]]]

    @classmethod
    def parse(cls, text: str, path: str = "<string>") -> "SourceModule":
        """Parse source text; raises SyntaxError on unparseable input."""
        tree = ast.parse(text, filename=path)
        noqa: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match:
                codes = match.group("codes")
                noqa[lineno] = (
                    frozenset(c.strip().upper() for c in codes.split(","))
                    if codes
                    else None
                )
        return cls(
            path=path,
            text=text,
            tree=tree,
            imports=ImportMap.from_tree(tree),
            noqa=noqa,
        )

    def suppressed(self, code: str, line: int) -> bool:
        """True when ``# noqa`` on ``line`` covers ``code``."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        return codes is None or code in codes
