"""The benchmark-as-a-service daemon: one socket, one warm cache, many clients.

``repro serve`` starts a long-lived process that accepts experiment
submissions over a local stream socket (a unix path, or ``host:port``
on loopback for environments without ``AF_UNIX``). Connections are
handled by a thread per client, but *all* execution funnels through a
single scheduler thread holding one :class:`~repro.serve.queue.FairQueue`
and one :class:`~repro.serve.scheduler.JobRunner` — so the shared cache
is raced by nobody, the service order is exactly the queue's
deterministic policy, and a served grid is bit-equal to the one-shot
``repro grid`` a client would have run alone.

Lifecycle of a submission::

    submit ──admission──▶ queued ──fair order──▶ running ──▶ done
        │ (queue-full → retry_after,                │
        │  or shed lower-priority queued work)      │
        └── cancel / deadline / shed ──▶ cancelled ─┘──▶ failed

Cancellation is cooperative all the way: a queued job flips in place,
a *running* job gets ``cancel_requested`` set and stops at its next
cell boundary (the scheduler polls the flag — and the job's deadline —
from the executor's progress hook), keeping its completed payload
prefix streamable. Deadlines are host-seconds budgets from submission;
an expired job is cancelled before start or at the next boundary.

Two ways down. ``shutdown`` (or :meth:`ServeDaemon.stop`) drains
nothing: queued jobs stay queued until served or the process exits.
``drain`` stops admissions (submissions answer ``draining``), lets the
running job and the whole queue finish, then shuts the daemon down
cleanly. Either way the daemon writes its own journal —
``_server.jsonl`` with meta ``kind="server"``, per-job spans,
queue-wait/service/latency histograms, and the sheds / deadline-expiry
/ cache-eviction counters — before returning, so every serving session
leaves the same evidence trail a grid run does.
"""

from __future__ import annotations

import socketserver
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..obs import Tracer
from ..obs.hostclock import host_now
from .protocol import (
    JOB_CANCELLED,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    OPS,
    PROTOCOL_VERSION,
    Job,
    JobRequest,
    ProtocolError,
    error_response,
    ok_response,
    recv_message,
    send_message,
)
from .queue import FairQueue
from .scheduler import JobRunner
from .stats import ServerStats, server_observation

__all__ = ["ServeDaemon", "parse_address", "DEFAULT_SOCKET"]

#: the CLI's default rendezvous point, relative to the working directory
DEFAULT_SOCKET = ".repro-serve.sock"

#: how long the scheduler dozes between wake-up checks when idle
_IDLE_WAIT = 0.2


def parse_address(text: str) -> Tuple[str, object]:
    """Classify an address string: a unix socket path or ``host:port``.

    Anything containing a path separator (or with no ``:`` at all) is a
    filesystem path; ``host:port`` with a numeric port is TCP on that
    interface (use ``127.0.0.1:0`` to let the OS pick a test port).
    """
    if "/" in text or ":" not in text:
        return ("unix", text)
    host, _, port = text.rpartition(":")
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        return ("unix", text)


class _Handler(socketserver.StreamRequestHandler):
    """One connected client: a request/response loop until EOF."""

    def handle(self) -> None:
        daemon: "ServeDaemon" = self.server.serve_daemon  # type: ignore[attr-defined]
        while True:
            try:
                message = recv_message(self.rfile)
            except ProtocolError as exc:
                # the stream may be desynchronized: answer once, hang up
                send_message(self.wfile, error_response("protocol", str(exc)))
                return
            if message is None:
                return
            try:
                response = daemon.dispatch(message)
            except ProtocolError as exc:
                response = error_response("protocol", str(exc))
            try:
                send_message(self.wfile, response)
            except (BrokenPipeError, ConnectionResetError):
                return
            if message.get("op") == "shutdown" and response.get("ok"):
                return


class _TcpServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "UnixStreamServer"):
    class _UnixServer(socketserver.ThreadingMixIn,
                      socketserver.UnixStreamServer):
        daemon_threads = True
else:  # pragma: no cover - platforms without AF_UNIX
    _UnixServer = None  # type: ignore[assignment,misc]


class ServeDaemon:
    """The serving process: socket front, fair queue, one executor thread."""

    def __init__(
        self,
        address: str = DEFAULT_SOCKET,
        cache: Union[None, str, Path] = None,
        jobs: int = 1,
        max_queue_cells: int = 256,
        journal_path: Union[None, str, Path] = None,
        cache_budget: Optional[int] = None,
        default_deadline: float = 0.0,
    ) -> None:
        if default_deadline < 0:
            raise ValueError("default_deadline must be >= 0 host seconds")
        self.journal_path = Path(journal_path) if journal_path else None
        self.start_host = host_now()
        self.tracer = Tracer(lambda: host_now() - self.start_host)
        self.stats = ServerStats(start_host=self.start_host)
        self.runner = JobRunner(cache, jobs=jobs, cache_budget=cache_budget)
        self.queue = FairQueue(max_cells=max_queue_cells)
        #: host-seconds budget stamped on jobs that carry none of their own
        self.default_deadline = default_deadline
        #: one lock for queue + registry + stats; scheduler waits on it
        self.cond = threading.Condition()
        self.jobs: Dict[str, Job] = {}
        self._seq = 0
        self._stopping = False
        self._draining = False
        self._scheduler: Optional[threading.Thread] = None
        self._server_thread: Optional[threading.Thread] = None

        kind, target = parse_address(address)
        if kind == "unix":
            if _UnixServer is None:  # pragma: no cover
                raise OSError("AF_UNIX is unavailable; use host:port")
            path = Path(target)
            if path.exists():
                path.unlink()
            self.server = _UnixServer(str(target), _Handler)
            self.address = str(target)
            self._socket_path: Optional[Path] = path
        else:
            self.server = _TcpServer(tuple(target), _Handler)
            host, port = self.server.server_address[:2]
            self.address = f"{host}:{port}"
            self._socket_path = None
        self.server.serve_daemon = self  # type: ignore[attr-defined]

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Run the socket loop and scheduler in background threads."""
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="serve-scheduler", daemon=True
        )
        self._scheduler.start()
        self._server_thread = threading.Thread(
            target=self.server.serve_forever, name="serve-socket", daemon=True
        )
        self._server_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run until a ``shutdown`` op arrives (the ``repro serve`` path)."""
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="serve-scheduler", daemon=True
        )
        self._scheduler.start()
        try:
            self.server.serve_forever()
        finally:
            self._finish()

    def stop(self) -> None:
        """Stop accepting, wind down the running job, write the journal.

        The in-flight job (if any) is cancelled cooperatively at its
        next cell boundary; still-queued jobs are failed with a clean
        error payload. Use the ``drain`` op to finish the backlog
        instead.
        """
        self.server.shutdown()
        self._finish()

    def _finish(self) -> None:
        with self.cond:
            self._stopping = True
            # an in-flight job stops cooperatively at its next cell
            # boundary instead of holding the shutdown hostage
            for job in self.jobs.values():
                if job.state == JOB_RUNNING:
                    job.cancel_requested = True
            self.cond.notify_all()
        if self._scheduler is not None:
            self._scheduler.join()
        with self.cond:
            # the scheduler is gone: whatever never reached a terminal
            # state gets a clean error payload instead of limbo
            for job in self.jobs.values():
                if not job.done:
                    self.queue.cancel(job.id)
                    job.state = JOB_FAILED
                    job.error = "daemon stopped before the job was served"
                    job.finished_host = host_now()
                    self.stats.record_job(job)
            self.cond.notify_all()
        self.server.server_close()
        if self._socket_path is not None and self._socket_path.exists():
            self._socket_path.unlink()
        if self.journal_path is not None:
            self.write_journal(self.journal_path)

    def write_journal(self, path: Union[str, Path]) -> Path:
        """Write ``_server.jsonl`` for this serving session.

        Snapshot-then-release: the observation is assembled from the
        live stats under the lock, the file write happens outside it
        (RPL021/RPL022) — a slow disk never stalls handler threads.
        """
        with self.cond:
            obs = server_observation(
                self.stats, self.address, tracer=self.tracer
            )
        path = Path(path)
        obs.journal().write(path)
        return path

    # -- the scheduler thread ----------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self.cond:
                while not self._stopping and len(self.queue) == 0:
                    if self._draining:
                        # admissions are closed and the backlog is
                        # served: take the whole daemon down cleanly
                        threading.Thread(
                            target=self.server.shutdown, daemon=True
                        ).start()
                        return
                    self.cond.wait(timeout=_IDLE_WAIT)
                if self._stopping:
                    return
                job = self.queue.take()
                if job is None:
                    continue
                if job.expired(host_now()):
                    # never started: cancel in place of serving
                    job.state = JOB_CANCELLED
                    job.error = "deadline-exceeded before start"
                    job.finished_host = host_now()
                    self.stats.deadline_expired += 1
                    self.stats.record_job(job)
                    self.cond.notify_all()
                    continue
                job.state = JOB_RUNNING
                job.started_host = host_now()
            request = job.request
            with self.tracer.span(
                "job", cat="serve", job=job.id, client=request.client,
                cells=request.cells, priority=request.priority,
            ):
                outcome = self.runner.run_job(
                    job, on_cell=self._on_cell, should_stop=self._should_stop
                )
            # the cache is only ever driven from this thread, so its
            # eviction counter is safe to read lock-free here; the
            # stats mirror is published under the lock below
            evictions = (
                self.runner.cache.evictions
                if self.runner.cache is not None else 0
            )
            with self.cond:
                job.state = outcome.state
                job.error = outcome.error
                job.cost_dollars = outcome.cost_dollars
                job.finished_host = host_now()
                self.stats.evictions = evictions
                self.stats.record_job(job)
                self.cond.notify_all()

    def _on_cell(self, job: Job, payload: dict, from_cache: bool) -> None:
        """Publish one rendered payload and wake result-stream waiters."""
        with self.cond:
            job.payloads.append(payload)
            if from_cache:
                job.cache_hits += 1
            else:
                job.executed += 1
            self.cond.notify_all()

    def _should_stop(self, job: Job) -> Optional[Tuple[str, str]]:
        """Cell-boundary poll: does the running job have to stop here?"""
        with self.cond:
            if job.cancel_requested:
                return (
                    JOB_CANCELLED,
                    f"cancelled after {len(job.payloads)} of "
                    f"{job.request.cells} cells",
                )
            if job.expired(host_now()):
                self.stats.deadline_expired += 1
                return (
                    JOB_CANCELLED,
                    f"deadline-exceeded after {len(job.payloads)} of "
                    f"{job.request.cells} cells",
                )
        return None

    # -- protocol dispatch --------------------------------------------------

    def dispatch(self, message: dict) -> dict:
        """Answer one request frame (called from handler threads)."""
        op = message.get("op")
        if op not in OPS:
            return error_response("unknown-op", f"unknown op {op!r}")
        return getattr(self, f"_op_{op}")(message)

    def _job_for(self, message: dict) -> Job:
        job_id = message.get("job")
        job = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}")
        return job

    def _op_ping(self, message: dict) -> dict:
        return ok_response(version=PROTOCOL_VERSION, address=self.address)

    def _op_submit(self, message: dict) -> dict:
        request = JobRequest.from_dict(message.get("job"))
        with self.cond:
            if self._stopping:
                return error_response("shutting-down", "daemon is stopping")
            if self._draining:
                return error_response("draining", "daemon is draining")
            self._seq += 1
            job = Job(
                id=f"j-{self._seq:06d}", request=request, seq=self._seq,
                submitted_host=host_now(),
            )
            deadline = request.deadline or self.default_deadline
            if deadline > 0:
                job.deadline_host = job.submitted_host + deadline
            retry_after = self.queue.offer(job)
            if retry_after is not None:
                # before bouncing a higher-priority job, displace queued
                # lower-class work (the shed victims get a clean error)
                shed = self.queue.shed_for(job)
                for victim in shed:
                    victim.error = (
                        "shed: displaced by higher-priority submission"
                    )
                    victim.finished_host = host_now()
                    self.stats.shed += 1
                    self.stats.record_job(victim)
                if shed:
                    retry_after = self.queue.offer(job)
            if retry_after is not None:
                self._seq -= 1  # rejected submissions do not consume ids
                self.stats.record_rejection(request.client)
                return error_response(
                    "queue-full",
                    f"queue holds {self.queue.backlog_cells()} of "
                    f"{self.queue.max_cells} cells",
                    retry_after=retry_after,
                )
            self.jobs[job.id] = job
            position = self.queue.position(job.id)
            self.cond.notify_all()
        return ok_response(job=job.id, position=position, cells=request.cells)

    def _op_status(self, message: dict) -> dict:
        with self.cond:
            job = self._job_for(message)
            position = (self.queue.position(job.id)
                        if job.state == JOB_QUEUED else None)
            return ok_response(**job.status_dict(position=position))

    def _op_results(self, message: dict) -> dict:
        after = message.get("after", 0)
        if not isinstance(after, int) or isinstance(after, bool) or after < 0:
            raise ProtocolError(f"bad results cursor {after!r}")
        with self.cond:
            job = self._job_for(message)
            payloads = list(job.payloads[after:])
            next_cursor = after + len(payloads)
            return ok_response(
                job=job.id, state=job.state, payloads=payloads,
                next=next_cursor,
                complete=job.done and next_cursor >= len(job.payloads),
                error_message=job.error,
            )

    def _op_wait(self, message: dict) -> dict:
        timeout = message.get("timeout", 300.0)
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ProtocolError(f"bad wait timeout {timeout!r}")
        deadline = host_now() + float(timeout)
        with self.cond:
            job = self._job_for(message)
            while not job.done:
                remaining = deadline - host_now()
                if remaining <= 0:
                    return error_response(
                        "timeout", f"job {job.id} still {job.state}",
                        **job.status_dict(),
                    )
                self.cond.wait(timeout=min(remaining, _IDLE_WAIT))
            return ok_response(**job.status_dict())

    def _op_cancel(self, message: dict) -> dict:
        with self.cond:
            job = self._job_for(message)
            if job.done:
                return error_response(
                    "not-cancellable", f"job {job.id} already {job.state}"
                )
            if job.state == JOB_RUNNING:
                # cooperative: the scheduler sees the flag at the next
                # cell boundary and lands the job in ``cancelled``
                job.cancel_requested = True
                self.cond.notify_all()
                return ok_response(cancelling=True, **job.status_dict())
            self.queue.cancel(job.id)
            job.finished_host = host_now()
            self.stats.record_job(job)
            self.cond.notify_all()
            return ok_response(**job.status_dict())

    def _op_stats(self, message: dict) -> dict:
        # stats.evictions mirrors the scheduler-owned cache counter,
        # refreshed at every job boundary — it may lag a job in flight
        with self.cond:
            return ok_response(
                stats=self.stats.snapshot(),
                queue={
                    "depth": len(self.queue),
                    "backlog_cells": self.queue.backlog_cells(),
                    "max_cells": self.queue.max_cells,
                },
                draining=self._draining,
                uptime=host_now() - self.start_host,
            )

    def _op_drain(self, message: dict) -> dict:
        # graceful: close admissions now; the scheduler serves the
        # remaining backlog and then shuts the daemon down itself
        with self.cond:
            self._draining = True
            queued = len(self.queue)
            self.cond.notify_all()
        return ok_response(draining=True, queued=queued)

    def _op_shutdown(self, message: dict) -> dict:
        # stop the accept loop from a helper thread: shutdown() blocks
        # until serve_forever() returns, and this handler must still
        # write its response on the dying connection first
        threading.Thread(target=self.server.shutdown, daemon=True).start()
        return ok_response(stopping=True)
