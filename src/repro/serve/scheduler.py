"""The serving scheduler: one job at a time through the shared executor.

This is the ``run()`` half of the submit/run split (seisflows'
``Cluster.submit()`` hands work to a workload manager that executes it;
here the daemon's protocol layer is the submitter and this module the
manager). Every job routes through :func:`repro.exec.execute_specs`
with one shared :class:`~repro.exec.cache.ResultCache`, which is what
makes the daemon worth sharing:

* the **warm dataset pool** — datasets are process-memoized by
  ``load_dataset``, so the first job to touch (name, size) pays
  generation and every later job reuses the object;
* the **warm result cache** — content-addressed cells survive across
  jobs *and* across clients, so overlapping submissions replay
  byte-identical results instead of recomputing.

Because cells execute through the very same code path as a one-shot
``repro grid``, a served result is bit-equal to the grid the client
would have computed alone (``ResultGrid.same_results`` plus
byte-identical per-cell journals) — the serving layer adds queueing,
never new numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from ..exec.cache import ResultCache
from ..exec.executor import execute_specs
from ..exec.progress import SOURCE_CACHE, CellEvent
from ..exec.retry import ExecutorError
from ..exec.serialize import result_to_payload
from .protocol import JOB_DONE, JOB_FAILED, Job

__all__ = ["JobRunner"]


class JobRunner:
    """Executes admitted jobs against the shared warm cache pool."""

    def __init__(
        self,
        cache: Union[None, str, Path, ResultCache],
        jobs: int = 1,
    ) -> None:
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.jobs = max(1, jobs)

    def warm(self, datasets, size: str) -> int:
        """Pre-generate datasets into the process pool; returns the count."""
        from ..datasets.registry import load_dataset

        count = 0
        for name in datasets:
            load_dataset(name, size)
            count += 1
        return count

    def run_job(self, job: Job, on_cell=None) -> Job:
        """Execute one job's grid, filling its payload stream in plan order.

        ``on_cell`` is called after each appended payload (the daemon
        wakes result-stream waiters there). The job object is mutated in
        place and returned in a terminal state; an executor-level
        failure (retry exhaustion, broken cache) marks the job failed
        rather than killing the daemon.
        """
        payloads: List[dict] = job.payloads

        def progress(event: CellEvent) -> None:
            payloads.append(result_to_payload(event.result))
            if event.source == SOURCE_CACHE:
                job.cache_hits += 1
            else:
                job.executed += 1
            if on_cell is not None:
                on_cell(job)

        try:
            execution = execute_specs(
                [job.request.to_spec()],
                jobs=self.jobs,
                cache=self.cache,
                progress=progress,
            )
        except ExecutorError as exc:
            job.state = JOB_FAILED
            job.error = str(exc)
            return job
        job.cost_dollars = _metric(execution, "cost.dollars")
        job.state = JOB_DONE
        return job


def _metric(execution, name: str) -> float:
    try:
        return float(execution.observation.metrics.value(name))
    except KeyError:
        return 0.0
