"""The serving scheduler: one job at a time through the shared executor.

This is the ``run()`` half of the submit/run split (seisflows'
``Cluster.submit()`` hands work to a workload manager that executes it;
here the daemon's protocol layer is the submitter and this module the
manager). Every job routes through :func:`repro.exec.execute_specs`
with one shared :class:`~repro.exec.cache.ResultCache`, which is what
makes the daemon worth sharing:

* the **warm dataset pool** — datasets are process-memoized by
  ``load_dataset``, so the first job to touch (name, size) pays
  generation and every later job reuses the object;
* the **warm result cache** — content-addressed cells survive across
  jobs *and* across clients, so overlapping submissions replay
  byte-identical results instead of recomputing.

Because cells execute through the very same code path as a one-shot
``repro grid``, a served result is bit-equal to the grid the client
would have computed alone (``ResultGrid.same_results`` plus
byte-identical per-cell journals) — the serving layer adds queueing,
never new numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from ..exec.cache import ResultCache
from ..exec.executor import execute_specs
from ..exec.progress import SOURCE_CACHE, CellEvent
from ..exec.retry import ExecutorError
from ..exec.serialize import result_to_payload
from .protocol import JOB_DONE, JOB_FAILED, Job

__all__ = ["JobInterrupted", "JobRunner"]


class JobInterrupted(Exception):
    """Raised inside the progress hook to stop a running job's grid.

    The progress callback fires at every cell boundary *outside* the
    executor's retry machinery, so raising here unwinds cleanly out of
    :func:`execute_specs` — the cooperative path that makes running
    jobs cancellable (``serve-ctl cancel``, deadline expiry) without
    killing the scheduler thread.
    """

    def __init__(self, state: str, error: str) -> None:
        super().__init__(error)
        self.state = state
        self.error = error


class JobRunner:
    """Executes admitted jobs against the shared warm cache pool."""

    def __init__(
        self,
        cache: Union[None, str, Path, ResultCache],
        jobs: int = 1,
        cache_budget: Optional[int] = None,
    ) -> None:
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache, max_cells=cache_budget)
        self.cache = cache
        self.jobs = max(1, jobs)

    def warm(self, datasets, size: str) -> int:
        """Pre-generate datasets into the process pool; returns the count."""
        from ..datasets.registry import load_dataset

        count = 0
        for name in datasets:
            load_dataset(name, size)
            count += 1
        return count

    def run_job(self, job: Job, on_cell=None, should_stop=None) -> Job:
        """Execute one job's grid, filling its payload stream in plan order.

        ``on_cell`` is called after each appended payload (the daemon
        wakes result-stream waiters there). ``should_stop`` is polled at
        the same cell boundary: returning a ``(state, error)`` pair
        interrupts the grid cooperatively and lands the job in that
        terminal state with its completed prefix intact — how a running
        job honours ``cancel`` and deadline expiry. The job object is
        mutated in place and returned in a terminal state; an
        executor-level failure (retry exhaustion, broken cache) marks
        the job failed rather than killing the daemon.
        """
        payloads: List[dict] = job.payloads

        def progress(event: CellEvent) -> None:
            payloads.append(result_to_payload(event.result))
            if event.source == SOURCE_CACHE:
                job.cache_hits += 1
            else:
                job.executed += 1
            if on_cell is not None:
                on_cell(job)
            if should_stop is not None:
                stop = should_stop(job)
                if stop is not None:
                    raise JobInterrupted(*stop)

        try:
            execution = execute_specs(
                [job.request.to_spec()],
                jobs=self.jobs,
                cache=self.cache,
                progress=progress,
            )
        except JobInterrupted as exc:
            job.state = exc.state
            job.error = exc.error
            return job
        except ExecutorError as exc:
            job.state = JOB_FAILED
            job.error = str(exc)
            return job
        job.cost_dollars = _metric(execution, "cost.dollars")
        job.state = JOB_DONE
        return job


def _metric(execution, name: str) -> float:
    try:
        return float(execution.observation.metrics.value(name))
    except KeyError:
        return 0.0
