"""The serving scheduler: one job at a time through the shared executor.

This is the ``run()`` half of the submit/run split (seisflows'
``Cluster.submit()`` hands work to a workload manager that executes it;
here the daemon's protocol layer is the submitter and this module the
manager). Every job routes through :func:`repro.exec.execute_specs`
with one shared :class:`~repro.exec.cache.ResultCache`, which is what
makes the daemon worth sharing:

* the **warm dataset pool** — datasets are process-memoized by
  ``load_dataset``, so the first job to touch (name, size) pays
  generation and every later job reuses the object;
* the **warm result cache** — content-addressed cells survive across
  jobs *and* across clients, so overlapping submissions replay
  byte-identical results instead of recomputing.

Because cells execute through the very same code path as a one-shot
``repro grid``, a served result is bit-equal to the grid the client
would have computed alone (``ResultGrid.same_results`` plus
byte-identical per-cell journals) — the serving layer adds queueing,
never new numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..exec.cache import ResultCache
from ..exec.executor import execute_specs
from ..exec.progress import SOURCE_CACHE, CellEvent
from ..exec.retry import ExecutorError
from ..exec.serialize import result_to_payload
from .protocol import JOB_DONE, JOB_FAILED, Job

__all__ = ["JobInterrupted", "JobOutcome", "JobRunner"]


@dataclass(frozen=True)
class JobOutcome:
    """A finished job's terminal verdict, owned by the runner's thread.

    ``run_job`` returns one of these instead of mutating the shared
    :class:`Job` record: the daemon applies it under its condition lock
    (RPL021), so handler threads never observe a half-written terminal
    state — a job is running, then atomically done/failed/cancelled.
    """

    state: str
    error: Optional[str] = None
    cost_dollars: float = 0.0


class JobInterrupted(Exception):
    """Raised inside the progress hook to stop a running job's grid.

    The progress callback fires at every cell boundary *outside* the
    executor's retry machinery, so raising here unwinds cleanly out of
    :func:`execute_specs` — the cooperative path that makes running
    jobs cancellable (``serve-ctl cancel``, deadline expiry) without
    killing the scheduler thread.
    """

    def __init__(self, state: str, error: str) -> None:
        super().__init__(error)
        self.state = state
        self.error = error


class JobRunner:
    """Executes admitted jobs against the shared warm cache pool."""

    def __init__(
        self,
        cache: Union[None, str, Path, ResultCache],
        jobs: int = 1,
        cache_budget: Optional[int] = None,
    ) -> None:
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache, max_cells=cache_budget)
        self.cache = cache
        self.jobs = max(1, jobs)

    def warm(self, datasets, size: str) -> int:
        """Pre-generate datasets into the process pool; returns the count."""
        from ..datasets.registry import load_dataset

        count = 0
        for name in datasets:
            load_dataset(name, size)
            count += 1
        return count

    def run_job(self, job: Job, on_cell, should_stop=None) -> JobOutcome:
        """Execute one job's grid, streaming payloads in plan order.

        The runner thread never touches the shared ``job`` record:
        every rendered payload is handed to the mandatory ``on_cell``
        callback as ``on_cell(job, payload, from_cache)`` — the daemon
        publishes it (and wakes result-stream waiters) under its lock.
        ``should_stop`` is polled at the same cell boundary: returning
        a ``(state, error)`` pair interrupts the grid cooperatively
        with the completed payload prefix intact — how a running job
        honours ``cancel`` and deadline expiry. The terminal verdict
        comes back as a :class:`JobOutcome`; an executor-level failure
        (retry exhaustion, broken cache) fails the job rather than
        killing the daemon.
        """

        def progress(event: CellEvent) -> None:
            # render outside any lock — serialization is the slow part
            payload = result_to_payload(event.result)
            on_cell(job, payload, event.source == SOURCE_CACHE)
            if should_stop is not None:
                stop = should_stop(job)
                if stop is not None:
                    raise JobInterrupted(*stop)

        try:
            execution = execute_specs(
                [job.request.to_spec()],
                jobs=self.jobs,
                cache=self.cache,
                progress=progress,
            )
        except JobInterrupted as exc:
            return JobOutcome(state=exc.state, error=exc.error)
        except ExecutorError as exc:
            return JobOutcome(state=JOB_FAILED, error=str(exc))
        return JobOutcome(
            state=JOB_DONE,
            cost_dollars=_metric(execution, "cost.dollars"),
        )


def _metric(execution, name: str) -> float:
    try:
        return float(execution.observation.metrics.value(name))
    except KeyError:
        return 0.0
