"""The serving benchmark: hundreds of clients, Zipf-skewed popularity.

Real benchmark-as-a-service traffic is skewed: everyone re-runs the
famous configurations and a long tail probes the rest. The load
generator reproduces that shape deterministically — a seeded
``random.Random`` draws each simulated client's submission from a fixed
cell catalog under a Zipf(s) popularity law, so the *set* of distinct
cells (and therefore the cache hit-rate, the executed-cell count, and
the total simulated bill) is a pure function of the seed, while the
latency percentiles measure this host's serving performance.

One run:

1. starts an in-process :class:`~repro.serve.daemon.ServeDaemon` on a
   loopback port with a fresh cache directory and a deliberately small
   admission bound (so queue-full backoff is exercised, not just
   possible);
2. connects ``clients`` simulated clients (mixed priorities and
   weights), each submitting one small job — mostly single cells,
   sometimes a two-size column of the same configuration;
3. waits for every job, spot-checks bit-equality of the most popular
   configuration against a one-shot executor run (``same_results`` plus
   byte-identical cell journals), and collects the daemon's stats;
4. writes ``BENCH_serve.json`` and appends the canonical history line
   to ``BENCH_history.jsonl`` — the same trajectory file the grid and
   cost benches feed, so ``repro report --diff`` covers serving too.

Runnable as ``repro serve-bench`` or ``python -m repro.serve.loadgen``.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple

from ..obs.hostclock import host_now
from .client import ServeClient, grid_from_payloads
from .daemon import ServeDaemon

__all__ = ["run_loadgen", "main", "SERVE_BENCH_SCHEMA_VERSION", "cell_catalog"]

#: bump when the BENCH_serve.json record layout changes
SERVE_BENCH_SCHEMA_VERSION = 1

#: engines served by the bench: the intersection of the PageRank and
#: grid lineups, so every catalog cell is valid for both workloads
BENCH_SYSTEMS = ("BB", "BV", "G", "S", "FG")

#: the workload mix: the paper's iterative staple plus the k-hop
#: traversal regime (§3.3) added by this repo's extension grid
BENCH_WORKLOADS = ("pagerank", "khop")

BENCH_DATASETS = ("twitter", "wrn")
BENCH_CLUSTER_SIZES = (16, 32)

#: Zipf skew: s≈1.2 gives the classic few-head/long-tail split
ZIPF_S = 1.2

#: fraction of submissions that ask for both cluster sizes (two cells)
_TWO_CELL_SHARE = 0.3


def cell_catalog() -> List[Tuple[str, str, str, int]]:
    """Every (system, workload, dataset, cluster_size) the bench can draw."""
    return [
        (system, workload, dataset, size)
        for system in BENCH_SYSTEMS
        for workload in BENCH_WORKLOADS
        for dataset in BENCH_DATASETS
        for size in BENCH_CLUSTER_SIZES
    ]


def _zipf_weights(count: int, s: float = ZIPF_S) -> List[float]:
    return [1.0 / ((rank + 1) ** s) for rank in range(count)]


def _one_shot_payload_journals(spec) -> dict:
    """cell → canonical journal text, via the one-shot executor path."""
    from ..exec.executor import execute_specs
    from ..exec.serialize import result_to_payload

    execution = execute_specs([spec], jobs=1, cache=None)
    journals = {}
    for result in execution.grid.cells.values():
        payload = result_to_payload(result)
        key = (result.system, result.workload, result.dataset,
               result.cluster_size)
        journals[key] = payload["journal"]
    return execution.grid, journals


def run_loadgen(
    clients: int = 120,
    seed: int = 2018,
    dataset_size: str = "tiny",
    max_queue_cells: int = 96,
    output: Optional[str] = "BENCH_serve.json",
    history: Optional[str] = None,
    journal: Optional[str] = None,
) -> dict:
    """Drive one seeded load-test against an in-process daemon."""
    rng = random.Random(seed)
    catalog = cell_catalog()
    weights = _zipf_weights(len(catalog))

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
    daemon = ServeDaemon(
        address="127.0.0.1:0",
        cache=cache_dir,
        max_queue_cells=max_queue_cells,
        journal_path=journal,
    ).start()
    print(f"serve-bench: {clients} clients over {len(catalog)} catalog cells "
          f"(Zipf s={ZIPF_S}, seed={seed}) at {daemon.address}")

    start = host_now()
    job_ids: List[str] = []
    drawn_cells = set()
    popularity: dict = {}
    top_job: Optional[Tuple[str, tuple]] = None
    try:
        for index in range(clients):
            name = f"c-{index:04d}"
            # a tenth of the fleet is "interactive" (higher priority);
            # weights split the rest into heavy and light shares
            priority = 1 if index % 10 == 0 else 0
            weight = 2.0 if index % 3 == 0 else 1.0
            choice = rng.choices(range(len(catalog)), weights=weights, k=1)[0]
            system, workload, dataset, size = catalog[choice]
            sizes: Tuple[int, ...] = (size,)
            if rng.random() < _TWO_CELL_SHARE:
                sizes = BENCH_CLUSTER_SIZES
            for cluster_size in sizes:
                drawn_cells.add((system, workload, dataset, cluster_size))
            popularity[choice] = popularity.get(choice, 0) + 1
            with ServeClient(daemon.address, client=name) as link:
                request = link.request(
                    systems=(system,), workloads=(workload,),
                    datasets=(dataset,), cluster_sizes=sizes,
                    dataset_size=dataset_size,
                    priority=priority, weight=weight,
                )
                job_id = link.submit(request)
            job_ids.append(job_id)
            if top_job is None or popularity[choice] > top_job[1][0]:
                top_job = (job_id, (popularity[choice], request))

        # one monitor connection drains every job to completion
        with ServeClient(daemon.address, client="monitor") as monitor:
            for job_id in job_ids:
                monitor.wait(job_id, timeout=600.0)
            snapshot = monitor.stats()["stats"]

            # bit-equality spot check: the most popular submission,
            # served, must match the one-shot executor exactly
            spot_id, (_, spot_request) = top_job
            payloads = monitor.fetch_payloads(spot_id)
            served_grid = grid_from_payloads(payloads)
            oneshot_grid, oneshot_journals = _one_shot_payload_journals(
                spot_request.to_spec()
            )
            bit_equal = served_grid.same_results(oneshot_grid) and all(
                payload["journal"]
                == oneshot_journals[payloads[i]["record"]["system"],
                                    payloads[i]["record"]["workload"],
                                    payloads[i]["record"]["dataset"],
                                    payloads[i]["record"]["cluster_size"]]
                for i, payload in enumerate(payloads)
            )
    finally:
        daemon.stop()
        shutil.rmtree(cache_dir, ignore_errors=True)
    seconds = host_now() - start

    record = {
        "bench": "serve",
        "schema_version": SERVE_BENCH_SCHEMA_VERSION,
        "seed": seed,
        "zipf_s": ZIPF_S,
        "clients": clients,
        "dataset_size": dataset_size,
        "catalog_cells": len(catalog),
        "systems": list(BENCH_SYSTEMS),
        "workloads": list(BENCH_WORKLOADS),
        "datasets": list(BENCH_DATASETS),
        "cluster_sizes": list(BENCH_CLUSTER_SIZES),
        "max_queue_cells": max_queue_cells,
        "jobs": snapshot["jobs"],
        "rejected_submissions": snapshot["rejected"],
        "cells": snapshot["cells"],
        "distinct_cells": len(drawn_cells),
        "executed": snapshot["executed"],
        "cache_hits": snapshot["cache_hits"],
        # deterministic given the seed: one execution per distinct cell
        "cache_hit_rate": snapshot["cache_hit_rate"],
        "cost_dollars": snapshot["dollars"],
        # host-measured serving performance (varies across machines)
        "seconds": seconds,
        "p50_latency": snapshot["p50_latency"],
        "p99_latency": snapshot["p99_latency"],
        "p50_queue_wait": snapshot["p50_queue_wait"],
        "p99_queue_wait": snapshot["p99_queue_wait"],
        "bit_equal_spotcheck": bool(bit_equal),
        "notes": {
            "determinism": (
                "cells, distinct_cells, cache_hit_rate, and cost_dollars "
                "are functions of the seed; latencies are host-measured"
            ),
        },
    }
    if output:
        Path(output).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        if history is None:
            history = str(Path(output).with_name("BENCH_history.jsonl"))
    if history:
        with open(history, "a", encoding="ascii") as fh:
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    print(
        f"served {record['cells']} cells for {clients} clients: "
        f"hit-rate {record['cache_hit_rate']:.2f} · "
        f"p50 {record['p50_latency']*1000:.0f}ms · "
        f"p99 {record['p99_latency']*1000:.0f}ms · "
        f"${record['cost_dollars']:,.0f} · "
        f"bit-equal {record['bit_equal_spotcheck']}"
        + (f" -> {output}" if output else "")
    )
    return record


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point shared by ``repro serve-bench`` and ``-m``."""
    parser = argparse.ArgumentParser(
        prog="serve-bench",
        description="Load-test the serve daemon with Zipf-skewed clients.",
    )
    parser.add_argument("--clients", type=int, default=120,
                        help="simulated client count (default 120)")
    parser.add_argument("--seed", type=int, default=2018,
                        help="load-pattern seed (default 2018)")
    parser.add_argument("--size", default="tiny",
                        choices=("tiny", "small", "medium"),
                        help="dataset size served (default tiny)")
    parser.add_argument("--max-queue", type=int, default=96, metavar="CELLS",
                        help="admission-control bound in cells (default 96)")
    parser.add_argument("-o", "--output", default="BENCH_serve.json",
                        help="where the JSON record goes")
    parser.add_argument("--history", default=None, metavar="FILE",
                        help="append the record here as one JSON line "
                             "(default: BENCH_history.jsonl next to the "
                             "output; pass '' to skip)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="also write the daemon's _server.jsonl here")
    args = parser.parse_args(argv)
    run_loadgen(
        clients=args.clients, seed=args.seed, dataset_size=args.size,
        max_queue_cells=args.max_queue, output=args.output,
        history=args.history, journal=args.journal,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
