"""repro.serve: the benchmark-as-a-service layer over the grid executor.

One long-lived daemon (``repro serve``) accepts typed experiment
submissions from many concurrent clients over a local socket, orders
them with weighted fair queueing under strict priority classes, bounds
its backlog with admission control, and executes everything through the
ordinary :mod:`repro.exec` executor against one shared warm dataset +
result-cache pool — so a served grid is bit-equal to the one-shot
``repro grid`` run the client would have computed alone, and
overlapping submissions pay for each distinct cell once.

The package splits along the protocol/policy/mechanism seams:

* :mod:`~repro.serve.protocol` — the canonical-JSON line protocol and
  the typed, validated :class:`JobRequest`;
* :mod:`~repro.serve.queue` — :class:`FairQueue`: start-time fair
  queueing, priorities, admission control;
* :mod:`~repro.serve.scheduler` — :class:`JobRunner`: the bridge into
  ``execute_specs`` and the shared cache;
* :mod:`~repro.serve.daemon` — :class:`ServeDaemon`: sockets, the
  single scheduler thread, ``_server.jsonl``;
* :mod:`~repro.serve.client` — :class:`ServeClient`: backoff on
  rejection, resumable result streams, grid reconstruction;
* :mod:`~repro.serve.stats` — latency percentiles, hit-rate, and the
  per-client bill behind ``repro report``'s serving section;
* :mod:`~repro.serve.loadgen` — the seeded Zipf load generator behind
  ``repro serve-bench`` and ``BENCH_serve.json``.
"""

from .client import (
    QueueFullError,
    ServeClient,
    ServeError,
    grid_from_payloads,
)
from .daemon import DEFAULT_SOCKET, ServeDaemon, parse_address
from .protocol import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    PROTOCOL_VERSION,
    Job,
    JobRequest,
    ProtocolError,
)
from .queue import FairQueue
from .scheduler import JobInterrupted, JobOutcome, JobRunner
from .stats import ServerStats, percentile, server_observation

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "JobRequest",
    "Job",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "FairQueue",
    "JobInterrupted",
    "JobOutcome",
    "JobRunner",
    "ServeDaemon",
    "DEFAULT_SOCKET",
    "parse_address",
    "ServeClient",
    "ServeError",
    "QueueFullError",
    "grid_from_payloads",
    "ServerStats",
    "percentile",
    "server_observation",
]
