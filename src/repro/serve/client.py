"""The serve client: submit, back off, stream results, rebuild the grid.

:class:`ServeClient` speaks the line protocol over one connection and
hides the serving mechanics from callers:

* **submission with backoff** — an admission-control rejection
  (``queue-full``) is retried a bounded number of times under capped
  exponential backoff seeded from the daemon's ``retry_after`` hint,
  with deterministic jitter (a client-seeded RNG, so two clients named
  differently never thundering-herd in lockstep while any one client's
  schedule stays reproducible); exhaustion raises the typed
  :class:`QueueFullError`, through the host-clock door throughout;
* **resumable result streams** — cell payloads are fetched with an
  ``after`` cursor, so a client that reconnects (or a test that drops
  the connection mid-stream) continues from where it stopped instead of
  re-transferring the prefix;
* **grid reconstruction** — :func:`grid_from_payloads` turns the
  streamed payloads back into a :class:`~repro.core.runner.ResultGrid`
  through the executor's own deserializer, so everything downstream
  (tables, figures, ``same_results``) treats a served grid exactly like
  a locally computed one. Each payload carries the cell's canonical
  journal text; writing it back out reproduces the ``repro grid
  --trace`` files byte for byte.
"""

from __future__ import annotations

import random
import socket
from typing import Iterator, List, Optional

from ..core.runner import ResultGrid
from ..exec.serialize import payload_to_result
from ..obs.hostclock import host_now, host_sleep
from .daemon import parse_address
from .protocol import (
    JOB_FAILED,
    JobRequest,
    recv_message,
    send_message,
)

__all__ = [
    "ServeError", "QueueFullError", "ServeClient", "grid_from_payloads",
]

#: how many queue-full rejections submit() absorbs before giving up
DEFAULT_SUBMIT_RETRIES = 20

#: polling cadence while streaming a job that is still producing cells
_STREAM_POLL = 0.05

#: backoff never sleeps longer than this per attempt (host seconds)
_BACKOFF_CAP = 2.0


class ServeError(RuntimeError):
    """The daemon answered with an error this client cannot recover from."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class QueueFullError(ServeError):
    """Admission control rejected every bounded submit attempt."""

    def __init__(self, message: str, rejections: int) -> None:
        super().__init__("queue-full", message)
        self.rejections = rejections


def grid_from_payloads(payloads: List[dict]) -> ResultGrid:
    """Rebuild a result grid from a streamed payload sequence."""
    grid = ResultGrid()
    for payload in payloads:
        grid.put(payload_to_result(payload))
    return grid


class ServeClient:
    """One connection to a :class:`~repro.serve.daemon.ServeDaemon`."""

    def __init__(self, address: str, client: str = "anonymous",
                 timeout: float = 60.0) -> None:
        self.client = client
        kind, target = parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(target))
        else:
            host, port = target
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    # -- plumbing -----------------------------------------------------------

    def call(self, message: dict) -> dict:
        """One request/response round trip (raw frames)."""
        send_message(self._wfile, message)
        response = recv_message(self._rfile)
        if response is None:
            raise ServeError("disconnected", "daemon closed the connection")
        return response

    def _ok(self, message: dict) -> dict:
        response = self.call(message)
        if not response.get("ok"):
            raise ServeError(
                str(response.get("error", "error")),
                str(response.get("message", "request failed")),
            )
        return response

    def close(self) -> None:
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except OSError:
                pass
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations ---------------------------------------------------------

    def ping(self) -> dict:
        return self._ok({"op": "ping"})

    def request(self, systems, workloads, datasets, cluster_sizes,
                dataset_size: str = "small", priority: int = 0,
                weight: float = 1.0, deadline: float = 0.0) -> JobRequest:
        """A validated submission carrying this client's identity."""
        return JobRequest(
            client=self.client,
            systems=tuple(systems),
            workloads=tuple(workloads),
            datasets=tuple(datasets),
            cluster_sizes=tuple(int(s) for s in cluster_sizes),
            dataset_size=dataset_size,
            priority=priority,
            weight=weight,
            deadline=deadline,
        ).validate()

    def submit(self, request: JobRequest,
               retries: int = DEFAULT_SUBMIT_RETRIES,
               backoff_cap: float = _BACKOFF_CAP) -> str:
        """Submit a job, backing off on admission rejections; job id.

        Rejections sleep under capped exponential backoff — the
        daemon's ``retry_after`` hint doubled per consecutive
        rejection, clamped to ``backoff_cap``, jittered into
        ``[0.5, 1.0]×`` by a client-name-seeded RNG (deterministic per
        client, decorrelated across clients). ``retries`` bounds the
        loop; exhaustion raises :class:`QueueFullError`.
        """
        rng = random.Random(f"serve-submit:{self.client}")
        rejections = 0
        while True:
            response = self.call({"op": "submit", "job": request.to_dict()})
            if response.get("ok"):
                return str(response["job"])
            if response.get("error") != "queue-full":
                raise ServeError(
                    str(response.get("error", "error")),
                    str(response.get("message", "submit failed")),
                )
            if rejections >= retries:
                raise QueueFullError(
                    f"rejected {rejections + 1} times: "
                    + str(response.get("message", "queue full")),
                    rejections=rejections + 1,
                )
            hint = float(response.get("retry_after", _STREAM_POLL))
            delay = min(backoff_cap, hint * (2 ** rejections))
            rejections += 1
            host_sleep(delay * (0.5 + 0.5 * rng.random()))

    def status(self, job_id: str) -> dict:
        return self._ok({"op": "status", "job": job_id})

    def wait(self, job_id: str, timeout: float = 300.0) -> dict:
        """Block until the job reaches a terminal state; its status."""
        return self._ok({"op": "wait", "job": job_id, "timeout": timeout})

    def cancel(self, job_id: str) -> dict:
        return self._ok({"op": "cancel", "job": job_id})

    def stats(self) -> dict:
        return self._ok({"op": "stats"})

    def drain(self) -> dict:
        """Stop admissions; the daemon finishes its backlog, then exits."""
        return self._ok({"op": "drain"})

    def shutdown(self) -> dict:
        return self._ok({"op": "shutdown"})

    # -- result streaming ---------------------------------------------------

    def results(self, job_id: str, after: int = 0) -> dict:
        """One raw batch of the payload stream (cursor-resumable)."""
        return self._ok({"op": "results", "job": job_id, "after": after})

    def stream_payloads(self, job_id: str, after: int = 0,
                        timeout: Optional[float] = None) -> Iterator[dict]:
        """Yield cell payloads in plan order until the job completes.

        ``timeout`` bounds the whole stream in host seconds (a stalled
        daemon raises instead of polling forever); ``None`` trusts the
        job to terminate.
        """
        deadline = None if timeout is None else host_now() + timeout
        cursor = after
        while True:
            if deadline is not None and host_now() >= deadline:
                raise ServeError(
                    "timeout", f"job {job_id} still streaming after "
                    f"{timeout} host seconds",
                )
            batch = self.results(job_id, after=cursor)
            for payload in batch["payloads"]:
                yield payload
            cursor = int(batch["next"])
            if batch["complete"]:
                if batch["state"] == JOB_FAILED:
                    raise ServeError(
                        "job-failed",
                        str(batch.get("error_message") or "job failed"),
                    )
                return
            if not batch["payloads"]:
                host_sleep(_STREAM_POLL)

    def fetch_payloads(self, job_id: str, after: int = 0,
                       timeout: Optional[float] = None) -> List[dict]:
        """The complete payload stream, blocking until the job is done."""
        return list(self.stream_payloads(job_id, after=after, timeout=timeout))

    def fetch_grid(self, job_id: str,
                   payloads: Optional[List[dict]] = None) -> ResultGrid:
        """The finished job as a result grid (fetches if not given)."""
        if payloads is None:
            payloads = self.fetch_payloads(job_id)
        return grid_from_payloads(payloads)
