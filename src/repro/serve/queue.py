"""Weighted fair queueing with strict priority classes and admission control.

The daemon serves many clients from one queue, so two policies decide
who runs next and who gets in at all:

* **Service order** — strict priority classes first (a higher
  ``priority`` always preempts queued lower-priority work), and
  *weighted fair queueing* inside a class: each job is tagged at
  admission with a virtual finish time ``vstart + cells / weight``,
  where ``vstart`` chains off the same client's previous job (a client
  cannot bank idle credit) and the queue's virtual clock advances with
  served work. Picking the smallest tag gives each client a long-run
  share proportional to its weight — the classic start-time fair
  queueing scheme — with the global submission sequence as the
  deterministic tie-breaker, so the same submission history always
  yields the same service order.

* **Admission** — the queue bounds its backlog in *cells* (the unit of
  service cost), not jobs, so one client cannot wedge the daemon behind
  a thousand-cell grid. A submission that would overflow is rejected
  with a ``retry_after`` hint proportional to the backlog; clients back
  off and resubmit (see :meth:`ServeClient.submit`).

* **Load shedding** — before rejecting a *strictly higher-priority*
  submission, the daemon may shed queued work from the lowest priority
  class (:meth:`FairQueue.shed_for`): victims are taken from the back
  of the service order and cancelled with a ``shed`` error, so urgent
  work displaces background work instead of bouncing off a queue the
  background work filled.

The queue is plain single-threaded state: the daemon holds its one lock
around every call, which keeps the policy deterministic and directly
unit-testable without threads.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .protocol import JOB_CANCELLED, JOB_QUEUED, Job

__all__ = ["FairQueue"]

#: retry_after grows with backlog: a rough 50 ms of host time per
#: queued cell — a pacing hint, never a simulated quantity
_RETRY_PER_CELL = 0.05


class FairQueue:
    """The daemon's pending-job set: priorities, fairness, admission."""

    def __init__(self, max_cells: int = 256) -> None:
        if max_cells <= 0:
            raise ValueError("max_cells must be positive")
        self.max_cells = max_cells
        self._pending: List[Job] = []
        #: the queue's virtual clock: advances as work is served
        self._vtime = 0.0
        #: each client's last assigned virtual finish tag
        self._client_vfinish: Dict[str, float] = {}

    # -- admission ---------------------------------------------------------

    def backlog_cells(self) -> int:
        """Cells waiting in the queue (the admission-control quantity).

        Only live (still-queued) jobs count: cancelled entries awaiting
        the lazy sweep hold no capacity against new admissions.
        """
        return sum(job.request.cells for job in self._live())

    def offer(self, job: Job) -> Optional[float]:
        """Admit ``job`` or reject it.

        Returns ``None`` on admission; on rejection returns the
        ``retry_after`` hint (host seconds) and leaves the queue
        untouched.
        """
        backlog = self.backlog_cells()
        if backlog + job.request.cells > self.max_cells:
            overflow = backlog + job.request.cells - self.max_cells
            return round(_RETRY_PER_CELL * max(1, overflow), 3)
        client = job.request.client
        vstart = max(self._vtime, self._client_vfinish.get(client, 0.0))
        job.vfinish = vstart + job.request.cells / job.request.weight
        self._client_vfinish[client] = job.vfinish
        self._pending.append(job)
        return None

    # -- service order -----------------------------------------------------

    @staticmethod
    def _service_key(job: Job):
        return (-job.request.priority, job.vfinish, job.seq)

    def _live(self) -> List[Job]:
        return [job for job in self._pending if job.state == JOB_QUEUED]

    def take(self) -> Optional[Job]:
        """Pop the next job to serve (or ``None`` when idle).

        Cancelled entries are swept out lazily here; taking a job
        advances the virtual clock to its finish tag so newly admitted
        work cannot start "in the past".
        """
        live = self._live()
        if not live:
            self._pending = []
            return None
        job = min(live, key=self._service_key)
        self._pending = [j for j in live if j is not job]
        self._vtime = max(self._vtime, job.vfinish)
        return job

    def order(self) -> List[Job]:
        """Every queued job in current service order (for ``status``)."""
        return sorted(self._live(), key=self._service_key)

    def position(self, job_id: str) -> Optional[int]:
        """0-based place in the service order, or ``None`` if not queued."""
        for index, job in enumerate(self.order()):
            if job.id == job_id:
                return index
        return None

    # -- load shedding -----------------------------------------------------

    def shed_for(self, job: Job) -> List[Job]:
        """Evict queued lower-priority work until ``job`` would fit.

        Victims come from the back of the service order and only from
        priority classes *strictly below* the newcomer's — equal-priority
        work is never displaced, so two same-class clients cannot shed
        each other. Returns the shed jobs (state already
        ``cancelled``, removed from the queue); empty when shedding
        cannot make room.
        """
        shed: List[Job] = []
        while self.backlog_cells() + job.request.cells > self.max_cells:
            live = self._live()
            if not live:
                break
            victim = max(live, key=self._service_key)
            if victim.request.priority >= job.request.priority:
                break
            victim.state = JOB_CANCELLED
            self._pending = [j for j in self._pending if j is not victim]
            shed.append(victim)
        return shed

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job in place; running/finished jobs are not ours."""
        for job in self._pending:
            if job.id == job_id and job.state == JOB_QUEUED:
                job.state = JOB_CANCELLED
                return True
        return False

    def __len__(self) -> int:
        return len(self._live())

    def __repr__(self) -> str:
        return (f"FairQueue({len(self)} jobs, {self.backlog_cells()}/"
                f"{self.max_cells} cells)")
