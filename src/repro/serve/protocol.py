"""The serve wire protocol: typed jobs, canonical-JSON line framing.

Every conversation with the daemon is a sequence of request/response
pairs over one stream socket, one canonical JSON object per line (the
same sorted-keys/no-whitespace form the run journals use, so a captured
protocol transcript is byte-stable for a given exchange). Requests name
an ``op`` — ``ping``, ``submit``, ``status``, ``results``, ``wait``,
``cancel``, ``stats``, ``drain``, ``shutdown`` — and responses always
carry ``ok``; failures add ``error`` (a stable code) and ``message``.

The submission payload is typed: :class:`JobRequest` validates systems,
workloads, datasets, and cluster sizes against the same registries the
CLI uses *before* the job touches the queue, so a typo is a protocol
error, not a crashed worker. Admission-control rejections are ordinary
responses (``error="queue-full"``) carrying a ``retry_after`` hint in
host seconds.

Result streams are resumable: ``results`` takes an ``after`` cursor and
returns cell payloads (the executor's wire format, journal text
included) from that index on, so a client that lost its connection
re-attaches to the same job id and continues where it stopped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_STATES",
    "OPS",
    "JobRequest",
    "dumps_message",
    "send_message",
    "recv_message",
    "ok_response",
    "error_response",
]

#: bump when the request/response layout changes incompatibly
PROTOCOL_VERSION = 1

#: one framed line may not exceed this (a tiny grid's payloads are ~100
#: KB; the bound exists so a garbage client cannot balloon the daemon)
MAX_LINE_BYTES = 64 * 1024 * 1024

#: every operation the daemon answers
OPS = (
    "ping", "submit", "status", "results", "wait", "cancel", "stats",
    "drain", "shutdown",
)

# -- job lifecycle ----------------------------------------------------------

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)

#: states a job can never leave
TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)


class ProtocolError(ValueError):
    """A malformed frame, an unknown op, or an invalid job payload."""


# -- the typed submission ---------------------------------------------------

@dataclass(frozen=True)
class JobRequest:
    """One client's experiment submission, validated before queueing.

    The coordinates mirror :class:`~repro.core.runner.ExperimentSpec`;
    ``priority`` picks the strict service class (higher first) and
    ``weight`` the client's share inside its class (see
    :mod:`repro.serve.queue`). ``deadline`` is a host-seconds budget
    counted from submission: an expired job is cancelled cooperatively
    — before it starts, or at its next cell boundary once running
    (0 means no deadline; the daemon may impose a default).
    """

    client: str
    systems: Tuple[str, ...]
    workloads: Tuple[str, ...]
    datasets: Tuple[str, ...]
    cluster_sizes: Tuple[int, ...]
    dataset_size: str = "small"
    priority: int = 0
    weight: float = 1.0
    deadline: float = 0.0

    @property
    def cells(self) -> int:
        """How many experiment cells this job expands into."""
        return (len(self.systems) * len(self.workloads) * len(self.datasets)
                * len(self.cluster_sizes))

    def validate(self) -> "JobRequest":
        """Raise :class:`ProtocolError` unless every field is servable."""
        from ..datasets.registry import DATASET_NAMES, SIZE_NAMES
        from ..engines import ENGINE_KEYS, EXTENSION_WORKLOADS, WORKLOAD_NAMES

        if not self.client or not isinstance(self.client, str):
            raise ProtocolError("job needs a non-empty client id")
        if not (self.systems and self.workloads and self.datasets
                and self.cluster_sizes):
            raise ProtocolError("job expands to zero cells")
        for system in self.systems:
            if system not in ENGINE_KEYS:
                raise ProtocolError(f"unknown system {system!r}")
        for workload in self.workloads:
            if workload not in WORKLOAD_NAMES + EXTENSION_WORKLOADS:
                raise ProtocolError(f"unknown workload {workload!r}")
        for dataset in self.datasets:
            # only built-in datasets are servable: the daemon regenerates
            # them deterministically in its own process
            if dataset not in DATASET_NAMES:
                raise ProtocolError(f"unknown dataset {dataset!r}")
        if self.dataset_size not in SIZE_NAMES:
            raise ProtocolError(f"unknown dataset size {self.dataset_size!r}")
        for size in self.cluster_sizes:
            # bool is an int subclass; reject it explicitly
            if (not isinstance(size, int) or isinstance(size, bool)
                    or not 0 < size <= 4096):
                raise ProtocolError(f"bad cluster size {size!r}")
        if not (isinstance(self.weight, (int, float)) and self.weight > 0):
            raise ProtocolError(f"weight must be positive, got {self.weight!r}")
        if not isinstance(self.priority, int):
            raise ProtocolError(f"priority must be an int, got {self.priority!r}")
        if (not isinstance(self.deadline, (int, float))
                or isinstance(self.deadline, bool) or self.deadline < 0):
            raise ProtocolError(
                f"deadline must be >= 0 host seconds, got {self.deadline!r}"
            )
        return self

    def to_dict(self) -> dict:
        """The wire form carried by a ``submit`` request."""
        return {
            "client": self.client,
            "systems": list(self.systems),
            "workloads": list(self.workloads),
            "datasets": list(self.datasets),
            "cluster_sizes": list(self.cluster_sizes),
            "dataset_size": self.dataset_size,
            "priority": self.priority,
            "weight": self.weight,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "JobRequest":
        """Parse and validate a ``submit`` request's ``job`` field."""
        if not isinstance(payload, dict):
            raise ProtocolError("submit needs a 'job' object")
        try:
            request = cls(
                client=payload["client"],
                systems=tuple(payload["systems"]),
                workloads=tuple(payload["workloads"]),
                datasets=tuple(payload["datasets"]),
                cluster_sizes=tuple(payload["cluster_sizes"]),
                dataset_size=payload.get("dataset_size", "small"),
                priority=payload.get("priority", 0),
                weight=payload.get("weight", 1.0),
                deadline=payload.get("deadline", 0.0),
            )
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"malformed job payload: {exc}") from exc
        return request.validate()

    def to_spec(self):
        """The executor-facing :class:`ExperimentSpec` for this job."""
        from ..core.runner import ExperimentSpec

        return ExperimentSpec(
            systems=self.systems,
            workloads=self.workloads,
            datasets=self.datasets,
            cluster_sizes=self.cluster_sizes,
            dataset_size=self.dataset_size,
        )


# -- framing ----------------------------------------------------------------

def dumps_message(message: dict) -> bytes:
    """One canonical-JSON frame, newline-terminated ASCII bytes."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":"))
            + "\n").encode("ascii")


def send_message(stream: IO[bytes], message: dict) -> None:
    """Write one frame and flush it."""
    stream.write(dumps_message(message))
    stream.flush()


def recv_message(stream: IO[bytes]) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF, errors on garbage."""
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not canonical JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frames are JSON objects")
    return message


def ok_response(**fields: object) -> dict:
    """A successful response frame."""
    response: Dict[str, object] = {"ok": True}
    response.update(fields)
    return response


def error_response(code: str, message: str, **fields: object) -> dict:
    """A failed response frame with a stable error code."""
    response: Dict[str, object] = {
        "ok": False, "error": code, "message": message,
    }
    response.update(fields)
    return response


# -- job records (shared by queue, daemon, and stats) -----------------------

@dataclass
class Job:
    """One submission's full lifecycle, as the daemon tracks it."""

    id: str
    request: JobRequest
    seq: int                      # global submission order (tie-breaker)
    state: str = JOB_QUEUED
    #: virtual finish tag assigned by the fair queue at admission
    vfinish: float = 0.0
    #: host-clock timestamps (profiling only, never simulated quantities)
    submitted_host: float = 0.0
    started_host: float = 0.0
    finished_host: float = 0.0
    #: absolute host time the job must finish by (0 = no deadline)
    deadline_host: float = 0.0
    #: cooperative-cancel flag: checked at every cell boundary while the
    #: job runs, so ``cancel`` works on running jobs too
    cancel_requested: bool = False
    #: completed cell payloads in plan order (the resumable stream)
    payloads: List[dict] = field(default_factory=list)
    cache_hits: int = 0
    executed: int = 0
    cost_dollars: float = 0.0
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        """True once the job can never change again."""
        return self.state in TERMINAL_STATES

    def expired(self, now: float) -> bool:
        """True when the job's deadline has passed at host time ``now``."""
        return self.deadline_host > 0.0 and now >= self.deadline_host

    @property
    def queue_wait(self) -> float:
        """Host seconds spent queued before service began."""
        if self.started_host <= 0.0:
            return 0.0
        return max(0.0, self.started_host - self.submitted_host)

    @property
    def service_seconds(self) -> float:
        """Host seconds spent executing."""
        if self.started_host <= 0.0 or self.finished_host <= 0.0:
            return 0.0
        return max(0.0, self.finished_host - self.started_host)

    @property
    def latency(self) -> float:
        """Submit-to-finish host seconds (queue wait + service)."""
        if self.finished_host <= 0.0:
            return 0.0
        return max(0.0, self.finished_host - self.submitted_host)

    def status_dict(self, position: Optional[int] = None) -> dict:
        """The ``status`` response body."""
        status: Dict[str, object] = {
            "job": self.id,
            "state": self.state,
            "client": self.request.client,
            "cells": self.request.cells,
            "completed": len(self.payloads),
            "cache_hits": self.cache_hits,
            "executed": self.executed,
        }
        if position is not None:
            status["position"] = position
        if self.error is not None:
            status["message"] = self.error
        return status
