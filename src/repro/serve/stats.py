"""Server-side aggregation: latency percentiles, hit-rate, per-client bills.

Every job the daemon finishes feeds one :class:`ServerStats` instance:
queue-wait / service-time / end-to-end latency samples (host seconds —
serving performance is a property of the simulator, not the simulation),
cache-hit and execution counters, admission rejections, and each
client's simulated bill (the sum of its jobs' ``cost.dollars``, which
*is* deterministic).

The stats render two ways:

* ``snapshot()`` — the ``stats`` protocol response and the loadgen's
  record body;
* ``observation()`` — the daemon's own journal, written to
  ``_server.jsonl`` at shutdown: meta ``kind="server"`` with the
  headline aggregates, one ``job`` span per served job, and
  queue-wait/service-time histograms — the serving counterpart of the
  executor's ``_scheduler.jsonl``, consumed by ``repro report`` and
  ``repro trace --summary``.

Percentiles use the deterministic nearest-rank definition (no
interpolation), so p50/p99 of the same sample set is always the same
member of it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..obs import RunObservation, Tracer
from .protocol import JOB_DONE, JOB_FAILED, Job

__all__ = ["percentile", "ServerStats", "server_observation"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the smallest value covering ``q`` percent.

    Deterministic and member-of-sample by construction; 0 on an empty
    sample. ``q`` is in percent (50 → median, 99 → p99).
    """
    if not values:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


class ServerStats:
    """Everything the daemon aggregates across its lifetime."""

    def __init__(self, start_host: float = 0.0) -> None:
        self.start_host = start_host
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.rejected = 0
        #: queued jobs displaced by higher-priority submissions
        self.shed = 0
        #: jobs cancelled because their deadline passed (queued or running)
        self.deadline_expired = 0
        #: shared-cache evictions under a cache budget (mirrored from
        #: the runner's :class:`~repro.exec.cache.ResultCache`)
        self.evictions = 0
        self.cells = 0
        self.cache_hits = 0
        self.executed = 0
        self.dollars = 0.0
        self.queue_waits: List[float] = []
        self.services: List[float] = []
        self.latencies: List[float] = []
        #: client → {"jobs", "cells", "dollars"}
        self.per_client: Dict[str, Dict[str, float]] = {}

    # -- recording ---------------------------------------------------------

    def _client(self, client: str) -> Dict[str, float]:
        return self.per_client.setdefault(
            client, {"jobs": 0.0, "cells": 0.0, "dollars": 0.0}
        )

    def record_job(self, job: Job) -> None:
        """Fold one finished (done/failed/cancelled-after-start) job in."""
        if job.state == JOB_DONE:
            self.jobs_done += 1
        elif job.state == JOB_FAILED:
            self.jobs_failed += 1
        else:
            self.jobs_cancelled += 1
            return  # cancelled before service: no samples, no bill
        self.cells += job.request.cells
        self.cache_hits += job.cache_hits
        self.executed += job.executed
        self.dollars += job.cost_dollars
        self.queue_waits.append(job.queue_wait)
        self.services.append(job.service_seconds)
        self.latencies.append(job.latency)
        account = self._client(job.request.client)
        account["jobs"] += 1
        account["cells"] += job.request.cells
        account["dollars"] += job.cost_dollars

    def record_rejection(self, client: str) -> None:
        """Count one admission-control rejection."""
        self.rejected += 1
        self._client(client)  # a rejected client still appears in the bill

    # -- views -------------------------------------------------------------

    @property
    def jobs(self) -> int:
        """Jobs that reached a terminal state (any of the three)."""
        return self.jobs_done + self.jobs_failed + self.jobs_cancelled

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served cells replayed from the shared cache."""
        return self.cache_hits / self.cells if self.cells else 0.0

    def snapshot(self) -> dict:
        """The aggregate view: the ``stats`` response / bench record body."""
        return {
            "jobs": self.jobs,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "rejected": self.rejected,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "evictions": self.evictions,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "cache_hit_rate": self.cache_hit_rate,
            "dollars": self.dollars,
            "clients": len(self.per_client),
            "p50_latency": percentile(self.latencies, 50),
            "p99_latency": percentile(self.latencies, 99),
            "p50_queue_wait": percentile(self.queue_waits, 50),
            "p99_queue_wait": percentile(self.queue_waits, 99),
            "p50_service": percentile(self.services, 50),
            "p99_service": percentile(self.services, 99),
            "per_client": {
                client: dict(account)
                for client, account in sorted(self.per_client.items())
            },
        }


def server_observation(
    stats: ServerStats,
    address: str,
    tracer: Optional[Tracer] = None,
) -> RunObservation:
    """Assemble the daemon's journalable observation (``_server.jsonl``).

    ``tracer`` is the daemon's live host-clock tracer (spans already
    recorded per job); tests may pass a fresh one.
    """
    obs = RunObservation(tracer=tracer if tracer is not None else Tracer())
    metrics = obs.metrics
    metrics.counter("serve.jobs").inc(stats.jobs)
    metrics.counter("serve.jobs_failed").inc(stats.jobs_failed)
    metrics.counter("serve.jobs_cancelled").inc(stats.jobs_cancelled)
    metrics.counter("serve.rejected").inc(stats.rejected)
    metrics.counter("serve.shed").inc(stats.shed)
    metrics.counter("serve.deadline_expired").inc(stats.deadline_expired)
    metrics.counter("serve.cache_evictions").inc(stats.evictions)
    metrics.counter("serve.cells").inc(stats.cells)
    metrics.counter("serve.cache_hits").inc(stats.cache_hits)
    metrics.counter("serve.cells_executed").inc(stats.executed)
    metrics.counter("cost.dollars").inc(stats.dollars)
    for sample in stats.queue_waits:
        metrics.histogram("serve.queue_wait_seconds").observe(sample)
    for sample in stats.services:
        metrics.histogram("serve.service_seconds").observe(sample)
    for sample in stats.latencies:
        metrics.histogram("serve.latency_seconds").observe(sample)
    snapshot = stats.snapshot()
    obs.meta = {
        "kind": "server",
        "address": address,
        "jobs": snapshot["jobs"],
        "rejected": snapshot["rejected"],
        "shed": snapshot["shed"],
        "deadline_expired": snapshot["deadline_expired"],
        "evictions": snapshot["evictions"],
        "cells": snapshot["cells"],
        "cache_hits": snapshot["cache_hits"],
        "executed": snapshot["executed"],
        "cache_hit_rate": snapshot["cache_hit_rate"],
        "dollars": snapshot["dollars"],
        "clients": snapshot["clients"],
        "p50_latency": snapshot["p50_latency"],
        "p99_latency": snapshot["p99_latency"],
        "per_client": snapshot["per_client"],
    }
    return obs
