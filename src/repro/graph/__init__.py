"""Graph substrate: structures, text formats, and dataset statistics."""

from .structures import EdgeListError, Graph, GraphBuilder, from_edges
from .formats import (
    FORMATS,
    FormatError,
    chunk_lines,
    format_size_bytes,
    read_adj,
    read_adj_long,
    read_edge_list,
    read_graph,
    write_adj,
    write_adj_long,
    write_edge_list,
    write_graph,
)
from .stats import (
    DatasetStats,
    bfs_levels,
    compute_stats,
    degree_histogram,
    effective_diameter,
    estimate_diameter,
    largest_wcc_fraction,
    powerlaw_exponent_estimate,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "from_edges",
    "EdgeListError",
    "FORMATS",
    "FormatError",
    "read_graph",
    "write_graph",
    "read_adj",
    "read_adj_long",
    "read_edge_list",
    "write_adj",
    "write_adj_long",
    "write_edge_list",
    "chunk_lines",
    "format_size_bytes",
    "DatasetStats",
    "compute_stats",
    "bfs_levels",
    "effective_diameter",
    "estimate_diameter",
    "degree_histogram",
    "powerlaw_exponent_estimate",
    "largest_wcc_fraction",
]
