"""Text formats for graph datasets.

The paper prepares each dataset in the format each system expects
(section 4.3):

* ``adj`` — adjacency list: ``<v> <n1> <n2> ...``; vertices without
  out-edges may be omitted. Used by Hadoop, HaLoop, Giraph, GraphLab.
* ``adj-long`` — every vertex has a line, and the first value after the
  vertex id is its out-degree: ``<v> <deg> <n1> ...``. Required by
  Blogel so it can create vertices that only have in-edges.
* ``edge`` — one ``<src> <dst>`` pair per line. Used by GraphX and
  Flink Gelly.

Datasets are also split into same-sized chunks before loading to HDFS,
because the C++ HDFS client used by Blogel/GraphLab spawns one reader
thread per chunk (section 4.3). :func:`chunk_lines` models that split.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from .structures import Graph, GraphBuilder

__all__ = [
    "FORMATS",
    "write_adj",
    "write_adj_long",
    "write_edge_list",
    "read_adj",
    "read_adj_long",
    "read_edge_list",
    "write_graph",
    "read_graph",
    "chunk_lines",
    "format_size_bytes",
    "FormatError",
]

FORMATS = ("adj", "adj-long", "edge")


class FormatError(ValueError):
    """Raised on malformed dataset text."""


def _open_for_write(target: Union[str, Path, TextIO]):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="ascii"), True
    return target, False


def _lines(source: Union[str, Path, TextIO, Iterable[str]]) -> Iterator[str]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as fh:
            yield from fh
    elif isinstance(source, io.TextIOBase):
        yield from source
    else:
        yield from source


# -- writers -----------------------------------------------------------


def write_adj(graph: Graph, target: Union[str, Path, TextIO]) -> int:
    """Write the ``adj`` format. Returns the number of lines written.

    Vertices with no out-edges are omitted, exactly as the paper's adj
    datasets do — which is why Blogel cannot use this format.
    """
    fh, should_close = _open_for_write(target)
    try:
        lines = 0
        for v in range(graph.num_vertices):
            nbrs = graph.out_neighbors(v)
            if nbrs.size == 0:
                continue
            fh.write(f"{v} " + " ".join(map(str, nbrs.tolist())) + "\n")
            lines += 1
        return lines
    finally:
        if should_close:
            fh.close()


def write_adj_long(graph: Graph, target: Union[str, Path, TextIO]) -> int:
    """Write the ``adj-long`` format: every vertex, with explicit degree."""
    fh, should_close = _open_for_write(target)
    try:
        for v in range(graph.num_vertices):
            nbrs = graph.out_neighbors(v).tolist()
            parts = [str(v), str(len(nbrs))] + [str(x) for x in nbrs]
            fh.write(" ".join(parts) + "\n")
        return graph.num_vertices
    finally:
        if should_close:
            fh.close()


def write_edge_list(graph: Graph, target: Union[str, Path, TextIO]) -> int:
    """Write the ``edge`` format: one ``src dst`` pair per line."""
    fh, should_close = _open_for_write(target)
    try:
        count = 0
        for s, d in graph.edges():
            fh.write(f"{s} {d}\n")
            count += 1
        return count
    finally:
        if should_close:
            fh.close()


# -- readers -----------------------------------------------------------


def read_adj(source, name: str = "graph") -> Graph:
    """Parse the ``adj`` format into a Graph."""
    builder = GraphBuilder(name=name)
    for lineno, line in enumerate(_lines(source), 1):
        fields = line.split()
        if not fields:
            continue
        try:
            vertex = int(fields[0])
            neighbors = [int(x) for x in fields[1:]]
        except ValueError as exc:
            raise FormatError(f"line {lineno}: non-integer field") from exc
        builder.add_vertex(vertex)
        for nbr in neighbors:
            builder.add_edge(vertex, nbr)
    return builder.build()


def read_adj_long(source, name: str = "graph") -> Graph:
    """Parse the ``adj-long`` format, validating the degree field.

    Every vertex has its own line in this format, so vertex ids are
    interned in *line order* before any neighbor is seen — a
    write/read round-trip preserves vertex ids exactly (unlike ``adj``,
    where a sink vertex's id can first appear as someone's neighbor).
    """
    builder = GraphBuilder(name=name)
    parsed = []
    for lineno, line in enumerate(_lines(source), 1):
        fields = line.split()
        if not fields:
            continue
        if len(fields) < 2:
            raise FormatError(f"line {lineno}: adj-long needs at least vertex and degree")
        try:
            vertex, degree = int(fields[0]), int(fields[1])
            neighbors = [int(x) for x in fields[2:]]
        except ValueError as exc:
            raise FormatError(f"line {lineno}: non-integer field") from exc
        if degree != len(neighbors):
            raise FormatError(
                f"line {lineno}: declared degree {degree} but "
                f"{len(neighbors)} neighbors listed"
            )
        builder.add_vertex(vertex)
        parsed.append((vertex, neighbors))
    for vertex, neighbors in parsed:
        for nbr in neighbors:
            builder.add_edge(vertex, nbr)
    return builder.build()


def read_edge_list(source, name: str = "graph") -> Graph:
    """Parse the ``edge`` format into a Graph."""
    builder = GraphBuilder(name=name)
    for lineno, line in enumerate(_lines(source), 1):
        fields = line.split()
        if not fields:
            continue
        if len(fields) != 2:
            raise FormatError(f"line {lineno}: edge format needs exactly 2 fields")
        try:
            builder.add_edge(int(fields[0]), int(fields[1]))
        except ValueError as exc:
            raise FormatError(f"line {lineno}: non-integer field") from exc
    return builder.build()


_WRITERS = {"adj": write_adj, "adj-long": write_adj_long, "edge": write_edge_list}
_READERS = {"adj": read_adj, "adj-long": read_adj_long, "edge": read_edge_list}


def write_graph(graph: Graph, target, fmt: str) -> int:
    """Write ``graph`` in any named format. Returns lines written."""
    if fmt not in _WRITERS:
        raise FormatError(f"unknown format {fmt!r}; expected one of {FORMATS}")
    return _WRITERS[fmt](graph, target)


def read_graph(source, fmt: str, name: str = "graph") -> Graph:
    """Read a graph in any named format."""
    if fmt not in _READERS:
        raise FormatError(f"unknown format {fmt!r}; expected one of {FORMATS}")
    return _READERS[fmt](source, name=name)


def chunk_lines(lines: List[str], num_chunks: int) -> List[List[str]]:
    """Split dataset lines into ``num_chunks`` near-equal chunks.

    Models the paper's pre-split of each input file so the HDFS C++
    client can read with one thread per chunk.
    """
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    size, extra = divmod(len(lines), num_chunks)
    chunks: List[List[str]] = []
    start = 0
    for i in range(num_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(lines[start:end])
        start = end
    return chunks


def format_size_bytes(graph: Graph, fmt: str) -> int:
    """Size in bytes of the graph serialized in ``fmt``.

    Used by the HDFS model to derive block counts (and hence GraphX's
    default partition count, section 4.4.3) without materializing huge
    strings for large graphs: the size is computed from digit counts.
    """
    if fmt not in FORMATS:
        raise FormatError(f"unknown format {fmt!r}; expected one of {FORMATS}")
    digits = _digit_lengths(graph)
    if fmt == "edge":
        src = graph.edge_sources()
        # per line: len(src) + 1 space + len(dst) + 1 newline
        return int(digits[src].sum() + digits[graph.edge_targets()].sum()) + 2 * graph.num_edges
    out_deg = graph.out_degrees()
    total = int(digits[graph.edge_targets()].sum())  # neighbor ids
    if fmt == "adj":
        present = out_deg > 0
        total += int(digits[present.nonzero()[0]].sum())  # vertex ids
        total += int(out_deg.sum())                        # separators
        total += int(present.sum())                        # newlines
        return total
    # adj-long: every vertex has a line with id, degree, then neighbors
    import numpy as np

    deg_digits = np.char.str_len(out_deg.astype(str)).astype(int)
    total += int(digits.sum()) + int(deg_digits.sum())
    total += int(out_deg.sum()) + graph.num_vertices  # spaces after degree+nbrs
    total += graph.num_vertices                        # newlines
    return total


def _digit_lengths(graph: Graph):
    import numpy as np

    ids = np.arange(graph.num_vertices, dtype=np.int64)
    if ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.char.str_len(ids.astype(str)).astype(np.int64)
