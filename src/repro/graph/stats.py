"""Graph statistics: the characteristics reported in the paper's Table 3.

Table 3 describes each dataset by |E|, average and maximum degree, and
(effective) diameter. Those characteristics are what make the datasets
behave differently under each system — the road network's huge diameter
drives iteration counts, the social graph's power-law max degree drives
vertex-cut replication.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .structures import Graph

__all__ = [
    "DatasetStats",
    "compute_stats",
    "bfs_levels",
    "effective_diameter",
    "estimate_diameter",
    "degree_histogram",
    "powerlaw_exponent_estimate",
    "largest_wcc_fraction",
]


@dataclass(frozen=True)
class DatasetStats:
    """The Table-3 row for one dataset."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    diameter: float

    def as_row(self) -> Dict[str, object]:
        """Render as a table row (used by the bench harness)."""
        return {
            "Dataset": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "Avg Degree": round(self.avg_degree, 2),
            "Max Degree": self.max_degree,
            "Diameter": round(self.diameter, 2),
        }


def bfs_levels(graph: Graph, source: int, undirected: bool = True) -> np.ndarray:
    """BFS level (hop distance) of every vertex from ``source``.

    Unreachable vertices get -1. ``undirected=True`` traverses edges in
    both directions, which is what diameter estimation wants.
    """
    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[source] = 0
    frontier = deque([source])
    use_in = undirected
    while frontier:
        v = frontier.popleft()
        next_level = levels[v] + 1
        for u in graph.out_neighbors(v):
            if levels[u] < 0:
                levels[u] = next_level
                frontier.append(int(u))
        if use_in:
            for u in graph.in_neighbors(v):
                if levels[u] < 0:
                    levels[u] = next_level
                    frontier.append(int(u))
    return levels


def effective_diameter(
    graph: Graph,
    quantile: float = 0.9,
    num_sources: int = 16,
    seed: int = 7,
) -> float:
    """Approximate effective diameter (the ``quantile`` hop distance).

    Web-graph papers report the 90th-percentile pairwise distance;
    Table 3's fractional diameters (e.g. Twitter 5.29) are of this kind.
    Sampled-source BFS is the standard estimator.
    """
    if not 0 < quantile <= 1:
        raise ValueError("quantile must be in (0, 1]")
    if graph.num_vertices == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.choice(
        graph.num_vertices, size=min(num_sources, graph.num_vertices), replace=False
    )
    distances: List[int] = []
    for s in sources:
        levels = bfs_levels(graph, int(s))
        distances.extend(levels[levels >= 0].tolist())
    if not distances:
        return 0.0
    arr = np.sort(np.asarray(distances))
    # Interpolate between integer hop counts for a fractional estimate.
    idx = quantile * (len(arr) - 1)
    lo, hi = int(math.floor(idx)), int(math.ceil(idx))
    frac = idx - lo
    return float(arr[lo] * (1 - frac) + arr[hi] * frac)


def estimate_diameter(graph: Graph, num_sources: int = 8, seed: int = 7) -> int:
    """Lower bound on the (hop) diameter via repeated farthest-point BFS."""
    if graph.num_vertices == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    v = int(rng.integers(graph.num_vertices))
    for _ in range(num_sources):
        levels = bfs_levels(graph, v)
        reachable = levels >= 0
        if not reachable.any():
            break
        far = int(levels[reachable].max())
        best = max(best, far)
        v = int(np.flatnonzero(levels == far)[0])  # double-sweep heuristic
    return best


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map out-degree -> number of vertices with that degree."""
    degrees = graph.out_degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def powerlaw_exponent_estimate(graph: Graph, d_min: int = 1) -> Optional[float]:
    """MLE estimate of the power-law exponent of the out-degree tail.

    Returns None when there are no vertices with degree >= d_min. Social
    and web graphs in the paper follow a power law; the road network
    does not (its degrees are bounded by 9).
    """
    degrees = graph.out_degrees()
    tail = degrees[degrees >= d_min].astype(float)
    if tail.size == 0:
        return None
    return float(1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum())


def largest_wcc_fraction(graph: Graph) -> float:
    """Fraction of vertices in the largest weakly connected component."""
    if graph.num_vertices == 0:
        return 0.0
    seen = np.zeros(graph.num_vertices, dtype=bool)
    best = 0
    for start in range(graph.num_vertices):
        if seen[start]:
            continue
        size = 0
        stack = [start]
        seen[start] = True
        while stack:
            v = stack.pop()
            size += 1
            for u in graph.out_neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    stack.append(int(u))
            for u in graph.in_neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    stack.append(int(u))
        best = max(best, size)
    return best / graph.num_vertices


def compute_stats(graph: Graph, effective: bool = True) -> DatasetStats:
    """Compute the Table-3 characteristics for ``graph``."""
    degrees = graph.out_degrees()
    avg = float(degrees.mean()) if graph.num_vertices else 0.0
    max_deg = int(degrees.max()) if graph.num_vertices else 0
    diameter = (
        effective_diameter(graph) if effective else float(estimate_diameter(graph))
    )
    return DatasetStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=avg,
        max_degree=max_deg,
        diameter=diameter,
    )
