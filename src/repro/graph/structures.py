"""Core graph data structures.

The whole library works on a single immutable directed-graph
representation: :class:`Graph`, a CSR (compressed sparse row) adjacency
built over numpy arrays. Every engine partitions or replicates views of
this structure; the workloads run real algorithms over it.

Vertices are dense integer ids ``0 .. num_vertices - 1``. Datasets whose
natural ids are sparse are remapped at build time (see
:class:`GraphBuilder`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "GraphBuilder", "EdgeListError"]


class EdgeListError(ValueError):
    """Raised when an edge list is malformed (negative ids, bad shape)."""


def _as_edge_array(edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Normalize any iterable of (src, dst) pairs to an (m, 2) int64 array."""
    if isinstance(edges, np.ndarray):
        arr = np.asarray(edges, dtype=np.int64)
        if arr.ndim != 2 or (arr.size and arr.shape[1] != 2):
            raise EdgeListError(f"edge array must have shape (m, 2), got {arr.shape}")
        return arr.reshape(-1, 2)
    pairs = list(edges)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise EdgeListError("edges must be (src, dst) pairs")
    return arr


class Graph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are ``0 .. num_vertices - 1``.
    edges:
        Iterable of ``(src, dst)`` pairs or an ``(m, 2)`` integer array.
        Duplicate edges are kept (multigraphs are allowed); self-edges are
        kept and can be inspected or stripped (GraphLab's quirk from the
        paper, section 3.1.1).
    name:
        Optional human-readable dataset name.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "graph",
    ) -> None:
        if num_vertices < 0:
            raise EdgeListError("num_vertices must be non-negative")
        arr = _as_edge_array(edges)
        if arr.size:
            if arr.min() < 0:
                raise EdgeListError("vertex ids must be non-negative")
            if arr.max() >= num_vertices:
                raise EdgeListError(
                    f"edge endpoint {int(arr.max())} out of range for "
                    f"{num_vertices} vertices"
                )
        self._n = int(num_vertices)
        self.name = name
        order = np.lexsort((arr[:, 1], arr[:, 0])) if arr.size else np.empty(0, int)
        sorted_edges = arr[order]
        self._dst = np.ascontiguousarray(sorted_edges[:, 1])
        self._offsets = np.zeros(self._n + 1, dtype=np.int64)
        if arr.size:
            counts = np.bincount(sorted_edges[:, 0], minlength=self._n)
            np.cumsum(counts, out=self._offsets[1:])
        self._in_offsets: Optional[np.ndarray] = None
        self._in_src: Optional[np.ndarray] = None

    # -- basic shape ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices (dense ids)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges, counting duplicates."""
        return int(self._dst.shape[0])

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )

    # -- adjacency ------------------------------------------------------

    def out_neighbors(self, v: int) -> np.ndarray:
        """Destinations of all out-edges of ``v`` (read-only view)."""
        return self._dst[self._offsets[v]:self._offsets[v + 1]]

    def out_degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return int(self._offsets[v + 1] - self._offsets[v])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an int64 array."""
        return np.diff(self._offsets)

    def _ensure_in_csr(self) -> None:
        if self._in_offsets is not None:
            return
        src = self.edge_sources()
        order = np.argsort(self._dst, kind="stable")
        self._in_src = np.ascontiguousarray(src[order])
        self._in_offsets = np.zeros(self._n + 1, dtype=np.int64)
        if self._dst.size:
            counts = np.bincount(self._dst, minlength=self._n)
            np.cumsum(counts, out=self._in_offsets[1:])

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of all in-edges of ``v`` (builds the in-CSR lazily)."""
        self._ensure_in_csr()
        assert self._in_offsets is not None and self._in_src is not None
        return self._in_src[self._in_offsets[v]:self._in_offsets[v + 1]]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as an int64 array."""
        if self._dst.size:
            return np.bincount(self._dst, minlength=self._n).astype(np.int64)
        return np.zeros(self._n, dtype=np.int64)

    def in_degree(self, v: int) -> int:
        """In-degree of vertex ``v``."""
        return int(self.in_degrees()[v]) if self._in_offsets is None else int(
            self._in_offsets[v + 1] - self._in_offsets[v]
        )

    # -- edge views -----------------------------------------------------

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge, aligned with :meth:`edge_targets`."""
        return np.repeat(np.arange(self._n, dtype=np.int64), self.out_degrees())

    def edge_targets(self) -> np.ndarray:
        """Target vertex of every edge (CSR order)."""
        return self._dst

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(src, dst)`` pairs in CSR order."""
        src = self.edge_sources()
        for s, d in zip(src.tolist(), self._dst.tolist()):
            yield s, d

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array (a fresh copy)."""
        return np.column_stack([self.edge_sources(), self._dst])

    # -- transformations ------------------------------------------------

    def reversed(self) -> "Graph":
        """The graph with every edge direction flipped."""
        rev = np.column_stack([self._dst, self.edge_sources()])
        return Graph(self._n, rev, name=f"{self.name}-reversed")

    def undirected(self) -> "Graph":
        """Symmetric closure: both directions for every edge, deduplicated."""
        src = self.edge_sources()
        both = np.concatenate(
            [
                np.column_stack([src, self._dst]),
                np.column_stack([self._dst, src]),
            ]
        )
        both = np.unique(both, axis=0) if both.size else both
        return Graph(self._n, both, name=f"{self.name}-undirected")

    def count_self_edges(self) -> int:
        """Number of edges ``(v, v)`` — GraphLab cannot represent these."""
        src = self.edge_sources()
        return int(np.count_nonzero(src == self._dst))

    def without_self_edges(self) -> "Graph":
        """Copy with self-edges removed (what GraphLab effectively loads)."""
        src = self.edge_sources()
        keep = src != self._dst
        return Graph(
            self._n,
            np.column_stack([src[keep], self._dst[keep]]),
            name=f"{self.name}-noself",
        )

    def subgraph_edges(self, edge_mask: np.ndarray) -> "Graph":
        """Copy keeping only edges selected by a boolean mask (CSR order)."""
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.num_edges,):
            raise EdgeListError(
                f"edge mask must have shape ({self.num_edges},), got {mask.shape}"
            )
        src = self.edge_sources()
        return Graph(
            self._n,
            np.column_stack([src[mask], self._dst[mask]]),
            name=f"{self.name}-sub",
        )

    # -- size accounting (used by the cluster memory model) --------------

    def edge_bytes(self, bytes_per_edge: int = 8) -> int:
        """Raw size of the edge set under a given per-edge encoding."""
        return self.num_edges * bytes_per_edge

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._dst, other._dst)
        )

    def __hash__(self) -> int:  # Graphs are used as dict keys in caches.
        return hash((self._n, self.num_edges, self._dst[:16].tobytes()))


@dataclass
class GraphBuilder:
    """Incremental builder that remaps sparse vertex ids to dense ids.

    Real datasets (and the paper's text formats) use arbitrary integer
    ids. The builder assigns dense ids in first-seen order and remembers
    the mapping, so results can be reported in original ids.
    """

    name: str = "graph"

    def __post_init__(self) -> None:
        self._id_map: dict[int, int] = {}
        self._src: list[int] = []
        self._dst: list[int] = []

    def _intern(self, raw: int) -> int:
        dense = self._id_map.get(raw)
        if dense is None:
            dense = len(self._id_map)
            self._id_map[raw] = dense
        return dense

    def add_vertex(self, raw_id: int) -> int:
        """Ensure a vertex exists (it may have no edges); return dense id."""
        return self._intern(raw_id)

    def add_edge(self, src: int, dst: int) -> None:
        """Add one directed edge given raw (possibly sparse) ids."""
        self._src.append(self._intern(src))
        self._dst.append(self._intern(dst))

    def add_edges(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Add many directed edges."""
        for s, d in pairs:
            self.add_edge(s, d)

    @property
    def num_vertices(self) -> int:
        """Vertices interned so far."""
        return len(self._id_map)

    def id_map(self) -> dict:
        """Mapping raw id -> dense id (a copy)."""
        return dict(self._id_map)

    def build(self) -> Graph:
        """Freeze into an immutable :class:`Graph`."""
        edges = np.column_stack(
            [
                np.asarray(self._src, dtype=np.int64),
                np.asarray(self._dst, dtype=np.int64),
            ]
        ) if self._src else np.empty((0, 2), dtype=np.int64)
        return Graph(len(self._id_map), edges, name=self.name)


def from_edges(
    edges: Sequence[Tuple[int, int]], num_vertices: Optional[int] = None, name: str = "graph"
) -> Graph:
    """Convenience constructor: build a Graph straight from dense pairs."""
    arr = _as_edge_array(edges)
    if num_vertices is None:
        num_vertices = int(arr.max()) + 1 if arr.size else 0
    return Graph(num_vertices, arr, name=name)
