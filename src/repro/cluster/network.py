"""Network fabric model.

Machines are connected through a non-blocking switch; each machine is
limited by its own NIC bandwidth. The dominant pattern in every system
under study is the all-to-all shuffle (BSP message exchange, MapReduce
shuffle, Vertica's distributed self-join), whose duration is set by the
most-loaded NIC.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .specs import MachineSpec

__all__ = ["NetworkModel"]


class NetworkModel:
    """Time and byte accounting for cluster communication."""

    #: fixed per-message-exchange latency (switch + protocol), seconds
    base_latency: float = 0.002

    def __init__(self, num_machines: int, machine: MachineSpec) -> None:
        self.num_machines = num_machines
        self.machine = machine
        self.total_bytes: float = 0.0
        #: chaos NIC-bandwidth divisor (1.0 = healthy; set each superstep
        #: from the run's active NetworkDegradation events)
        self.degradation: float = 1.0

    def _record(self, nbytes: float) -> None:
        self.total_bytes += nbytes

    def _bps(self) -> float:
        """Effective per-NIC bandwidth under the current degradation."""
        return self.machine.network_bps / self.degradation

    def point_to_point_time(self, nbytes: float) -> float:
        """One machine streaming ``nbytes`` to another."""
        self._record(nbytes)
        return self.base_latency + nbytes / self._bps()

    def broadcast_time(self, nbytes: float) -> float:
        """Master sends ``nbytes`` to every worker (tree-structured)."""
        import math

        self._record(nbytes * (self.num_machines - 1))
        rounds = max(1, math.ceil(math.log2(max(2, self.num_machines))))
        return rounds * (self.base_latency + nbytes / self._bps())

    def gather_time(self, nbytes_per_machine: float) -> float:
        """Every worker sends ``nbytes_per_machine`` to the master.

        The master NIC is the bottleneck — this is exactly the hot spot
        in Blogel-B's Voronoi aggregation (§5.1).
        """
        total = nbytes_per_machine * (self.num_machines - 1)
        self._record(total)
        return self.base_latency + total / self._bps()

    def shuffle_time(
        self,
        total_bytes: float,
        skew: float = 0.0,
        local_fraction: Optional[float] = None,
    ) -> float:
        """All-to-all exchange of ``total_bytes`` across the cluster.

        ``local_fraction`` is the share of bytes that stay on-machine
        (hash partitioning keeps 1/M locally by default). ``skew`` adds
        the imbalance of the most-loaded machine over an even split —
        stragglers stretch shuffles (Figure 11's GraphX behaviour).
        """
        if self.num_machines <= 1:
            return 0.0
        if local_fraction is None:
            local_fraction = 1.0 / self.num_machines
        wire_bytes = total_bytes * (1.0 - local_fraction)
        self._record(wire_bytes)
        per_machine = wire_bytes / self.num_machines
        bottleneck = per_machine * (1.0 + skew)
        return self.base_latency + bottleneck / self._bps()

    def barrier_time(self) -> float:
        """A BSP synchronization barrier (small all-to-master-to-all)."""
        import math

        rounds = max(1, math.ceil(math.log2(max(2, self.num_machines))))
        return rounds * self.base_latency
