"""Hardware specifications of the simulated cluster.

The paper runs everything on Amazon EC2 r3.xlarge instances: 4 cores,
30.5 GB memory, SSD storage, "moderate" network — and clusters of 16,
32, 64, and 128 machines (one of which is the master). A separate
512 GB machine hosts the single-thread COST runs (§5.13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from ..chaos.plan import ChaosPlan

__all__ = [
    "MachineSpec",
    "ClusterSpec",
    "R3_XLARGE",
    "COST_MACHINE",
    "CLUSTER_SIZES",
    "GB",
    "MB",
]

GB = 1024 ** 3
MB = 1024 ** 2

CLUSTER_SIZES = (16, 32, 64, 128)


@dataclass(frozen=True)
class MachineSpec:
    """One machine: cores, memory, and I/O throughput."""

    name: str
    cores: int
    memory_bytes: int
    disk_read_bps: float      # sequential SSD read bandwidth
    disk_write_bps: float     # sequential SSD write bandwidth
    network_bps: float        # per-machine NIC bandwidth (full duplex)

    @property
    def memory_gb(self) -> float:
        """Memory capacity in GB."""
        return self.memory_bytes / GB


# r3.xlarge: 4 vCPU, 30.5 GB, 1x80 GB SSD, "moderate" network; placement
# groups sustain ~2.4 Gbps effective.
R3_XLARGE = MachineSpec(
    name="r3.xlarge",
    cores=4,
    memory_bytes=int(30.5 * GB),
    disk_read_bps=250.0 * MB,
    disk_write_bps=200.0 * MB,
    network_bps=300.0 * MB,
)

# The 512 GB single-thread machine used in the COST experiment (§5.13).
COST_MACHINE = MachineSpec(
    name="cost-512gb",
    cores=1,
    memory_bytes=512 * GB,
    disk_read_bps=500.0 * MB,
    disk_write_bps=400.0 * MB,
    network_bps=1000.0 * MB,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A shared-nothing cluster of identical machines.

    ``num_machines`` counts workers plus the master, matching the
    paper's "128 machines (one master)".
    """

    num_machines: int
    machine: MachineSpec = R3_XLARGE
    timeout_seconds: float = 24 * 3600.0   # the paper's TO budget
    #: scheduled fault events — a :class:`~repro.chaos.ChaosPlan` or its
    #: legacy ``FaultPlan`` subclass (None = the paper's failure-free runs)
    fault_plan: Optional["ChaosPlan"] = None

    def __post_init__(self) -> None:
        if self.num_machines < 2:
            raise ValueError("a cluster needs a master and at least one worker")

    @property
    def num_workers(self) -> int:
        """Machines that run computation (all but the master)."""
        return self.num_machines - 1

    @property
    def total_cores(self) -> int:
        """Worker cores available for computation."""
        return self.num_workers * self.machine.cores

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate worker memory."""
        return self.num_workers * self.machine.memory_bytes

    def __repr__(self) -> str:
        return (
            f"ClusterSpec({self.num_machines}x{self.machine.name}, "
            f"{self.total_cores} worker cores, "
            f"{self.total_memory_bytes / GB:.0f} GB)"
        )
