"""HDFS model: blocks, replicated storage, and chunked parallel reads.

All systems except Vertica read datasets from and write results to HDFS
(§2). Two details from the paper matter for performance and are
modelled explicitly:

* Datasets are stored in 64 MB blocks; GraphX's default partition count
  equals the number of blocks (§4.4.3).
* The C++ HDFS client used by Blogel and GraphLab spawns one reader
  thread per input chunk, so the datasets are pre-split into chunks
  (§4.3); reading parallelism is bounded by the chunk count.
"""

from __future__ import annotations

import math

from .specs import MB, MachineSpec

__all__ = ["HdfsModel", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 64 * MB


class HdfsModel:
    """Distributed file system shared by the cluster."""

    #: Hadoop's default replication; writes pay for pipeline copies.
    replication: int = 3
    #: fraction of reads served from a non-local replica over the network
    remote_read_fraction: float = 0.33

    def __init__(
        self,
        num_machines: int,
        machine: MachineSpec,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.num_machines = num_machines
        self.machine = machine
        self.block_size = block_size
        self.bytes_read: float = 0.0
        self.bytes_written: float = 0.0

    def num_blocks(self, nbytes: float) -> int:
        """Blocks a file of ``nbytes`` occupies (GraphX's default #partitions)."""
        return max(1, math.ceil(nbytes / self.block_size))

    def read_time(self, nbytes: float, reader_threads: int) -> float:
        """Cluster-parallel read of ``nbytes`` using ``reader_threads``.

        Thread throughput is disk-bound; parallelism is capped by both
        the thread count and the aggregate cluster disk bandwidth.
        """
        if nbytes <= 0:
            return 0.0
        self.bytes_read += nbytes
        threads = max(1, reader_threads)
        disk_parallel = min(threads, self.num_machines * self.machine.cores)
        disk_time = nbytes / (disk_parallel * self.machine.disk_read_bps)
        # Some blocks are remote: their bytes also cross the network.
        remote_bytes = nbytes * self.remote_read_fraction
        net_time = remote_bytes / (self.num_machines * self.machine.network_bps)
        return disk_time + net_time

    def write_time(self, nbytes: float, writer_threads: int) -> float:
        """Cluster-parallel replicated write of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        physical = nbytes * self.replication
        self.bytes_written += physical
        threads = max(1, writer_threads)
        disk_parallel = min(threads, self.num_machines * self.machine.cores)
        disk_time = physical / (disk_parallel * self.machine.disk_write_bps)
        # replication pipeline: replication-1 copies cross the network
        net_bytes = nbytes * (self.replication - 1)
        net_time = net_bytes / (self.num_machines * self.machine.network_bps)
        return disk_time + net_time
