"""Failure injection: exercising Table 1's fault-tolerance column.

The paper catalogues each system's fault-tolerance mechanism
(re-execution for the MapReduce family, global checkpoints for the
in-memory systems, nothing for Vertica) but never kills a machine.
This module adds that experiment: a :class:`FaultPlan` schedules worker
failures at simulated times; engines consume the events between
supersteps and charge their system's recovery cost.

Recovery models:

* ``checkpoint`` — the BSP systems write a global checkpoint every
  ``checkpoint_interval`` supersteps (a replicated HDFS write of the
  vertex state); on failure the whole cluster reloads its partitions
  and re-executes the supersteps since the last checkpoint.
* ``reexecution`` — Hadoop/HaLoop re-run the failed machine's tasks of
  the current iteration; the blast radius is one machine's shard, not
  the cluster.
* ``none`` — Vertica aborts the query; the run restarts from zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["FaultPlan"]


@dataclass
class FaultPlan:
    """Scheduled worker failures for one run."""

    #: simulated seconds at which a (random) worker dies
    fail_times: Tuple[float, ...] = ()
    #: supersteps between global checkpoints (checkpointing systems)
    checkpoint_interval: int = 10

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.fail_times):
            raise ValueError("failure times must be non-negative")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self._pending: List[float] = sorted(self.fail_times)

    def pop_due(self, now: float) -> List[float]:
        """Failure events that have fired by ``now`` (consumed once)."""
        due = [t for t in self._pending if t <= now]
        self._pending = [t for t in self._pending if t > now]
        return due

    @property
    def pending(self) -> Tuple[float, ...]:
        """Events not yet fired."""
        return tuple(self._pending)

    def reset(self) -> None:
        """Re-arm every event (used when a run restarts from zero)."""
        self._pending = sorted(self.fail_times)
