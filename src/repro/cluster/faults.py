"""Failure injection: exercising Table 1's fault-tolerance column.

The paper catalogues each system's fault-tolerance mechanism
(re-execution for the MapReduce family, global checkpoints for the
in-memory systems, nothing for Vertica) but never kills a machine.
:class:`FaultPlan` started that experiment with timed whole-worker
deaths; it is now the backward-compatible face of
:class:`repro.chaos.ChaosPlan`, which generalizes it to the full fault
taxonomy (stragglers, degraded links, partitions, message loss, HDFS
block loss, checkpoint corruption — see ``repro.chaos.events``).

Recovery models (see :mod:`repro.chaos.recovery`):

* ``checkpoint`` — the BSP systems write a global checkpoint every
  ``checkpoint_interval`` supersteps (a replicated HDFS write of the
  vertex state); on failure the whole cluster reloads its partitions
  and re-executes the supersteps since the last checkpoint.
* ``reexecution`` — Hadoop/HaLoop re-run the failed machine's tasks of
  the current iteration; the blast radius is one machine's shard, not
  the cluster.
* ``none`` — Vertica aborts the query; the run restarts from zero.

Statefulness: plans are immutable during runs. Engines consume events
through a per-run :class:`~repro.chaos.runtime.ChaosRuntime`, so a
``ClusterSpec`` reused across grid cells re-arms every fault each run.
The legacy ``pop_due``/``pending``/``reset`` float API remains for
callers that drive a plan by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..chaos.events import MachineCrash
from ..chaos.plan import ChaosPlan

__all__ = ["FaultPlan"]


@dataclass(unsafe_hash=True)
class FaultPlan(ChaosPlan):
    """Scheduled worker failures for one run (legacy float-time API)."""

    #: simulated seconds at which a worker dies (becomes ``MachineCrash``
    #: events; the plan seed picks the victims)
    fail_times: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.fail_times):
            raise ValueError("failure times must be non-negative")
        self.events = tuple(self.events) + tuple(
            MachineCrash(time=t) for t in sorted(self.fail_times)
        )
        super().__post_init__()
        self.reset()

    def pop_due(self, now: float) -> List[float]:
        """Failure times that have fired by ``now`` (consumed once).

        Legacy hand-driving API: drains this plan's own cursor, not the
        per-run :class:`~repro.chaos.runtime.ChaosRuntime` engines use.
        """
        due = [t for t in self._pending if t <= now]
        self._pending = [t for t in self._pending if t > now]
        return due

    @property
    def pending(self) -> Tuple[float, ...]:
        """Failure times not yet consumed via :meth:`pop_due`."""
        return tuple(self._pending)

    def reset(self) -> None:
        """Re-arm every event (the legacy cursor only; runs never drain it)."""
        self._pending: List[float] = sorted(self.fail_times)
