"""Failure taxonomy of the paper's experiments (section 5, Table legends).

Empty cells in the paper's result grids are one of: timeout after 24
hours (TO), out-of-memory on any machine (OOM), the MPI int-overflow
that only hits Blogel-B's Voronoi partitioner (MPI), and the HaLoop
shuffle bug that deletes mapper output on large clusters (SHFL).
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = [
    "FailureKind",
    "SimulatedFailure",
    "SimulatedOOM",
    "SimulatedTimeout",
    "MPIOverflowError",
    "ShuffleError",
]


class FailureKind(str, enum.Enum):
    """Abbreviations used in the paper's result figures."""

    OOM = "OOM"
    TIMEOUT = "TO"
    MPI = "MPI"
    SHUFFLE = "SHFL"

    def __str__(self) -> str:  # the grids print the bare abbreviation
        return self.value


class SimulatedFailure(RuntimeError):
    """Base class for simulated run failures."""

    kind: FailureKind

    def __init__(self, message: str, machine: Optional[int] = None) -> None:
        super().__init__(message)
        self.machine = machine


class SimulatedOOM(SimulatedFailure):
    """A machine exceeded its memory capacity."""

    kind = FailureKind.OOM


class SimulatedTimeout(SimulatedFailure):
    """The run exceeded the experiment's 24-hour budget."""

    kind = FailureKind.TIMEOUT


class MPIOverflowError(SimulatedFailure):
    """MPI aggregate exceeded INT32 item count (Blogel-B on WRN, §5.1)."""

    kind = FailureKind.MPI


class ShuffleError(SimulatedFailure):
    """HaLoop deleted mapper output before reducers read it (§5.10)."""

    kind = FailureKind.SHUFFLE
