"""Simulated clock and resource usage tracking.

The paper records CPU utilization per process type, memory usage every
second, and network-card byte counts before/after each run (§4.2), then
analyses "20 GB of log files". Figures 10 and 13 are drawn straight
from these series. :class:`ResourceTracker` is the simulated
equivalent: every engine phase reports what each machine did, and the
tracker keeps per-machine time series plus aggregate counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["SimClock", "CpuSample", "MemorySample", "ResourceTracker"]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative advances are a bug."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now


@dataclass(frozen=True)
class CpuSample:
    """CPU seconds by category over one phase on one machine."""

    time: float          # simulated timestamp at end of the phase
    machine: int
    user: float          # useful computation
    system: float        # framework overhead
    iowait: float        # waiting on disk
    idle: float


@dataclass(frozen=True)
class MemorySample:
    """Resident memory on one machine at one simulated instant."""

    time: float
    machine: int
    used_bytes: int


class ResourceTracker:
    """Accumulates the per-run resource series the paper logs."""

    def __init__(self, num_machines: int) -> None:
        self.num_machines = num_machines
        self._initial_machines = num_machines
        self.cpu_samples: List[CpuSample] = []
        self.memory_samples: List[MemorySample] = []
        # Running per-machine aggregates, maintained by record_memory so
        # the peak/series queries are O(1)/O(series) instead of scanning
        # every sample — grid runs query them per cell, which used to
        # make the harness quadratic in sample count.
        self._memory_peaks: Dict[int, int] = {}
        self._memory_series: Dict[int, List[Tuple[float, int]]] = {}
        self.network_bytes_sent: float = 0.0
        self.network_bytes_received: float = 0.0
        self.disk_bytes_read: float = 0.0
        self.disk_bytes_written: float = 0.0
        self._memory_byte_seconds: float = 0.0

    # -- recording -------------------------------------------------------

    def record_cpu(
        self,
        time: float,
        machine: int,
        user: float = 0.0,
        system: float = 0.0,
        iowait: float = 0.0,
        idle: float = 0.0,
    ) -> None:
        """Record one machine's CPU breakdown for a completed phase."""
        self.cpu_samples.append(
            CpuSample(time=time, machine=machine, user=user, system=system,
                      iowait=iowait, idle=idle)
        )

    def record_memory(self, time: float, machine: int, used_bytes: int) -> None:
        """Record a resident-memory sample, updating the running peaks."""
        self.memory_samples.append(
            MemorySample(time=time, machine=machine, used_bytes=used_bytes)
        )
        if used_bytes > self._memory_peaks.get(machine, 0):
            self._memory_peaks[machine] = used_bytes
        self._memory_series.setdefault(machine, []).append((time, used_bytes))

    def record_network(self, sent: float, received: float) -> None:
        """Add to the NIC byte counters."""
        self.network_bytes_sent += sent
        self.network_bytes_received += received

    def record_disk(self, read: float = 0.0, written: float = 0.0) -> None:
        """Add to the disk byte counters."""
        self.disk_bytes_read += read
        self.disk_bytes_written += written

    def record_rescale(self, num_machines: int) -> None:
        """Track an elastic rescale: billing covers the widest fleet.

        The paper's cost figures bill per provisioned machine, so the
        tracker keeps the high-water machine count — a scale-in does
        not retroactively shrink the bill for capacity already used.
        """
        if num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {num_machines}")
        self.num_machines = max(self.num_machines, num_machines)

    @property
    def machines_joined(self) -> int:
        """Machines added beyond the initial fleet (never negative)."""
        return max(0, self.num_machines - self._initial_machines)

    def record_memory_integral(self, byte_seconds: float) -> None:
        """Accrue resident-memory × time for one cluster operation.

        The cost model (:mod:`repro.obs.cost`) bills memory by the
        GB-hour, so every clock-advancing primitive charges its
        duration × the cluster's resident bytes here. Like disk and
        network records, this is simulated work — RPL013 requires call
        sites to sit inside an obs span.
        """
        if byte_seconds < 0:
            raise ValueError(
                f"memory integral cannot be negative ({byte_seconds})"
            )
        self._memory_byte_seconds += byte_seconds

    # -- queries (what the figures plot) ----------------------------------

    def peak_memory_bytes(self) -> int:
        """Largest single-machine resident memory seen (O(machines))."""
        return max(self._memory_peaks.values(), default=0)

    def total_memory_bytes(self) -> int:
        """Sum of every machine's peak memory (Table 8's metric)."""
        return sum(self._memory_peaks.values())

    def memory_series(self, machine: int) -> List[Tuple[float, int]]:
        """(time, bytes) series for one machine (Figure 10's lines)."""
        return list(self._memory_series.get(machine, ()))

    def cpu_totals(self) -> Dict[str, float]:
        """Aggregate CPU seconds by category across the cluster."""
        totals = {"user": 0.0, "system": 0.0, "iowait": 0.0, "idle": 0.0}
        for s in self.cpu_samples:
            totals["user"] += s.user
            totals["system"] += s.system
            totals["iowait"] += s.iowait
            totals["idle"] += s.idle
        return totals

    def max_cpu_utilization(self) -> Dict[str, float]:
        """Peak per-phase fraction of (user, iowait) CPU (Figure 13a)."""
        best_user = 0.0
        best_iowait = 0.0
        for s in self.cpu_samples:
            denom = s.user + s.system + s.iowait + s.idle
            if denom <= 0:
                continue
            best_user = max(best_user, s.user / denom)
            best_iowait = max(best_iowait, s.iowait / denom)
        return {"user": best_user, "iowait": best_iowait}

    def network_total_bytes(self) -> float:
        """Total bytes through the NICs (Figure 13c's metric)."""
        return self.network_bytes_sent + self.network_bytes_received

    def memory_byte_seconds(self) -> float:
        """The run's resident-memory × time integral (cost accounting)."""
        return self._memory_byte_seconds
