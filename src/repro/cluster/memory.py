"""Per-machine memory accounting with OOM semantics.

The paper's clusters fail whenever *any one machine* runs out of its
30.5 GB (§5: "out-of-memory at any machine in the cluster (OOM)").
The accountant therefore tracks allocations per machine, labelled by
purpose, and raises :class:`SimulatedOOM` the moment any machine's
resident total would exceed capacity.
"""

from __future__ import annotations

from typing import Dict, List

from .failures import SimulatedOOM
from .specs import GB, MachineSpec

__all__ = ["MemoryAccountant"]


class MemoryAccountant:
    """Tracks labelled allocations per machine against a hard capacity."""

    def __init__(self, num_machines: int, machine: MachineSpec) -> None:
        if num_machines < 1:
            raise ValueError("need at least one machine")
        self.machine = machine
        self.num_machines = num_machines
        self._used: List[float] = [0.0] * num_machines
        self._peak: List[float] = [0.0] * num_machines
        self._by_label: List[Dict[str, float]] = [dict() for _ in range(num_machines)]

    @property
    def capacity_bytes(self) -> int:
        """Per-machine capacity."""
        return self.machine.memory_bytes

    def used_bytes(self, machine_id: int) -> float:
        """Current resident bytes on one machine."""
        return self._used[machine_id]

    def peak_bytes(self, machine_id: int) -> float:
        """Peak resident bytes on one machine."""
        return self._peak[machine_id]

    def total_used_bytes(self) -> float:
        """Current resident bytes across every machine (cost integrand)."""
        return sum(self._used)

    def total_peak_bytes(self) -> float:
        """Sum of per-machine peaks (what Table 8 reports)."""
        return sum(self._peak)

    def label_bytes(self, machine_id: int, label: str) -> float:
        """Bytes currently attributed to a label on one machine."""
        return self._by_label[machine_id].get(label, 0.0)

    def allocate(self, machine_id: int, nbytes: float, label: str) -> None:
        """Charge an allocation; raises :class:`SimulatedOOM` over capacity."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        new_total = self._used[machine_id] + nbytes
        if new_total > self.capacity_bytes:
            raise SimulatedOOM(
                f"machine {machine_id} needs {new_total / GB:.1f} GB for "
                f"{label!r} but has {self.capacity_bytes / GB:.1f} GB",
                machine=machine_id,
            )
        self._used[machine_id] = new_total
        self._peak[machine_id] = max(self._peak[machine_id], new_total)
        labels = self._by_label[machine_id]
        labels[label] = labels.get(label, 0.0) + nbytes

    def allocate_even(self, nbytes: float, label: str, skew: float = 0.0) -> None:
        """Spread an allocation across machines, optionally skewed.

        ``skew`` is the extra fraction the most-loaded machine carries
        over a perfectly even split — partitioners are never perfectly
        balanced (Figure 11), and OOM triggers on the *heaviest* machine.
        """
        if self.num_machines == 1:
            self.allocate(0, nbytes, label)
            return
        even = nbytes / self.num_machines
        heavy = even * (1.0 + skew)
        rest = (nbytes - heavy) / (self.num_machines - 1)
        self.allocate(0, heavy, label)
        for m in range(1, self.num_machines):
            self.allocate(m, rest, label)

    def rescale(self, num_machines: int) -> None:
        """Redistribute every live allocation across a new machine count.

        The elasticity path: per-label totals are gathered and re-spread
        evenly (skew resets — repartitioning rebalances), so a scale-in
        that concentrates state past one machine's capacity raises
        :class:`SimulatedOOM` exactly like any other allocation would.
        Peaks are never forgotten: ``_peak`` keeps an entry for every
        machine that ever participated, so Table 8's sum-of-peaks covers
        departed workers too.
        """
        if num_machines < 1:
            raise ValueError("need at least one machine")
        totals: Dict[str, float] = {}
        for labels in self._by_label:
            for label, held in labels.items():
                if held > 0.0:
                    totals[label] = totals.get(label, 0.0) + held
        self.num_machines = num_machines
        self._used = [0.0] * num_machines
        self._by_label = [dict() for _ in range(num_machines)]
        if len(self._peak) < num_machines:
            self._peak.extend([0.0] * (num_machines - len(self._peak)))
        for label in sorted(totals):
            self.allocate_even(totals[label], label)

    def free(self, machine_id: int, nbytes: float, label: str) -> None:
        """Release a previous allocation (never below zero)."""
        labels = self._by_label[machine_id]
        held = labels.get(label, 0.0)
        release = min(nbytes, held)
        labels[label] = held - release
        self._used[machine_id] = max(0.0, self._used[machine_id] - release)

    def free_label(self, label: str) -> None:
        """Release everything attributed to ``label`` on all machines."""
        for m in range(self.num_machines):
            held = self._by_label[m].pop(label, 0.0)
            self._used[m] = max(0.0, self._used[m] - held)

    def free_all(self) -> None:
        """Release every allocation (end of a run)."""
        for m in range(self.num_machines):
            self._used[m] = 0.0
            self._by_label[m].clear()
