"""Simulated shared-nothing cluster: specs, memory, network, HDFS, tracking."""

from .cluster import Cluster
from .faults import FaultPlan
from .failures import (
    FailureKind,
    MPIOverflowError,
    ShuffleError,
    SimulatedFailure,
    SimulatedOOM,
    SimulatedTimeout,
)
from .hdfs import DEFAULT_BLOCK_SIZE, HdfsModel
from .memory import MemoryAccountant
from .network import NetworkModel
from .specs import CLUSTER_SIZES, COST_MACHINE, GB, MB, R3_XLARGE, ClusterSpec, MachineSpec
from .tracker import CpuSample, MemorySample, ResourceTracker, SimClock

__all__ = [
    "Cluster",
    "ClusterSpec",
    "MachineSpec",
    "R3_XLARGE",
    "COST_MACHINE",
    "CLUSTER_SIZES",
    "GB",
    "MB",
    "MemoryAccountant",
    "NetworkModel",
    "HdfsModel",
    "DEFAULT_BLOCK_SIZE",
    "ResourceTracker",
    "SimClock",
    "CpuSample",
    "MemorySample",
    "FailureKind",
    "FaultPlan",
    "SimulatedFailure",
    "SimulatedOOM",
    "SimulatedTimeout",
    "MPIOverflowError",
    "ShuffleError",
]
