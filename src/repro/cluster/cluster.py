"""The simulated cluster: the runtime every engine executes against.

A :class:`Cluster` bundles the clock, memory accountant, network
fabric, HDFS, and resource tracker for one experiment run, and exposes
the operations engines express their phases with: parallel compute
steps, shuffles, barriers, HDFS reads/writes, and memory (de)allocation.
Simulated time only moves through these calls, and the 24-hour budget
is enforced on every advance.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..chaos.runtime import ChaosRuntime
from ..obs import MetricsRegistry, RunObservation, Tracer
from .failures import SimulatedTimeout
from .hdfs import HdfsModel
from .memory import MemoryAccountant
from .network import NetworkModel
from .specs import ClusterSpec
from .tracker import ResourceTracker, SimClock

__all__ = ["Cluster"]


class Cluster:
    """One experiment's worth of simulated cluster state.

    ``num_workers`` defaults to ``spec.num_workers`` (all machines but
    the master). MPI-based engines (GraphLab, Blogel) run ranks on every
    machine including the master and pass ``spec.num_machines``.

    ``obs`` threads a :class:`~repro.obs.RunObservation` through the
    fabric: every shuffle, compute step, barrier, and I/O call records a
    simulated-clock span and its byte counters, so run journals show the
    cluster-level story under each engine's supersteps. A fresh bundle
    is created when the caller does not pass one.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        num_workers: Optional[int] = None,
        obs: Optional[RunObservation] = None,
    ) -> None:
        self.spec = spec
        self.num_workers = num_workers if num_workers is not None else spec.num_workers
        if not 1 <= self.num_workers <= spec.num_machines:
            raise ValueError(
                f"num_workers must be in [1, {spec.num_machines}], got {self.num_workers}"
            )
        self.clock = SimClock()
        self.obs = obs if obs is not None else RunObservation()
        self.obs.tracer.bind(lambda: self.clock.now)
        self.memory = MemoryAccountant(self.num_workers, spec.machine)
        self.network = NetworkModel(self.num_workers, spec.machine)
        self.hdfs = HdfsModel(self.num_workers, spec.machine)
        self.tracker = ResourceTracker(self.num_workers)
        # A fresh per-run cursor over the (immutable) chaos plan: reusing
        # one spec across grid cells re-arms every scheduled fault.
        self.chaos: Optional[ChaosRuntime] = (
            ChaosRuntime(spec.fault_plan, self.num_workers)
            if spec.fault_plan is not None
            else None
        )

    def rescale(self, num_workers: int) -> None:
        """Grow or shrink the worker pool mid-run (elasticity events).

        The memory accountant redistributes live allocations (a scale-in
        past capacity OOMs — a legitimate outcome); the network and HDFS
        fabrics are rebuilt for the new machine count with their byte
        counters and the chaos degradation factor carried over; the
        tracker keeps accumulating into the same aggregates. A scale-out
        may exceed ``spec.num_machines`` — the spec describes the
        *provisioned* cluster, elasticity is what changes it.
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if num_workers == self.num_workers:
            return
        self.num_workers = num_workers
        self.memory.rescale(num_workers)
        network = NetworkModel(num_workers, self.spec.machine)
        network.total_bytes = self.network.total_bytes
        network.degradation = self.network.degradation
        self.network = network
        hdfs = HdfsModel(num_workers, self.spec.machine, self.hdfs.block_size)
        hdfs.bytes_read = self.hdfs.bytes_read
        hdfs.bytes_written = self.hdfs.bytes_written
        self.hdfs = hdfs
        self.tracker.record_rescale(num_workers)

    @property
    def tracer(self) -> Tracer:
        """The run's span tracer (bound to this cluster's clock)."""
        return self.obs.tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry."""
        return self.obs.metrics

    # -- time -------------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Advance the clock, enforcing the 24-hour timeout."""
        self.clock.advance(seconds)
        if self.clock.now > self.spec.timeout_seconds:
            raise SimulatedTimeout(
                f"exceeded {self.spec.timeout_seconds / 3600:.0f}h budget at "
                f"simulated t={self.clock.now / 3600:.1f}h"
            )

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    # -- compute ------------------------------------------------------------

    def parallel_compute(
        self,
        work_seconds_per_machine: Sequence[float],
        system_fraction: float = 0.0,
        iowait_seconds: float = 0.0,
    ) -> float:
        """Run one parallel step; the slowest machine sets the pace.

        ``work_seconds_per_machine`` is each worker's busy time for the
        step. ``system_fraction`` attributes part of it to framework
        overhead (JVM, scheduling); ``iowait_seconds`` adds disk-wait
        on every machine (Hadoop's profile, §5.10). Returns the step's
        wall-clock duration.
        """
        if len(work_seconds_per_machine) == 0:
            return 0.0
        if self.chaos is not None:
            work_seconds_per_machine = self.chaos.apply_compute(
                work_seconds_per_machine
            )
        step = max(work_seconds_per_machine) + iowait_seconds
        with self.tracer.span("compute", cat="cluster", seconds=step,
                              iowait_seconds=iowait_seconds):
            for m, busy in enumerate(work_seconds_per_machine):
                self.tracker.record_cpu(
                    time=self.now + step,
                    machine=m,
                    user=busy * (1.0 - system_fraction),
                    system=busy * system_fraction,
                    iowait=iowait_seconds,
                    idle=max(0.0, step - busy - iowait_seconds),
                )
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * step
            )
            self.advance(step)
        return step

    def uniform_compute(
        self,
        total_work_seconds: float,
        cores_per_machine: Optional[int] = None,
        skew: float = 0.0,
        system_fraction: float = 0.0,
        iowait_seconds: float = 0.0,
    ) -> float:
        """Evenly spread ``total_work_seconds`` of single-core work.

        ``cores_per_machine`` limits how many cores participate
        (GraphLab reserves 2 for communication, §4.4.2); ``skew`` is the
        extra load on the heaviest machine.
        """
        cores = cores_per_machine or self.spec.machine.cores
        workers = self.num_workers
        per_machine = total_work_seconds / (workers * cores)
        loads = [per_machine] * workers
        loads[0] = per_machine * (1.0 + skew)
        return self.parallel_compute(
            loads, system_fraction=system_fraction, iowait_seconds=iowait_seconds
        )

    # -- communication --------------------------------------------------------

    def shuffle(self, total_bytes: float, skew: float = 0.0,
                local_fraction: Optional[float] = None) -> float:
        """All-to-all exchange; advances the clock and logs NIC bytes."""
        t = self.network.shuffle_time(total_bytes, skew=skew,
                                      local_fraction=local_fraction)
        wire = total_bytes * (1.0 - (local_fraction if local_fraction is not None
                                     else 1.0 / max(1, self.num_workers)))
        with self.tracer.span("shuffle", cat="cluster", bytes=total_bytes,
                              wire_bytes=wire):
            self.metrics.counter("bytes_shuffled").inc(total_bytes)
            self.tracker.record_network(sent=wire, received=wire)
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * t
            )
            self.advance(t)
        return t

    def gather_to_master(self, nbytes_per_machine: float) -> float:
        """Workers send to the master (Voronoi aggregation, counters)."""
        t = self.network.gather_time(nbytes_per_machine)
        total = nbytes_per_machine * (self.num_workers - 1)
        with self.tracer.span("gather", cat="cluster", bytes=total):
            self.tracker.record_network(sent=total, received=total)
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * t
            )
            self.advance(t)
        return t

    def broadcast(self, nbytes: float) -> float:
        """Master sends to all workers."""
        t = self.network.broadcast_time(nbytes)
        total = nbytes * (self.num_workers - 1)
        with self.tracer.span("broadcast", cat="cluster", bytes=total):
            self.tracker.record_network(sent=total, received=total)
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * t
            )
            self.advance(t)
        return t

    def barrier(self) -> float:
        """BSP synchronization barrier."""
        t = self.network.barrier_time()
        with self.tracer.span("barrier", cat="cluster"):
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * t
            )
            self.advance(t)
        return t

    # -- storage ----------------------------------------------------------------

    def hdfs_read(self, nbytes: float, reader_threads: Optional[int] = None) -> float:
        """Read from HDFS; default parallelism is every worker core."""
        threads = reader_threads if reader_threads is not None else (
            self.num_workers * self.spec.machine.cores
        )
        t = self.hdfs.read_time(nbytes, threads)
        with self.tracer.span("hdfs_read", cat="cluster", bytes=nbytes):
            self.tracker.record_disk(read=nbytes)
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * t
            )
            self.advance(t)
        return t

    def hdfs_write(self, nbytes: float, writer_threads: Optional[int] = None) -> float:
        """Replicated write to HDFS."""
        threads = writer_threads if writer_threads is not None else (
            self.num_workers * self.spec.machine.cores
        )
        t = self.hdfs.write_time(nbytes, threads)
        with self.tracer.span("hdfs_write", cat="cluster", bytes=nbytes):
            self.tracker.record_disk(written=nbytes * self.hdfs.replication)
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * t
            )
            self.advance(t)
        return t

    def local_disk_io(self, nbytes: float, write: bool = False,
                      threads: Optional[int] = None) -> float:
        """Node-local disk I/O (HaLoop caches, Vertica temp tables)."""
        if nbytes <= 0:
            return 0.0
        machine = self.spec.machine
        bw = machine.disk_write_bps if write else machine.disk_read_bps
        parallel = threads or (self.num_workers * machine.cores)
        t = nbytes / (min(parallel, self.num_workers * machine.cores) * bw)
        name = "disk_write" if write else "disk_read"
        with self.tracer.span(name, cat="cluster", bytes=nbytes):
            self.tracker.record_disk(
                read=0.0 if write else nbytes, written=nbytes if write else 0.0
            )
            self.tracker.record_memory_integral(
                self.memory.total_used_bytes() * t
            )
            self.advance(t)
        return t

    # -- memory ------------------------------------------------------------------

    def sample_memory(self) -> None:
        """Snapshot every machine's resident memory into the tracker."""
        for m in range(self.num_workers):
            self.tracker.record_memory(
                time=self.now, machine=m, used_bytes=int(self.memory.used_bytes(m))
            )
